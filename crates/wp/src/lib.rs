//! The program-logic baseline verifier (the stand-in for Prusti in the
//! paper's evaluation, §5).
//!
//! Where Flux factors invariants into refined *types* and synthesises loop
//! invariants by liquid inference, this verifier follows the classical
//! contract + loop-invariant recipe:
//!
//! * functions carry `#[requires(...)]` / `#[ensures(...)]` contracts,
//! * every loop must carry user-written `invariant!(...)` annotations,
//! * containers are modelled with uninterpreted arrays: `vlen(v)` is the
//!   length of `v` and `sel(v, i)` its `i`-th element; `push`/stores produce
//!   *universally quantified frame axioms* relating the old and new arrays.
//!
//! Those quantified hypotheses must then be discharged by the SMT solver's
//! instantiation heuristics, which is precisely why this style of
//! verification is slower and needs more annotations than liquid typing —
//! the effect Table 1 of the paper measures.

#![warn(missing_docs)]

use flux_logic::{AuditTier, Expr, ExprId, Name, Sort, SortCtx};
use flux_smt::{SmtConfig, Solver, Validity};
use flux_syntax::ast::{self, BinOpKind, RustTy, UnOpKind};
use flux_syntax::span::{Diagnostic, Span};
use std::collections::BTreeMap;
use std::time::{Duration, Instant};

/// Configuration of the baseline verifier.
#[derive(Clone, Copy, Debug, Default)]
pub struct WpConfig {
    /// SMT configuration (quantifier instantiation limits matter here).
    pub smt: SmtConfig,
}

/// Verification result for one function.
#[derive(Debug)]
pub struct WpFnReport {
    /// Function name.
    pub name: String,
    /// Failed obligations.
    pub errors: Vec<Diagnostic>,
    /// Obligations the solver could not decide within its budgets.  These
    /// are *inconclusive*, not refuted: the function does not verify, but
    /// reporting them as "might not hold" would turn a budget cut (or an
    /// injected fault) into a false rejection.
    pub unknowns: usize,
    /// Wall-clock verification time.
    pub time: Duration,
    /// Number of SMT validity queries.
    pub queries: usize,
    /// Number of quantifier instances the solver had to generate.
    pub quant_instances: usize,
    /// Obligations and hypotheses sort-/scope-checked by the audit lint
    /// (zero unless the audit tier is at least `lint`).
    pub lint_checks: usize,
    /// Full statistics of the underlying SMT engine.
    pub smt_stats: flux_smt::SmtStats,
}

impl WpFnReport {
    /// True if every obligation was discharged.
    pub fn is_safe(&self) -> bool {
        self.errors.is_empty() && self.unknowns == 0
    }
}

/// Verification result for a program.
#[derive(Debug, Default)]
pub struct WpReport {
    /// Per-function reports.
    pub functions: Vec<WpFnReport>,
}

impl WpReport {
    /// True if every function verified.
    pub fn is_safe(&self) -> bool {
        self.functions.iter().all(WpFnReport::is_safe)
    }

    /// Total verification time.
    pub fn total_time(&self) -> Duration {
        self.functions.iter().map(|f| f.time).sum()
    }

    /// SMT engine statistics summed over all verified functions.
    pub fn total_smt_stats(&self) -> flux_smt::SmtStats {
        let mut total = flux_smt::SmtStats::default();
        for f in &self.functions {
            total.absorb(f.smt_stats);
        }
        total
    }
}

/// A symbolic value.
#[derive(Clone, Debug)]
enum SymValue {
    /// A scalar (integer or boolean) symbolic expression.
    Scalar(Expr),
    /// An opaque float.
    Float,
    /// A vector: the array variable naming its contents and its symbolic
    /// length.
    Vec {
        /// The array variable.
        array: Name,
        /// The symbolic length.
        len: Expr,
    },
    /// The unit value.
    Unit,
}

/// The symbolic state: values of locals plus the facts (path conditions,
/// contracts, frame axioms) accumulated so far.
#[derive(Clone, Debug, Default)]
struct State {
    locals: BTreeMap<String, SymValue>,
    facts: Vec<Expr>,
}

/// The verifier for a single function.
pub struct WpVerifier<'a> {
    program: &'a ast::Program,
    solver: Solver,
    ctx: SortCtx,
    errors: Vec<Diagnostic>,
    unknowns: usize,
    queries: usize,
    audit: AuditTier,
    lint_checks: usize,
}

/// Verifies every non-trusted function of `program`.
pub fn verify_program(program: &ast::Program, config: &WpConfig) -> WpReport {
    let mut report = WpReport::default();
    for def in &program.functions {
        if def.trusted {
            continue;
        }
        report.functions.push(verify_function(program, def, config));
    }
    report
}

/// Verifies a single function.
pub fn verify_function(program: &ast::Program, def: &ast::FnDef, config: &WpConfig) -> WpFnReport {
    let start = Instant::now();
    let mut ctx = SortCtx::new();
    ctx.declare_fn(Name::intern("vlen"), vec![Sort::Array], Sort::Int);
    ctx.declare_fn(Name::intern("sel"), vec![Sort::Array, Sort::Int], Sort::Int);
    let mut verifier = WpVerifier {
        program,
        solver: Solver::new(config.smt),
        ctx,
        errors: Vec::new(),
        unknowns: 0,
        queries: 0,
        audit: config.smt.audit,
        lint_checks: 0,
    };
    verifier.run(def);
    WpFnReport {
        name: def.name.clone(),
        errors: verifier.errors,
        unknowns: verifier.unknowns,
        time: start.elapsed(),
        queries: verifier.queries,
        quant_instances: verifier.solver.stats.quant_instances,
        lint_checks: verifier.lint_checks,
        smt_stats: verifier.solver.stats,
    }
}

/// Convenience: parse and verify a source string.
pub fn verify_source(source: &str, config: &WpConfig) -> Result<WpReport, Diagnostic> {
    let program = flux_syntax::parse_program(source)?;
    Ok(verify_program(&program, config))
}

impl<'a> WpVerifier<'a> {
    fn fresh_int(&mut self, hint: &str) -> Name {
        let name = Name::fresh(hint);
        self.ctx.push(name, Sort::Int);
        name
    }

    fn fresh_bool(&mut self, hint: &str) -> Name {
        let name = Name::fresh(hint);
        self.ctx.push(name, Sort::Bool);
        name
    }

    fn fresh_array(&mut self, hint: &str) -> Name {
        let name = Name::fresh(hint);
        self.ctx.push(name, Sort::Array);
        name
    }

    fn check(&mut self, state: &State, goal: Expr, span: Span, what: &str) {
        self.queries += 1;
        let facts = self.prune_irrelevant_quantifiers(&state.facts, &goal);
        // Audit lint: the emitted obligation and every hypothesis handed to
        // the solver must be boolean and closed under the verifier's sort
        // context.  A violation is a bug in this verifier's symbolic
        // execution (e.g. a frame axiom referencing a dropped array), not in
        // the verified program, hence the panic.
        if self.audit.lints() {
            for (expr, describe) in
                std::iter::once((&goal, what)).chain(facts.iter().map(|f| (f, "hypothesis")))
            {
                flux_logic::lint(
                    || format!("{describe} at bytes {}..{}", span.start, span.end),
                    ExprId::intern(expr),
                    Sort::Bool,
                    &self.ctx,
                )
                .unwrap_or_else(|e| panic!("FLUX_AUDIT: {e}"));
                self.lint_checks += 1;
            }
        }
        match self.solver.check_valid_imp(&self.ctx, &facts, &goal) {
            Validity::Valid => {}
            // Inconclusive is not refuted: a budget cut (or an injected
            // fault) must degrade the verdict to unknown, never fabricate
            // a "might not hold" rejection.
            Validity::Unknown => self.unknowns += 1,
            Validity::Invalid(_) => self
                .errors
                .push(Diagnostic::error(format!("{what} might not hold"), span)),
        }
    }

    /// Goal-directed relevance filtering: quantified hypotheses that only
    /// describe the *contents* of arrays unreachable from the goal (through
    /// chains of facts mentioning a reachable array) are replaced by `true`.
    ///
    /// Long straight-line code accumulates one universally quantified frame
    /// axiom per store/push/swap; when the goal is about lengths and indices
    /// only (the common case outside content invariants), those axioms cost
    /// quantifier instances and Ackermann axioms without contributing
    /// anything.  Dropping hypotheses only ever weakens the implication
    /// being proved, so this is sound: the verifier may fail to prove a
    /// valid obligation but can never accept an invalid one.
    fn prune_irrelevant_quantifiers(&self, facts: &[Expr], goal: &Expr) -> Vec<Expr> {
        // Seed: arrays the goal mentions.
        let mut relevant = self.array_vars(goal);
        // Fixpoint: any fact touching a relevant array makes all its arrays
        // relevant (frame axioms and merges link new arrays to old ones).
        let fact_arrays: Vec<std::collections::BTreeSet<Name>> =
            facts.iter().map(|f| self.array_vars(f)).collect();
        loop {
            let mut grew = false;
            for arrays in &fact_arrays {
                if arrays.iter().any(|a| relevant.contains(a))
                    && !arrays.iter().all(|a| relevant.contains(a))
                {
                    relevant.extend(arrays.iter().copied());
                    grew = true;
                }
            }
            if !grew {
                break;
            }
        }
        facts
            .iter()
            .map(|f| prune_quants(f, true, &relevant, &self.ctx))
            .collect()
    }

    /// The `Array`-sorted free variables of an expression.
    fn array_vars(&self, e: &Expr) -> std::collections::BTreeSet<Name> {
        e.free_vars()
            .into_iter()
            .filter(|v| self.ctx.lookup(*v) == Some(Sort::Array))
            .collect()
    }

    fn run(&mut self, def: &ast::FnDef) {
        let mut state = State::default();
        for param in &def.params {
            let value = self.havoc(&param.name, &param.ty, &mut state);
            state.locals.insert(param.name.clone(), value);
        }
        for pre in &def.requires {
            let fact = self.spec_pred(pre, &state);
            state.facts.push(fact);
        }
        let result = self.exec_block(&def.body, &mut state);
        if !def.ensures.is_empty() {
            if let Some(value) = &result {
                self.bind_result(value, &mut state);
            }
            for (i, post) in def.ensures.iter().enumerate() {
                let goal = self.spec_pred(post, &state);
                self.check(&state, goal, def.span, &format!("postcondition #{}", i + 1));
            }
        }
    }

    fn havoc(&mut self, name: &str, ty: &RustTy, state: &mut State) -> SymValue {
        match ty {
            RustTy::Int => SymValue::Scalar(Expr::Var(self.fresh_int(name))),
            RustTy::Uint => {
                let v = self.fresh_int(name);
                state.facts.push(Expr::ge(Expr::Var(v), Expr::int(0)));
                SymValue::Scalar(Expr::Var(v))
            }
            RustTy::Bool => SymValue::Scalar(Expr::Var(self.fresh_bool(name))),
            RustTy::Float => SymValue::Float,
            RustTy::Unit => SymValue::Unit,
            RustTy::RVec(_) | RustTy::RMat(_) => {
                let array = self.fresh_array(&format!("{name}_arr"));
                let len = self.fresh_int(&format!("{name}_len"));
                state.facts.push(Expr::ge(Expr::Var(len), Expr::int(0)));
                SymValue::Vec {
                    array,
                    len: Expr::Var(len),
                }
            }
            RustTy::Ref(_, inner) => self.havoc(name, inner, state),
        }
    }

    fn bind_result(&mut self, value: &SymValue, state: &mut State) {
        let r = Name::intern("result");
        match value {
            SymValue::Scalar(e) => {
                self.ctx.push(r, Sort::Int);
                state.facts.push(Expr::eq(Expr::Var(r), e.clone()));
            }
            SymValue::Vec { array, len } => {
                self.ctx.push(r, Sort::Array);
                state.facts.push(Expr::eq(Expr::Var(r), Expr::Var(*array)));
                state
                    .facts
                    .push(Expr::eq(Expr::app("len", vec![Expr::Var(r)]), len.clone()));
            }
            _ => {}
        }
        // Also bind `result` as a local so `spec_pred` substitutes it by the
        // returned symbolic value directly.  The equational facts above
        // cannot express array aliasing (array equality is opaque to the
        // theory solver), so quantified postconditions about a returned
        // vector's *contents* only connect through this binding — mirroring
        // how `eval_call` assumes callee postconditions at call sites.
        state.locals.insert("result".to_owned(), value.clone());
    }

    /// Translates a specification predicate (from `requires`/`ensures`/
    /// `invariant!`) into the logic, substituting program variables by their
    /// current symbolic values.  `vlen(v)` and `sel(v, i)` map onto the
    /// array model.
    fn spec_pred(&mut self, pred: &Expr, state: &State) -> Expr {
        match pred {
            Expr::Var(name) => match state.locals.get(name.as_str()) {
                Some(SymValue::Scalar(e)) => e.clone(),
                Some(SymValue::Vec { array, .. }) => Expr::Var(*array),
                _ => Expr::Var(*name),
            },
            Expr::Const(_) => pred.clone(),
            Expr::UnOp(op, e) => Expr::unop(*op, self.spec_pred(e, state)),
            Expr::BinOp(op, l, r) => {
                Expr::binop(*op, self.spec_pred(l, state), self.spec_pred(r, state))
            }
            Expr::Ite(c, t, e) => Expr::ite(
                self.spec_pred(c, state),
                self.spec_pred(t, state),
                self.spec_pred(e, state),
            ),
            Expr::App(f, args) => {
                let translated: Vec<Expr> = args.iter().map(|a| self.spec_pred(a, state)).collect();
                match f.as_str() {
                    "vlen" => {
                        if let Some(Expr::Var(name)) = args.first() {
                            if let Some(SymValue::Vec { len, .. }) = state.locals.get(name.as_str())
                            {
                                return len.clone();
                            }
                        }
                        Expr::App(Name::intern("len"), translated)
                    }
                    "sel" => Expr::App(Name::intern("select"), translated),
                    _ => Expr::App(*f, translated),
                }
            }
            Expr::Forall(binders, body) => {
                let inner = self.state_without_binders(state, binders);
                Expr::Forall(binders.clone(), Box::new(self.spec_pred(body, &inner)))
            }
            Expr::Exists(binders, body) => {
                let inner = self.state_without_binders(state, binders);
                Expr::Exists(binders.clone(), Box::new(self.spec_pred(body, &inner)))
            }
        }
    }

    fn state_without_binders(&self, state: &State, binders: &[(Name, Sort)]) -> State {
        let mut inner = state.clone();
        for (b, _) in binders {
            inner.locals.remove(b.as_str());
        }
        inner
    }

    // -----------------------------------------------------------------
    // Execution
    // -----------------------------------------------------------------

    fn exec_block(&mut self, block: &ast::Block, state: &mut State) -> Option<SymValue> {
        for stmt in &block.stmts {
            self.exec_stmt(stmt, state);
        }
        block.tail.as_deref().map(|e| self.eval(e, state))
    }

    fn exec_stmt(&mut self, stmt: &ast::Stmt, state: &mut State) {
        match stmt {
            ast::Stmt::Let { name, init, .. } => {
                let value = self.eval(init, state);
                state.locals.insert(name.clone(), value);
            }
            ast::Stmt::Assign {
                place,
                op,
                value,
                span,
            } => {
                let rhs = match op {
                    ast::AssignOp::Assign => value.clone(),
                    other => {
                        let kind = match other {
                            ast::AssignOp::AddAssign => BinOpKind::Add,
                            ast::AssignOp::SubAssign => BinOpKind::Sub,
                            ast::AssignOp::MulAssign => BinOpKind::Mul,
                            ast::AssignOp::DivAssign => BinOpKind::Div,
                            ast::AssignOp::Assign => unreachable!(),
                        };
                        ast::Expr::Binary(
                            kind,
                            Box::new(place.clone()),
                            Box::new(value.clone()),
                            *span,
                        )
                    }
                };
                match place {
                    ast::Expr::Var(name, _) => {
                        let value = self.eval(&rhs, state);
                        state.locals.insert(name.clone(), value);
                    }
                    ast::Expr::Deref(inner, _) => {
                        if let ast::Expr::Var(name, _) = inner.as_ref() {
                            let value = self.eval(&rhs, state);
                            state.locals.insert(name.clone(), value);
                        } else {
                            self.errors.push(Diagnostic::error(
                                "unsupported assignment target in baseline verifier",
                                *span,
                            ));
                        }
                    }
                    ast::Expr::Index { recv, index, span } => {
                        self.exec_store(recv, index, &rhs, state, *span);
                    }
                    _ => self.errors.push(Diagnostic::error(
                        "unsupported assignment target in baseline verifier",
                        *span,
                    )),
                }
            }
            ast::Stmt::While {
                cond,
                invariants,
                body,
                span,
            } => {
                self.exec_while(cond, invariants, body, state, *span);
            }
            ast::Stmt::Return { value, .. } => {
                if let Some(value) = value {
                    let v = self.eval(value, state);
                    self.bind_result(&v, state);
                }
            }
            ast::Stmt::Assert { cond, span } => {
                let c = self.eval_scalar(cond, state);
                self.check(state, c.clone(), *span, "assertion");
                state.facts.push(c);
            }
            ast::Stmt::Expr { expr, .. } => {
                let _ = self.eval(expr, state);
            }
        }
    }

    fn exec_store(
        &mut self,
        recv: &ast::Expr,
        index: &ast::Expr,
        value: &ast::Expr,
        state: &mut State,
        span: Span,
    ) {
        let idx = self.eval_scalar(index, state);
        let stored = match self.eval(value, state) {
            SymValue::Scalar(e) => Some(e),
            _ => None,
        };
        let Some((name, array, len)) = self.vec_of(recv, state) else {
            self.errors
                .push(Diagnostic::error("store into a non-vector", span));
            return;
        };
        self.check(
            state,
            Expr::and(
                Expr::ge(idx.clone(), Expr::int(0)),
                Expr::lt(idx.clone(), len.clone()),
            ),
            span,
            "store index in bounds",
        );
        let new_array = self.fresh_array(&format!("{name}_upd"));
        let j = Name::fresh("j");
        state.facts.push(Expr::forall(
            vec![(j, Sort::Int)],
            Expr::imp(
                Expr::and(
                    Expr::and(
                        Expr::ge(Expr::Var(j), Expr::int(0)),
                        Expr::lt(Expr::Var(j), len.clone()),
                    ),
                    Expr::ne(Expr::Var(j), idx.clone()),
                ),
                Expr::eq(
                    Expr::app("select", vec![Expr::Var(new_array), Expr::Var(j)]),
                    Expr::app("select", vec![Expr::Var(array), Expr::Var(j)]),
                ),
            ),
        ));
        if let Some(stored) = stored {
            state.facts.push(Expr::eq(
                Expr::app("select", vec![Expr::Var(new_array), idx]),
                stored,
            ));
        }
        state.locals.insert(
            name,
            SymValue::Vec {
                array: new_array,
                len,
            },
        );
    }

    fn exec_while(
        &mut self,
        cond: &ast::Expr,
        invariants: &[Expr],
        body: &ast::Block,
        state: &mut State,
        span: Span,
    ) {
        // 1. Invariants hold on entry.
        for (i, inv) in invariants.iter().enumerate() {
            let goal = self.spec_pred(inv, state);
            self.check(
                state,
                goal,
                span,
                &format!("loop invariant #{} on entry", i + 1),
            );
        }
        // 2. Havoc the modified locals, assume invariants + condition, run the
        //    body once, and re-establish the invariants.
        let mut body_state = state.clone();
        self.havoc_assigned(body, &mut body_state);
        for inv in invariants {
            let fact = self.spec_pred(inv, &body_state);
            body_state.facts.push(fact);
        }
        let cond_expr = self.eval_scalar(cond, &mut body_state);
        body_state.facts.push(cond_expr);
        for stmt in &body.stmts {
            self.exec_stmt(stmt, &mut body_state);
        }
        for (i, inv) in invariants.iter().enumerate() {
            let goal = self.spec_pred(inv, &body_state);
            self.check(
                &body_state,
                goal,
                span,
                &format!("loop invariant #{} preservation", i + 1),
            );
        }
        // 3. After the loop: havoc again, assume invariants and ¬cond.
        self.havoc_assigned(body, state);
        for inv in invariants {
            let fact = self.spec_pred(inv, state);
            state.facts.push(fact);
        }
        let cond_expr = self.eval_scalar(cond, state);
        state.facts.push(Expr::not(cond_expr));
    }

    /// Havocs every local assigned (or grown) anywhere in a loop body.
    fn havoc_assigned(&mut self, body: &ast::Block, state: &mut State) {
        let mut assigned = Vec::new();
        collect_assigned(body, &mut assigned);
        for name in assigned {
            let Some(value) = state.locals.get(&name).cloned() else {
                continue;
            };
            let havocked = match value {
                SymValue::Scalar(_) => SymValue::Scalar(Expr::Var(self.fresh_int(&name))),
                SymValue::Vec { .. } => {
                    let array = self.fresh_array(&format!("{name}_arr"));
                    let len = self.fresh_int(&format!("{name}_len"));
                    state.facts.push(Expr::ge(Expr::Var(len), Expr::int(0)));
                    SymValue::Vec {
                        array,
                        len: Expr::Var(len),
                    }
                }
                other => other,
            };
            state.locals.insert(name, havocked);
        }
    }

    // -----------------------------------------------------------------
    // Expressions
    // -----------------------------------------------------------------

    fn eval_scalar(&mut self, expr: &ast::Expr, state: &mut State) -> Expr {
        match self.eval(expr, state) {
            SymValue::Scalar(e) => e,
            _ => Expr::Var(self.fresh_int("opaque")),
        }
    }

    fn vec_of(&mut self, expr: &ast::Expr, state: &State) -> Option<(String, Name, Expr)> {
        let name = match expr {
            ast::Expr::Var(name, _) => name.clone(),
            ast::Expr::Deref(inner, _) => match inner.as_ref() {
                ast::Expr::Var(name, _) => name.clone(),
                _ => return None,
            },
            _ => return None,
        };
        match state.locals.get(&name) {
            Some(SymValue::Vec { array, len }) => Some((name, *array, len.clone())),
            _ => None,
        }
    }

    fn eval(&mut self, expr: &ast::Expr, state: &mut State) -> SymValue {
        match expr {
            ast::Expr::Int(i, _) => SymValue::Scalar(Expr::int(*i)),
            ast::Expr::Float(_, _) => SymValue::Float,
            ast::Expr::Bool(b, _) => SymValue::Scalar(Expr::bool(*b)),
            ast::Expr::Var(name, _) => state
                .locals
                .get(name)
                .cloned()
                .unwrap_or(SymValue::Scalar(Expr::Var(Name::intern(name)))),
            ast::Expr::Unary(op, inner, _) => {
                let v = self.eval_scalar(inner, state);
                match op {
                    UnOpKind::Neg => SymValue::Scalar(Expr::neg(v)),
                    UnOpKind::Not => SymValue::Scalar(Expr::not(v)),
                }
            }
            ast::Expr::Binary(op, lhs, rhs, _) => {
                let l = self.eval(lhs, state);
                let r = self.eval(rhs, state);
                if matches!(l, SymValue::Float) || matches!(r, SymValue::Float) {
                    return match op {
                        BinOpKind::Lt
                        | BinOpKind::Le
                        | BinOpKind::Gt
                        | BinOpKind::Ge
                        | BinOpKind::Eq
                        | BinOpKind::Ne => SymValue::Scalar(Expr::Var(self.fresh_bool("fcmp"))),
                        _ => SymValue::Float,
                    };
                }
                let l = self.scalar_or_fresh(l);
                let r = self.scalar_or_fresh(r);
                let e = match op {
                    BinOpKind::Add => l + r,
                    BinOpKind::Sub => l - r,
                    BinOpKind::Mul => l * r,
                    BinOpKind::Div => Expr::binop(flux_logic::BinOp::Div, l, r),
                    BinOpKind::Rem => Expr::binop(flux_logic::BinOp::Mod, l, r),
                    BinOpKind::Eq => Expr::eq(l, r),
                    BinOpKind::Ne => Expr::ne(l, r),
                    BinOpKind::Lt => Expr::lt(l, r),
                    BinOpKind::Le => Expr::le(l, r),
                    BinOpKind::Gt => Expr::gt(l, r),
                    BinOpKind::Ge => Expr::ge(l, r),
                    BinOpKind::And => Expr::and(l, r),
                    BinOpKind::Or => Expr::or(l, r),
                };
                SymValue::Scalar(e)
            }
            ast::Expr::Deref(inner, _) => self.eval(inner, state),
            ast::Expr::Borrow { place, .. } => self.eval(place, state),
            ast::Expr::Index { recv, index, span } => {
                let idx = self.eval_scalar(index, state);
                match self.vec_of(recv, state) {
                    Some((_, array, len)) => {
                        self.check(
                            state,
                            Expr::and(
                                Expr::ge(idx.clone(), Expr::int(0)),
                                Expr::lt(idx.clone(), len),
                            ),
                            *span,
                            "index in bounds",
                        );
                        SymValue::Scalar(Expr::app("select", vec![Expr::Var(array), idx]))
                    }
                    None => SymValue::Scalar(Expr::Var(self.fresh_int("elem"))),
                }
            }
            ast::Expr::MethodCall {
                recv,
                method,
                args,
                span,
            } => self.eval_method(recv, method, args, state, *span),
            ast::Expr::Call { func, args, span } => self.eval_call(func, args, state, *span),
            ast::Expr::If {
                cond, then, els, ..
            } => self.eval_if(cond, then, els.as_ref(), state),
        }
    }

    fn eval_if(
        &mut self,
        cond: &ast::Expr,
        then: &ast::Block,
        els: Option<&ast::Block>,
        state: &mut State,
    ) -> SymValue {
        let c = self.eval_scalar(cond, state);
        let base_facts = state.facts.len();
        let mut then_state = state.clone();
        then_state.facts.push(c.clone());
        let then_val = self.exec_block(then, &mut then_state);
        let mut els_state = state.clone();
        els_state.facts.push(Expr::not(c.clone()));
        let els_val = match els {
            Some(block) => self.exec_block(block, &mut els_state),
            None => None,
        };
        // Re-export the facts each branch accumulated (frame axioms from
        // stores/pushes/swaps, nested merges), guarded by the branch
        // condition.  Dropping them would disconnect the merged locals below
        // from their defining constraints.  The `+ 1` skips the branch
        // condition itself, re-pushed above.
        let then_new: Vec<Expr> = then_state.facts[base_facts + 1..].to_vec();
        if !then_new.is_empty() {
            state
                .facts
                .push(Expr::imp(c.clone(), Expr::and_all(then_new)));
        }
        let els_new: Vec<Expr> = els_state.facts[base_facts + 1..].to_vec();
        if !els_new.is_empty() {
            state
                .facts
                .push(Expr::imp(Expr::not(c.clone()), Expr::and_all(els_new)));
        }
        // Merge the two states back into `state`.
        let keys: Vec<String> = state.locals.keys().cloned().collect();
        for key in keys {
            let tv = then_state.locals.get(&key).cloned();
            let ev = els_state.locals.get(&key).cloned();
            match (tv, ev) {
                (Some(SymValue::Scalar(a)), Some(SymValue::Scalar(b))) => {
                    // Both branches may have assigned the same *new* value,
                    // so the merged value must come from the branch states
                    // even when they agree — keeping the pre-branch value
                    // would be unsound.
                    let merged = if a == b {
                        a
                    } else {
                        Expr::ite(c.clone(), a, b)
                    };
                    state.locals.insert(key, SymValue::Scalar(merged));
                }
                (
                    Some(SymValue::Vec { array: a, len: la }),
                    Some(SymValue::Vec { array: b, len: lb }),
                ) => {
                    if a == b && la == lb {
                        state
                            .locals
                            .insert(key, SymValue::Vec { array: a, len: la });
                        continue;
                    }
                    let array = self.fresh_array("merged");
                    let len = self.fresh_int("merged_len");
                    // Array equality is opaque to the theory solver, so the
                    // merged array is connected to each branch's array by a
                    // universally quantified frame axiom over its contents
                    // (alongside the length equation).
                    let j = Name::fresh("j");
                    let frame = |source: Name| {
                        Expr::forall(
                            vec![(j, Sort::Int)],
                            Expr::eq(
                                Expr::app("select", vec![Expr::Var(array), Expr::Var(j)]),
                                Expr::app("select", vec![Expr::Var(source), Expr::Var(j)]),
                            ),
                        )
                    };
                    state.facts.push(Expr::imp(
                        c.clone(),
                        Expr::and(frame(a), Expr::eq(Expr::Var(len), la)),
                    ));
                    state.facts.push(Expr::imp(
                        Expr::not(c.clone()),
                        Expr::and(frame(b), Expr::eq(Expr::Var(len), lb)),
                    ));
                    state.locals.insert(
                        key,
                        SymValue::Vec {
                            array,
                            len: Expr::Var(len),
                        },
                    );
                }
                _ => {}
            }
        }
        match (then_val, els_val) {
            (Some(SymValue::Scalar(a)), Some(SymValue::Scalar(b))) => {
                SymValue::Scalar(Expr::ite(c, a, b))
            }
            (Some(v), None) | (None, Some(v)) => v,
            (Some(SymValue::Float), Some(SymValue::Float)) => SymValue::Float,
            _ => SymValue::Unit,
        }
    }

    fn eval_method(
        &mut self,
        recv: &ast::Expr,
        method: &str,
        args: &[ast::Expr],
        state: &mut State,
        span: Span,
    ) -> SymValue {
        match method {
            "len" => match self.vec_of(recv, state) {
                Some((_, _, len)) => SymValue::Scalar(len),
                None => SymValue::Scalar(Expr::Var(self.fresh_int("len"))),
            },
            "get" | "get_mut" => {
                let idx = self.eval_scalar(&args[0], state);
                match self.vec_of(recv, state) {
                    Some((_, array, len)) => {
                        self.check(
                            state,
                            Expr::and(
                                Expr::ge(idx.clone(), Expr::int(0)),
                                Expr::lt(idx.clone(), len),
                            ),
                            span,
                            "index in bounds",
                        );
                        SymValue::Scalar(Expr::app("select", vec![Expr::Var(array), idx]))
                    }
                    None => SymValue::Scalar(Expr::Var(self.fresh_int("elem"))),
                }
            }
            "push" => {
                let value = self.eval(&args[0], state);
                if let Some((name, array, len)) = self.vec_of(recv, state) {
                    let new_array = self.fresh_array(&format!("{name}_push"));
                    let j = Name::fresh("j");
                    state.facts.push(Expr::forall(
                        vec![(j, Sort::Int)],
                        Expr::imp(
                            Expr::and(
                                Expr::ge(Expr::Var(j), Expr::int(0)),
                                Expr::lt(Expr::Var(j), len.clone()),
                            ),
                            Expr::eq(
                                Expr::app("select", vec![Expr::Var(new_array), Expr::Var(j)]),
                                Expr::app("select", vec![Expr::Var(array), Expr::Var(j)]),
                            ),
                        ),
                    ));
                    if let SymValue::Scalar(v) = value {
                        state.facts.push(Expr::eq(
                            Expr::app("select", vec![Expr::Var(new_array), len.clone()]),
                            v,
                        ));
                    }
                    state.locals.insert(
                        name,
                        SymValue::Vec {
                            array: new_array,
                            len: len + Expr::int(1),
                        },
                    );
                }
                SymValue::Unit
            }
            "pop" => {
                if let Some((name, array, len)) = self.vec_of(recv, state) {
                    self.check(
                        state,
                        Expr::ge(len.clone(), Expr::int(1)),
                        span,
                        "pop from non-empty vector",
                    );
                    let value =
                        Expr::app("select", vec![Expr::Var(array), len.clone() - Expr::int(1)]);
                    state.locals.insert(
                        name,
                        SymValue::Vec {
                            array,
                            len: len - Expr::int(1),
                        },
                    );
                    SymValue::Scalar(value)
                } else {
                    SymValue::Scalar(Expr::Var(self.fresh_int("popped")))
                }
            }
            "swap" => {
                let i = self.eval_scalar(&args[0], state);
                let jj = self.eval_scalar(&args[1], state);
                if let Some((name, _, len)) = self.vec_of(recv, state) {
                    self.check(
                        state,
                        Expr::and(
                            Expr::and(Expr::ge(i.clone(), Expr::int(0)), Expr::lt(i, len.clone())),
                            Expr::and(
                                Expr::ge(jj.clone(), Expr::int(0)),
                                Expr::lt(jj, len.clone()),
                            ),
                        ),
                        span,
                        "swap indices in bounds",
                    );
                    let array = self.fresh_array(&format!("{name}_swap"));
                    state.locals.insert(name, SymValue::Vec { array, len });
                }
                SymValue::Unit
            }
            _ => SymValue::Scalar(Expr::Var(self.fresh_int("method"))),
        }
    }

    fn eval_call(
        &mut self,
        func: &str,
        args: &[ast::Expr],
        state: &mut State,
        span: Span,
    ) -> SymValue {
        if func == "RVec::new" {
            let array = self.fresh_array("new_vec");
            return SymValue::Vec {
                array,
                len: Expr::int(0),
            };
        }
        let Some(callee) = self.program.function(func).cloned() else {
            return SymValue::Scalar(Expr::Var(self.fresh_int("call")));
        };
        // Bind arguments to parameter names for contract substitution.
        let mut call_state = State {
            locals: BTreeMap::new(),
            facts: state.facts.clone(),
        };
        for (param, arg) in callee.params.iter().zip(args) {
            let value = self.eval(arg, state);
            call_state.locals.insert(param.name.clone(), value);
        }
        // Preconditions at the call site.
        for (i, pre) in callee.requires.iter().enumerate() {
            let goal = self.spec_pred(pre, &call_state);
            self.check(
                state,
                goal,
                span,
                &format!("precondition #{} of `{func}`", i + 1),
            );
        }
        // Havoc mutable reference arguments (the callee may change them).
        for (param, arg) in callee.params.iter().zip(args) {
            if matches!(param.ty, RustTy::Ref(ast::Mutability::Mutable, _)) {
                if let ast::Expr::Borrow { place, .. } = arg {
                    if let ast::Expr::Var(name, _) = place.as_ref() {
                        if let Some(value) = state.locals.get(name).cloned() {
                            let havocked = match value {
                                SymValue::Vec { .. } => {
                                    let array = self.fresh_array(&format!("{name}_after"));
                                    let len = self.fresh_int(&format!("{name}_len_after"));
                                    state.facts.push(Expr::ge(Expr::Var(len), Expr::int(0)));
                                    SymValue::Vec {
                                        array,
                                        len: Expr::Var(len),
                                    }
                                }
                                SymValue::Scalar(_) => {
                                    SymValue::Scalar(Expr::Var(self.fresh_int(name)))
                                }
                                other => other,
                            };
                            state.locals.insert(name.clone(), havocked.clone());
                            call_state.locals.insert(param.name.clone(), havocked);
                        }
                    }
                }
            }
        }
        // Assume postconditions about a fresh result.
        let result = self.havoc("call_result", &callee.ret, state);
        call_state
            .locals
            .insert("result".to_owned(), result.clone());
        for post in &callee.ensures {
            let fact = self.spec_pred(post, &call_state);
            state.facts.push(fact);
        }
        result
    }

    fn scalar_or_fresh(&mut self, value: SymValue) -> Expr {
        match value {
            SymValue::Scalar(e) => e,
            _ => Expr::Var(self.fresh_int("opaque")),
        }
    }
}

/// Replaces positive-position universally quantified subformulas that talk
/// about arrays — none of which are `relevant` — by `true`.  Negative
/// positions are left untouched (weakening a hypothesis there would
/// strengthen the overall assumption, which would be unsound).
fn prune_quants(
    e: &Expr,
    positive: bool,
    relevant: &std::collections::BTreeSet<Name>,
    ctx: &SortCtx,
) -> Expr {
    match e {
        Expr::Forall(_, _) if positive => {
            let arrays: Vec<Name> = e
                .free_vars()
                .into_iter()
                .filter(|v| ctx.lookup(*v) == Some(Sort::Array))
                .collect();
            if !arrays.is_empty() && arrays.iter().all(|a| !relevant.contains(a)) {
                Expr::tt()
            } else {
                e.clone()
            }
        }
        Expr::UnOp(flux_logic::UnOp::Not, inner) => {
            Expr::not(prune_quants(inner, !positive, relevant, ctx))
        }
        Expr::BinOp(flux_logic::BinOp::Imp, lhs, rhs) => Expr::imp(
            prune_quants(lhs, !positive, relevant, ctx),
            prune_quants(rhs, positive, relevant, ctx),
        ),
        Expr::BinOp(op @ (flux_logic::BinOp::And | flux_logic::BinOp::Or), lhs, rhs) => {
            Expr::binop(
                *op,
                prune_quants(lhs, positive, relevant, ctx),
                prune_quants(rhs, positive, relevant, ctx),
            )
        }
        other => other.clone(),
    }
}

/// Collects the names of locals assigned (or mutated through methods)
/// anywhere in a block.
fn collect_assigned(block: &ast::Block, out: &mut Vec<String>) {
    fn expr_mutations(expr: &ast::Expr, out: &mut Vec<String>) {
        match expr {
            ast::Expr::MethodCall { recv, method, .. }
                if matches!(method.as_str(), "push" | "pop" | "swap") =>
            {
                if let ast::Expr::Var(name, _) = recv.as_ref() {
                    out.push(name.clone());
                }
            }
            ast::Expr::Call { args, .. } => {
                // Mutable borrows passed to callees may be modified.
                for arg in args {
                    if let ast::Expr::Borrow {
                        place,
                        mutability: ast::Mutability::Mutable,
                        ..
                    } = arg
                    {
                        if let ast::Expr::Var(name, _) = place.as_ref() {
                            out.push(name.clone());
                        }
                    }
                }
            }
            // Mutations may hide inside either branch of a conditional;
            // missing them here would leave loop-modified locals unhavocked
            // at the loop head, which is unsound.
            ast::Expr::If { then, els, .. } => {
                collect_assigned(then, out);
                if let Some(els) = els {
                    collect_assigned(els, out);
                }
            }
            _ => {}
        }
    }
    for stmt in &block.stmts {
        match stmt {
            ast::Stmt::Let { name, init, .. } => {
                out.push(name.clone());
                expr_mutations(init, out);
            }
            ast::Stmt::Assign { place, .. } => match place {
                ast::Expr::Var(name, _) => out.push(name.clone()),
                ast::Expr::Deref(inner, _) => {
                    if let ast::Expr::Var(name, _) = inner.as_ref() {
                        out.push(name.clone());
                    }
                }
                ast::Expr::Index { recv, .. } => {
                    if let ast::Expr::Var(name, _) = recv.as_ref() {
                        out.push(name.clone());
                    }
                }
                _ => {}
            },
            ast::Stmt::While { body, .. } => collect_assigned(body, out),
            ast::Stmt::Expr { expr, .. } => expr_mutations(expr, out),
            _ => {}
        }
    }
    if let Some(tail) = &block.tail {
        expr_mutations(tail, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn verify(src: &str) -> WpReport {
        verify_source(src, &WpConfig::default()).expect("parse failure")
    }

    fn assert_safe(src: &str) {
        let report = verify(src);
        let errors: Vec<_> = report
            .functions
            .iter()
            .flat_map(|f| f.errors.iter().map(|e| e.message.clone()))
            .collect();
        assert!(report.is_safe(), "expected safe, got {errors:?}");
    }

    fn assert_unsafe(src: &str) {
        assert!(!verify(src).is_safe(), "expected verification errors");
    }

    /// Verifying under the lint audit tier is verdict-identical and counts
    /// every obligation and hypothesis it checked.  (The tier is set through
    /// the config, not the process-global `FLUX_AUDIT`, so the test is
    /// hermetic.)  A vector loop is used so quantified frame axioms — the
    /// hardest hypotheses to keep well-scoped — flow through the lint.
    #[test]
    fn lint_tier_is_verdict_identical_and_counts_checks() {
        let src = r#"
            fn fill(n: usize) {
                let mut v = RVec::new();
                let mut i = 0;
                while i < n {
                    invariant!(i >= 0);
                    invariant!(i <= n);
                    invariant!(vlen(v) == i);
                    invariant!(forall k . 0 <= k && k < vlen(v) ==> sel(v, k) >= 0);
                    v.push(i);
                    i += 1;
                }
                assert!(vlen(v) == n);
            }
            "#;
        let audited_config = WpConfig {
            smt: SmtConfig {
                audit: AuditTier::Lint,
                ..SmtConfig::default()
            },
        };
        let plain_config = WpConfig {
            smt: SmtConfig {
                audit: AuditTier::Off,
                ..SmtConfig::default()
            },
        };
        let audited = verify_source(src, &audited_config).expect("parse failure");
        let plain = verify_source(src, &plain_config).expect("parse failure");
        assert_eq!(audited.is_safe(), plain.is_safe());
        assert!(
            audited.functions[0].lint_checks > 0,
            "the lint tier never checked an obligation"
        );
        assert_eq!(plain.functions[0].lint_checks, 0);
    }

    #[test]
    fn assertions_with_contracts() {
        assert_safe(
            r#"
            #[requires(x > 0)]
            fn positive(x: i32) {
                assert!(x > 0);
            }
            "#,
        );
        assert_unsafe(
            r#"
            fn positive(x: i32) {
                assert!(x > 0);
            }
            "#,
        );
    }

    #[test]
    fn postconditions_are_checked() {
        assert_safe(
            r#"
            #[ensures(result >= x)]
            fn id(x: i32) -> i32 { x }
            "#,
        );
        assert_unsafe(
            r#"
            #[ensures(result > x)]
            fn id(x: i32) -> i32 { x }
            "#,
        );
    }

    #[test]
    fn loop_needs_an_invariant_annotation() {
        assert_unsafe(
            r#"
            #[requires(n >= 0)]
            #[ensures(result == n)]
            fn count(n: i32) -> i32 {
                let mut i = 0;
                while i < n {
                    i += 1;
                }
                i
            }
            "#,
        );
        assert_safe(
            r#"
            #[requires(n >= 0)]
            #[ensures(result == n)]
            fn count(n: i32) -> i32 {
                let mut i = 0;
                while i < n {
                    invariant!(i <= n);
                    i += 1;
                }
                i
            }
            "#,
        );
    }

    #[test]
    fn vector_reads_require_bounds_facts() {
        assert_safe(
            r#"
            fn sum(v: RVec<i32>) -> i32 {
                let mut total = 0;
                let mut i = 0;
                while i < v.len() {
                    invariant!(i >= 0);
                    total = total + v.get(i);
                    i += 1;
                }
                total
            }
            "#,
        );
        assert_unsafe(
            r#"
            fn bad(v: RVec<i32>, i: usize) -> i32 {
                v.get(i)
            }
            "#,
        );
    }

    #[test]
    fn quantified_invariants_about_contents() {
        assert_safe(
            r#"
            fn build(n: usize) {
                let mut v = RVec::new();
                let mut i = 0;
                while i < n {
                    invariant!(i >= 0);
                    invariant!(i <= n);
                    invariant!(vlen(v) == i);
                    invariant!(forall k . 0 <= k && k < vlen(v) ==> sel(v, k) >= 0);
                    v.push(1);
                    i += 1;
                }
                let mut j = 0;
                while j < n {
                    invariant!(j >= 0);
                    invariant!(vlen(v) == n);
                    invariant!(forall k . 0 <= k && k < vlen(v) ==> sel(v, k) >= 0);
                    let x = v.get(j);
                    assert!(x >= 0);
                    j += 1;
                }
            }
            "#,
        );
    }

    #[test]
    fn callee_contracts_are_used() {
        assert_safe(
            r#"
            #[requires(x >= 0)]
            #[ensures(result >= 1)]
            fn bump(x: i32) -> i32 { x + 1 }

            fn caller() {
                let y = bump(3);
                assert!(y >= 1);
            }
            "#,
        );
        assert_unsafe(
            r#"
            #[requires(x >= 0)]
            fn bump(x: i32) -> i32 { x + 1 }

            fn caller(z: i32) {
                let y = bump(z);
                assert!(y == y);
            }
            "#,
        );
    }

    #[test]
    fn report_counts_queries() {
        let report = verify(
            r#"
            fn trivial(x: i32) {
                assert!(x == x);
            }
            "#,
        );
        assert_eq!(report.functions.len(), 1);
        assert!(report.functions[0].queries >= 1);
        assert!(report.total_time() > Duration::ZERO);
    }
}
