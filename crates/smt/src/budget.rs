//! Resource budgets: wall-clock deadlines and step caps for every hot loop
//! in the solving stack.
//!
//! A [`ResourceBudget`] rides inside [`crate::SmtConfig`] (and from there
//! into the SAT and simplex configs), so one value threads from the fixpoint
//! solver down to the innermost decision/pivot loops.  Exhaustion never
//! panics and never flips a verdict: every governed loop degrades to its
//! existing `Unknown` result (`SatResult::Unknown`, `LiaResult::Unknown`,
//! [`crate::Validity::Unknown`]), which the layers above already treat as
//! "not proved".
//!
//! The wall-clock half has two phases: a *relative* `timeout` (what configs
//! and the `FLUX_DEADLINE_MS` environment variable express) and an
//! *absolute* `deadline` stamped once at the top of a solve via
//! [`ResourceBudget::stamp`].  Checks are amortized — hot loops consult the
//! clock every few hundred iterations — so an unlimited budget costs a few
//! branch instructions per check site and changes no query counts.

use flux_logic::env_parse;
use std::sync::OnceLock;
use std::time::{Duration, Instant};

/// Step and wall-clock limits for one solve.  The default is unlimited
/// (every field `None`) except that [`SmtConfig::default`](crate::SmtConfig)
/// reads `FLUX_DEADLINE_MS` into `timeout`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ResourceBudget {
    /// Relative wall-clock limit per top-level solve; converted to an
    /// absolute [`ResourceBudget::deadline`] by [`ResourceBudget::stamp`].
    pub timeout: Option<Duration>,
    /// Absolute wall-clock deadline; set by [`ResourceBudget::stamp`] (or
    /// directly by a caller that owns the clock).
    pub deadline: Option<Instant>,
    /// Cap on SAT branching decisions per SAT-solver invocation.
    pub sat_decisions: Option<u64>,
    /// Cap on SAT conflicts per SAT-solver invocation.
    pub sat_conflicts: Option<u64>,
    /// Cap on simplex pivots per rational-feasibility repair.
    pub pivots: Option<u64>,
    /// Cap on branch-and-bound nodes per integer-feasibility check
    /// (tightens the existing `max_branch_nodes`).
    pub branch_nodes: Option<u64>,
    /// Cap on instances per quantifier (tightens the existing
    /// `max_instances_per_quantifier`).
    pub quant_instances: Option<u64>,
    /// Cap on fixpoint weakening iterations per solve (tightens the
    /// existing `max_iterations`).
    pub weaken_iterations: Option<u64>,
}

impl ResourceBudget {
    /// The unlimited budget: no deadline, no step caps.
    pub const UNLIMITED: ResourceBudget = ResourceBudget {
        timeout: None,
        deadline: None,
        sat_decisions: None,
        sat_conflicts: None,
        pivots: None,
        branch_nodes: None,
        quant_instances: None,
        weaken_iterations: None,
    };

    /// A budget with every *step* cap set to `steps` (no wall-clock limit);
    /// what the `table1 --budget N` flag installs.
    pub fn uniform_steps(steps: u64) -> ResourceBudget {
        ResourceBudget {
            sat_decisions: Some(steps),
            sat_conflicts: Some(steps),
            pivots: Some(steps),
            branch_nodes: Some(steps),
            quant_instances: Some(steps),
            weaken_iterations: Some(steps),
            ..ResourceBudget::UNLIMITED
        }
    }

    /// True when no limit of any kind is configured.
    pub fn is_unlimited(&self) -> bool {
        *self == ResourceBudget::UNLIMITED
    }

    /// Converts the relative `timeout` into an absolute `deadline`, once:
    /// a no-op when there is no timeout or a deadline is already stamped.
    /// Called at the top of each top-level solve (fixpoint solve entry,
    /// session open, one-shot query) so nested layers all race the same
    /// clock.
    pub fn stamp(&mut self) {
        if self.deadline.is_none() {
            if let Some(timeout) = self.timeout {
                self.deadline = Some(Instant::now() + timeout);
            }
        }
    }

    /// [`ResourceBudget::stamp`] by value.
    pub fn stamped(mut self) -> ResourceBudget {
        self.stamp();
        self
    }

    /// True when a stamped deadline has passed.  Costs nothing when no
    /// deadline is set (the common, unlimited case).
    pub fn deadline_exceeded(&self) -> bool {
        self.deadline.is_some_and(|d| Instant::now() >= d)
    }
}

/// The process-default solve timeout, read once from `FLUX_DEADLINE_MS`
/// (warn-and-default parsing; `0`, empty or unset mean no deadline).
pub fn default_timeout() -> Option<Duration> {
    static MS: OnceLock<Option<u64>> = OnceLock::new();
    MS.get_or_init(|| {
        let ms = env_parse("FLUX_DEADLINE_MS", 0u64);
        (ms > 0).then_some(ms)
    })
    .map(Duration::from_millis)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_budget_never_trips() {
        let budget = ResourceBudget::default();
        assert!(budget.is_unlimited());
        assert!(!budget.deadline_exceeded());
        assert_eq!(
            budget.stamped(),
            budget,
            "stamping without a timeout is a no-op"
        );
    }

    #[test]
    fn stamping_sets_a_deadline_once() {
        let mut budget = ResourceBudget {
            timeout: Some(Duration::from_secs(3600)),
            ..ResourceBudget::UNLIMITED
        };
        budget.stamp();
        let first = budget.deadline.expect("stamp sets the deadline");
        budget.stamp();
        assert_eq!(
            budget.deadline,
            Some(first),
            "re-stamping must not move the deadline"
        );
        assert!(
            !budget.deadline_exceeded(),
            "an hour-long deadline has not passed"
        );
    }

    #[test]
    fn an_expired_deadline_is_detected() {
        let budget = ResourceBudget {
            timeout: Some(Duration::ZERO),
            ..ResourceBudget::UNLIMITED
        }
        .stamped();
        assert!(budget.deadline_exceeded());
    }

    #[test]
    fn uniform_steps_caps_every_step_budget() {
        let budget = ResourceBudget::uniform_steps(7);
        assert_eq!(budget.sat_decisions, Some(7));
        assert_eq!(budget.sat_conflicts, Some(7));
        assert_eq!(budget.pivots, Some(7));
        assert_eq!(budget.branch_nodes, Some(7));
        assert_eq!(budget.quant_instances, Some(7));
        assert_eq!(budget.weaken_iterations, Some(7));
        assert_eq!(budget.timeout, None);
        assert!(!budget.is_unlimited());
    }
}
