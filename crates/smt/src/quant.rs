//! Bounded quantifier handling.
//!
//! Flux itself only ever emits quantifier-free verification conditions —
//! that is the central ergonomic claim of the paper.  The program-logic
//! baseline (`flux-wp`), however, models containers with universally
//! quantified axioms and user-written quantified loop invariants, exactly
//! like Prusti.  This module gives the SMT solver a sound but incomplete way
//! to discharge such formulas:
//!
//! * existentials in satisfiability position are *skolemised* to fresh
//!   constants,
//! * universals in satisfiability position are replaced by finite
//!   conjunctions of *ground instances*, drawn from candidate terms that
//!   appear in the formula; instantiation runs for a configurable number of
//!   rounds so that instances can feed new candidate terms,
//! * any quantifier that survives (e.g. nested alternation the heuristics do
//!   not cover) is abstracted by a fresh boolean variable.
//!
//! All three steps only ever *weaken* the formula whose unsatisfiability the
//! verifier is trying to establish, so the verifier can fail to prove a
//! valid program but can never accept an invalid one.  The instantiation
//! work is also the reason the baseline is slow — mirroring the behaviour
//! the paper reports for Prusti (§5.2).

use flux_logic::{BinOp, Constant, Expr, Name, Sort, SortCtx, UnOp};
use std::collections::BTreeSet;

/// Configuration for quantifier elimination.
#[derive(Clone, Copy, Debug)]
pub struct QuantConfig {
    /// Number of instantiation rounds.
    pub rounds: usize,
    /// Maximum number of candidate terms considered per sort.
    pub max_candidates: usize,
    /// Maximum number of instances generated per quantifier per round.
    pub max_instances_per_quantifier: usize,
}

impl Default for QuantConfig {
    fn default() -> Self {
        QuantConfig {
            rounds: 2,
            max_candidates: 24,
            max_instances_per_quantifier: 600,
        }
    }
}

/// Statistics about the elimination, used by benchmarks and tests.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct QuantStats {
    /// Total number of ground instances generated.
    pub instances: usize,
    /// Number of skolem constants introduced.
    pub skolems: usize,
    /// Number of quantifiers abstracted away as opaque booleans.
    pub abstracted: usize,
}

/// Eliminates quantifiers from `expr` (interpreted in satisfiability
/// position).  Returns the quantifier-free formula, the sort context
/// extended with skolem constants, and statistics.
pub fn eliminate_quantifiers(
    expr: &Expr,
    ctx: &SortCtx,
    config: &QuantConfig,
) -> (Expr, SortCtx, QuantStats) {
    let mut stats = QuantStats::default();
    if !expr.has_quantifier() {
        return (expr.clone(), ctx.clone(), stats);
    }
    let mut extended = ctx.clone();
    let skolemized = skolemize(expr, true, &mut extended, &mut stats);

    let mut current = skolemized.clone();
    for _ in 0..config.rounds.max(1) {
        let candidates = collect_candidates(&current, &extended, config);
        current = instantiate(&skolemized, true, &candidates, config, &mut stats);
        if !current.has_quantifier() {
            break;
        }
    }
    let result = abstract_remaining(&current, &mut stats);
    (result, extended, stats)
}

/// Skolemises existentials (and universals in negative position) that are
/// not nested under a universal quantifier.
fn skolemize(expr: &Expr, positive: bool, ctx: &mut SortCtx, stats: &mut QuantStats) -> Expr {
    match expr {
        Expr::Var(_) | Expr::Const(_) | Expr::App(..) => expr.clone(),
        Expr::UnOp(UnOp::Not, inner) => Expr::not(skolemize(inner, !positive, ctx, stats)),
        Expr::UnOp(op, inner) => Expr::unop(*op, skolemize(inner, positive, ctx, stats)),
        Expr::BinOp(BinOp::Imp, lhs, rhs) => Expr::binop(
            BinOp::Imp,
            skolemize(lhs, !positive, ctx, stats),
            skolemize(rhs, positive, ctx, stats),
        ),
        Expr::BinOp(BinOp::Iff, ..) => expr.clone(), // handled conservatively later
        Expr::BinOp(op, lhs, rhs) => Expr::binop(
            *op,
            skolemize(lhs, positive, ctx, stats),
            skolemize(rhs, positive, ctx, stats),
        ),
        Expr::Ite(c, t, e) => Expr::ite(
            (**c).clone(),
            skolemize(t, positive, ctx, stats),
            skolemize(e, positive, ctx, stats),
        ),
        Expr::Exists(binders, body) if positive => {
            let renamed = skolem_subst(binders, ctx, stats);
            skolemize(&renamed.apply(body), positive, ctx, stats)
        }
        Expr::Forall(binders, body) if !positive => {
            let renamed = skolem_subst(binders, ctx, stats);
            skolemize(&renamed.apply(body), positive, ctx, stats)
        }
        Expr::Forall(binders, body) => {
            // Positive universal: keep; do not skolemise inside (nested
            // existentials under a universal are abstracted later).
            Expr::Forall(binders.clone(), body.clone())
        }
        Expr::Exists(binders, body) => Expr::Exists(binders.clone(), body.clone()),
    }
}

fn skolem_subst(
    binders: &[(Name, Sort)],
    ctx: &mut SortCtx,
    stats: &mut QuantStats,
) -> flux_logic::Subst {
    let mut subst = flux_logic::Subst::new();
    for (name, sort) in binders {
        let fresh = Name::fresh(&format!("$sk_{name}"));
        ctx.push(fresh, *sort);
        subst.insert(*name, Expr::Var(fresh));
        stats.skolems += 1;
    }
    subst
}

/// Candidate ground terms per sort.
#[derive(Default, Debug)]
struct Candidates {
    ints: Vec<Expr>,
    /// Ground integer-sorted terms that occur as *arguments of uninterpreted
    /// applications* (array indices, mostly).  Binders with at least one
    /// occurrence in application-argument position are instantiated from
    /// this smaller set — a trigger/E-matching-style restriction that is
    /// deliberately stronger than "only ever used as an argument": it keeps
    /// frame axioms from being multiplied by every scalar term in the
    /// formula, at the cost of missing instances a mixed-use binder might
    /// have needed at a non-index term (sound: instantiation can only
    /// weaken what the verifier assumes).
    app_ints: Vec<Expr>,
    others: Vec<(Sort, Expr)>,
}

impl Candidates {
    fn of_sort(&self, sort: Sort) -> Vec<Expr> {
        match sort {
            Sort::Int => self.ints.clone(),
            _ => self
                .others
                .iter()
                .filter(|(s, _)| *s == sort)
                .map(|(_, e)| e.clone())
                .collect(),
        }
    }

    fn triggered(&self, sort: Sort) -> Vec<Expr> {
        match sort {
            Sort::Int => self.app_ints.clone(),
            other => self.of_sort(other),
        }
    }
}

fn collect_candidates(expr: &Expr, ctx: &SortCtx, config: &QuantConfig) -> Candidates {
    let mut ints: BTreeSet<Expr> = BTreeSet::new();
    let mut app_ints: BTreeSet<Expr> = BTreeSet::new();
    let mut others: BTreeSet<(Sort, Expr)> = BTreeSet::new();
    // Always include small integer constants: they seed instantiations such
    // as "the first element" that quantified invariants frequently need.
    ints.insert(Expr::int(0));
    app_ints.insert(Expr::int(0));

    fn go(
        e: &Expr,
        bound: &mut Vec<Name>,
        in_app: bool,
        ctx: &SortCtx,
        ints: &mut BTreeSet<Expr>,
        app_ints: &mut BTreeSet<Expr>,
        others: &mut BTreeSet<(Sort, Expr)>,
    ) {
        let ground = e.free_vars().iter().all(|v| !bound.contains(v));
        if ground {
            match e {
                Expr::Var(name) => {
                    if let Some(sort) = ctx.lookup(*name) {
                        match sort {
                            Sort::Int => {
                                ints.insert(e.clone());
                                if in_app {
                                    app_ints.insert(e.clone());
                                }
                            }
                            Sort::Bool => {}
                            other => {
                                others.insert((other, e.clone()));
                            }
                        }
                    }
                }
                Expr::Const(Constant::Int(_)) => {
                    ints.insert(e.clone());
                    if in_app {
                        app_ints.insert(e.clone());
                    }
                }
                Expr::App(f, _) => {
                    if let Some((_, ret)) = ctx.lookup_fn(*f) {
                        match ret {
                            Sort::Int => {
                                ints.insert(e.clone());
                                if in_app {
                                    app_ints.insert(e.clone());
                                }
                            }
                            Sort::Bool => {}
                            other => {
                                others.insert((other, e.clone()));
                            }
                        }
                    }
                }
                _ => {
                    // A compound ground term (e.g. `len - 1`) in argument
                    // position is itself a trigger candidate.
                    if in_app {
                        if let Ok(Sort::Int) = sort_of_ground(e, ctx) {
                            app_ints.insert(e.clone());
                        }
                    }
                }
            }
        }
        match e {
            Expr::UnOp(_, inner) => go(inner, bound, in_app, ctx, ints, app_ints, others),
            Expr::BinOp(_, l, r) => {
                go(l, bound, in_app, ctx, ints, app_ints, others);
                go(r, bound, in_app, ctx, ints, app_ints, others);
            }
            Expr::Ite(c, t, el) => {
                go(c, bound, in_app, ctx, ints, app_ints, others);
                go(t, bound, in_app, ctx, ints, app_ints, others);
                go(el, bound, in_app, ctx, ints, app_ints, others);
            }
            Expr::App(_, args) => {
                for a in args {
                    go(a, bound, true, ctx, ints, app_ints, others);
                }
            }
            Expr::Forall(binders, body) | Expr::Exists(binders, body) => {
                let before = bound.len();
                bound.extend(binders.iter().map(|(n, _)| *n));
                go(body, bound, in_app, ctx, ints, app_ints, others);
                bound.truncate(before);
            }
            _ => {}
        }
    }
    go(
        expr,
        &mut Vec::new(),
        false,
        ctx,
        &mut ints,
        &mut app_ints,
        &mut others,
    );

    Candidates {
        ints: ints.into_iter().take(config.max_candidates).collect(),
        app_ints: app_ints.into_iter().take(config.max_candidates).collect(),
        others: others.into_iter().take(config.max_candidates).collect(),
    }
}

fn sort_of_ground(e: &Expr, ctx: &SortCtx) -> Result<Sort, ()> {
    e.sort_of(ctx).map_err(|_| ())
}

/// True if some occurrence of `name` in `e` sits inside an argument of an
/// uninterpreted application (e.g. `select(a, name)`).  Such a binder has a
/// trigger: instantiating it beyond the ground application-argument terms
/// cannot create new matches, so its candidate set is restricted to
/// [`Candidates::app_ints`].
fn occurs_in_app_arg(e: &Expr, name: Name, in_app: bool) -> bool {
    match e {
        Expr::Var(v) => *v == name && in_app,
        Expr::Const(_) => false,
        Expr::UnOp(_, inner) => occurs_in_app_arg(inner, name, in_app),
        Expr::BinOp(_, l, r) => {
            occurs_in_app_arg(l, name, in_app) || occurs_in_app_arg(r, name, in_app)
        }
        Expr::Ite(c, t, el) => {
            occurs_in_app_arg(c, name, in_app)
                || occurs_in_app_arg(t, name, in_app)
                || occurs_in_app_arg(el, name, in_app)
        }
        Expr::App(_, args) => args.iter().any(|a| occurs_in_app_arg(a, name, true)),
        Expr::Forall(binders, body) | Expr::Exists(binders, body) => {
            !binders.iter().any(|(b, _)| *b == name) && occurs_in_app_arg(body, name, in_app)
        }
    }
}

/// Replaces positive universals by conjunctions of ground instances.
fn instantiate(
    expr: &Expr,
    positive: bool,
    candidates: &Candidates,
    config: &QuantConfig,
    stats: &mut QuantStats,
) -> Expr {
    match expr {
        Expr::Var(_) | Expr::Const(_) | Expr::App(..) => expr.clone(),
        Expr::UnOp(UnOp::Not, inner) => {
            Expr::not(instantiate(inner, !positive, candidates, config, stats))
        }
        Expr::UnOp(op, inner) => {
            Expr::unop(*op, instantiate(inner, positive, candidates, config, stats))
        }
        Expr::BinOp(BinOp::Imp, lhs, rhs) => Expr::binop(
            BinOp::Imp,
            instantiate(lhs, !positive, candidates, config, stats),
            instantiate(rhs, positive, candidates, config, stats),
        ),
        Expr::BinOp(BinOp::Iff, ..) => expr.clone(),
        Expr::BinOp(op, lhs, rhs) => Expr::binop(
            *op,
            instantiate(lhs, positive, candidates, config, stats),
            instantiate(rhs, positive, candidates, config, stats),
        ),
        Expr::Ite(c, t, e) => Expr::ite(
            (**c).clone(),
            instantiate(t, positive, candidates, config, stats),
            instantiate(e, positive, candidates, config, stats),
        ),
        Expr::Forall(binders, body) if positive => {
            let body = instantiate(body, positive, candidates, config, stats);
            // Per-binder candidate sets: a binder with a trigger (it occurs
            // as an application argument) draws from the trigger terms only.
            let per_binder: Vec<Vec<Expr>> = binders
                .iter()
                .map(|(name, sort)| {
                    if *sort == Sort::Int && occurs_in_app_arg(&body, *name, false) {
                        candidates.triggered(*sort)
                    } else {
                        candidates.of_sort(*sort)
                    }
                })
                .collect();
            let mut instances = Vec::new();
            let mut tuple = Vec::new();
            build_instances(
                binders,
                0,
                &mut tuple,
                &per_binder,
                &body,
                &mut instances,
                config.max_instances_per_quantifier,
            );
            stats.instances += instances.len();
            if instances.is_empty() {
                // No candidates of the right sort: the quantifier is dropped
                // entirely (weakest possible approximation).
                Expr::tt()
            } else {
                Expr::and_all(instances)
            }
        }
        // Negative universals and any existential reaching this point are
        // left for `abstract_remaining`.
        Expr::Forall(..) | Expr::Exists(..) => expr.clone(),
    }
}

fn build_instances(
    binders: &[(Name, Sort)],
    index: usize,
    tuple: &mut Vec<(Name, Expr)>,
    per_binder: &[Vec<Expr>],
    body: &Expr,
    out: &mut Vec<Expr>,
    limit: usize,
) {
    if out.len() >= limit {
        return;
    }
    if index == binders.len() {
        let subst: flux_logic::Subst = tuple.iter().cloned().collect();
        out.push(subst.apply(body));
        return;
    }
    let (name, _) = binders[index];
    for candidate in &per_binder[index] {
        tuple.push((name, candidate.clone()));
        build_instances(binders, index + 1, tuple, per_binder, body, out, limit);
        tuple.pop();
        if out.len() >= limit {
            return;
        }
    }
}

/// Replaces any remaining quantified subformula with a fresh boolean
/// variable.
fn abstract_remaining(expr: &Expr, stats: &mut QuantStats) -> Expr {
    match expr {
        Expr::Forall(..) | Expr::Exists(..) => {
            stats.abstracted += 1;
            Expr::Var(Name::fresh("$quant"))
        }
        Expr::Var(_) | Expr::Const(_) => expr.clone(),
        Expr::UnOp(op, e) => Expr::unop(*op, abstract_remaining(e, stats)),
        Expr::BinOp(op, l, r) => Expr::binop(
            *op,
            abstract_remaining(l, stats),
            abstract_remaining(r, stats),
        ),
        Expr::Ite(c, t, e) => Expr::ite(
            abstract_remaining(c, stats),
            abstract_remaining(t, stats),
            abstract_remaining(e, stats),
        ),
        Expr::App(f, args) => Expr::App(
            *f,
            args.iter().map(|a| abstract_remaining(a, stats)).collect(),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(s: &str) -> Expr {
        Expr::var(Name::intern(s))
    }

    fn ctx_with_ints(vars: &[&str]) -> SortCtx {
        let mut ctx = SortCtx::new();
        for name in vars {
            ctx.push(Name::intern(name), Sort::Int);
        }
        ctx
    }

    #[test]
    fn quantifier_free_formulas_pass_through() {
        let ctx = ctx_with_ints(&["x"]);
        let e = Expr::ge(v("x"), Expr::int(0));
        let (out, _, stats) = eliminate_quantifiers(&e, &ctx, &QuantConfig::default());
        assert_eq!(out, e);
        assert_eq!(stats, QuantStats::default());
    }

    #[test]
    fn positive_forall_is_instantiated_with_ground_terms() {
        // (forall j. j <= n)  ∧  k >= 5    -- candidates: n, k, 5-ish terms
        let ctx = ctx_with_ints(&["n", "k"]);
        let j = Name::intern("j");
        let e = Expr::and(
            Expr::forall(vec![(j, Sort::Int)], Expr::le(Expr::var(j), v("n"))),
            Expr::ge(v("k"), Expr::int(5)),
        );
        let (out, _, stats) = eliminate_quantifiers(&e, &ctx, &QuantConfig::default());
        assert!(!out.has_quantifier());
        assert!(
            stats.instances >= 2,
            "expected several instances, got {stats:?}"
        );
        // The instantiation must mention k <= n (instance at candidate k).
        let printed = format!("{out}");
        assert!(printed.contains("k <= n"), "missing instance in {printed}");
    }

    #[test]
    fn negated_forall_is_skolemised() {
        // ¬(forall i. i >= 0) becomes ¬(sk >= 0) for a fresh sk.
        let ctx = SortCtx::new();
        let i = Name::intern("i");
        let e = Expr::not(Expr::forall(
            vec![(i, Sort::Int)],
            Expr::ge(Expr::var(i), Expr::int(0)),
        ));
        let (out, ext, stats) = eliminate_quantifiers(&e, &ctx, &QuantConfig::default());
        assert!(!out.has_quantifier());
        assert_eq!(stats.skolems, 1);
        // The skolem constant is registered in the extended context.
        assert_eq!(ext.len(), 1);
    }

    #[test]
    fn existential_is_skolemised() {
        let ctx = SortCtx::new();
        let y = Name::intern("y");
        let e = Expr::exists(vec![(y, Sort::Int)], Expr::ge(Expr::var(y), Expr::int(3)));
        let (out, _, stats) = eliminate_quantifiers(&e, &ctx, &QuantConfig::default());
        assert!(!out.has_quantifier());
        assert_eq!(stats.skolems, 1);
        assert!(format!("{out}").contains(">= 3"));
    }

    #[test]
    fn array_axiom_instantiates_at_read_index() {
        // forall j. select(a, j) >= 0, conjoined with a fact about select(a, i).
        let mut ctx = ctx_with_ints(&["i"]);
        ctx.push(Name::intern("a"), Sort::Array);
        let j = Name::intern("j");
        let axiom = Expr::forall(
            vec![(j, Sort::Int)],
            Expr::ge(
                Expr::app("select", vec![v("a"), Expr::var(j)]),
                Expr::int(0),
            ),
        );
        let fact = Expr::lt(Expr::app("select", vec![v("a"), v("i")]), Expr::int(0));
        let e = Expr::and(axiom, fact);
        let (out, _, _) = eliminate_quantifiers(&e, &ctx, &QuantConfig::default());
        let printed = format!("{out}");
        assert!(
            printed.contains("select(a, i) >= 0"),
            "instantiation at i missing from {printed}"
        );
    }

    #[test]
    fn instantiation_respects_the_limit() {
        let ctx = ctx_with_ints(&["a", "b", "c", "d", "e", "f"]);
        let i = Name::intern("i");
        let jj = Name::intern("jj");
        let body = Expr::le(Expr::var(i), Expr::var(jj));
        let e = Expr::forall(vec![(i, Sort::Int), (jj, Sort::Int)], body);
        let config = QuantConfig {
            rounds: 1,
            max_candidates: 10,
            max_instances_per_quantifier: 5,
            ..QuantConfig::default()
        };
        let (_, _, stats) = eliminate_quantifiers(&e, &ctx, &config);
        assert!(stats.instances <= 5);
    }

    #[test]
    fn remaining_alternation_is_abstracted() {
        // forall x. exists y. y > x -- the nested existential survives and
        // the whole instantiated body keeps quantifiers, so abstraction
        // kicks in and the result is quantifier-free.
        let ctx = ctx_with_ints(&["z"]);
        let x = Name::intern("x");
        let y = Name::intern("y");
        let e = Expr::forall(
            vec![(x, Sort::Int)],
            Expr::exists(vec![(y, Sort::Int)], Expr::gt(Expr::var(y), Expr::var(x))),
        );
        let (out, _, _) = eliminate_quantifiers(&e, &ctx, &QuantConfig::default());
        assert!(!out.has_quantifier());
    }
}
