//! Linear expressions and linear constraints over refinement variables.
//!
//! After preprocessing, every arithmetic atom in a verification condition is
//! normalised to the form `e ≤ 0`, where `e` is a [`LinExpr`] (an affine
//! combination of integer-sorted variables).  Because all variables range
//! over the integers, the negation of `e ≤ 0` is `-e + 1 ≤ 0`, so the DPLL(T)
//! loop never needs strict inequalities or disequalities at the theory level.

use crate::rational::Rational;
use flux_logic::Name;
use std::collections::BTreeMap;
use std::fmt;

/// An affine linear expression `Σ cᵢ·xᵢ + c`.
#[derive(Clone, Debug, Default, PartialEq, Eq, Hash)]
pub struct LinExpr {
    terms: BTreeMap<Name, Rational>,
    constant: Rational,
}

impl LinExpr {
    /// The zero expression.
    pub fn zero() -> LinExpr {
        LinExpr::default()
    }

    /// The constant expression `c`.
    pub fn constant(c: Rational) -> LinExpr {
        LinExpr {
            terms: BTreeMap::new(),
            constant: c,
        }
    }

    /// The expression consisting of the single variable `x`.
    pub fn var(x: Name) -> LinExpr {
        let mut terms = BTreeMap::new();
        terms.insert(x, Rational::ONE);
        LinExpr {
            terms,
            constant: Rational::ZERO,
        }
    }

    /// The constant part.
    pub fn constant_part(&self) -> Rational {
        self.constant
    }

    /// Coefficient of `x` (zero if absent).
    pub fn coeff(&self, x: Name) -> Rational {
        self.terms.get(&x).copied().unwrap_or(Rational::ZERO)
    }

    /// Iterates over the (variable, coefficient) pairs with non-zero
    /// coefficients.
    pub fn terms(&self) -> impl Iterator<Item = (Name, Rational)> + '_ {
        self.terms.iter().map(|(n, c)| (*n, *c))
    }

    /// The variables mentioned with non-zero coefficient.
    pub fn vars(&self) -> impl Iterator<Item = Name> + '_ {
        self.terms.keys().copied()
    }

    /// True if the expression has no variables.
    pub fn is_constant(&self) -> bool {
        self.terms.is_empty()
    }

    /// Adds `coeff * x` to the expression.
    pub fn add_term(&mut self, x: Name, coeff: Rational) {
        let entry = self.terms.entry(x).or_insert(Rational::ZERO);
        *entry += coeff;
        if entry.is_zero() {
            self.terms.remove(&x);
        }
    }

    /// Adds a constant to the expression.
    pub fn add_constant(&mut self, c: Rational) {
        self.constant += c;
    }

    /// Adds `scale * other` to the expression.
    pub fn add_scaled(&mut self, other: &LinExpr, scale: Rational) {
        if scale.is_zero() {
            return;
        }
        for (x, c) in other.terms() {
            self.add_term(x, c * scale);
        }
        self.constant += other.constant * scale;
    }

    /// Returns `self + other`.
    pub fn plus(&self, other: &LinExpr) -> LinExpr {
        let mut out = self.clone();
        out.add_scaled(other, Rational::ONE);
        out
    }

    /// Returns `self - other`.
    pub fn minus(&self, other: &LinExpr) -> LinExpr {
        let mut out = self.clone();
        out.add_scaled(other, -Rational::ONE);
        out
    }

    /// Returns `scale * self`.
    pub fn scaled(&self, scale: Rational) -> LinExpr {
        let mut out = LinExpr::zero();
        out.add_scaled(self, scale);
        out
    }

    /// Evaluates the expression under an assignment of rationals to
    /// variables; unassigned variables evaluate to zero.
    pub fn eval(&self, assignment: &BTreeMap<Name, Rational>) -> Rational {
        let mut acc = self.constant;
        for (x, c) in self.terms() {
            let v = assignment.get(&x).copied().unwrap_or(Rational::ZERO);
            acc += c * v;
        }
        acc
    }
}

impl fmt::Display for LinExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (x, c) in self.terms() {
            if first {
                write!(f, "{c}·{x}")?;
                first = false;
            } else if c.is_negative() {
                write!(f, " - {}·{x}", -c)?;
            } else {
                write!(f, " + {c}·{x}")?;
            }
        }
        if first {
            write!(f, "{}", self.constant)?;
        } else if !self.constant.is_zero() {
            if self.constant.is_negative() {
                write!(f, " - {}", -self.constant)?;
            } else {
                write!(f, " + {}", self.constant)?;
            }
        }
        Ok(())
    }
}

/// A linear constraint `expr ≤ 0`.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct LinConstraint {
    /// The left-hand side; the constraint asserts `lhs ≤ 0`.
    pub lhs: LinExpr,
}

impl LinConstraint {
    /// The constraint `lhs ≤ 0`.
    pub fn le_zero(lhs: LinExpr) -> LinConstraint {
        LinConstraint { lhs }
    }

    /// The constraint `a ≤ b`.
    pub fn le(a: LinExpr, b: LinExpr) -> LinConstraint {
        LinConstraint { lhs: a.minus(&b) }
    }

    /// The negation of this constraint *over the integers*:
    /// `¬(e ≤ 0)` is `e ≥ 1`, i.e. `-e + 1 ≤ 0`.
    pub fn negate_integer(&self) -> LinConstraint {
        let mut lhs = self.lhs.scaled(-Rational::ONE);
        lhs.add_constant(Rational::ONE);
        LinConstraint { lhs }
    }

    /// Evaluates the constraint under an integer assignment.
    pub fn holds(&self, assignment: &BTreeMap<Name, Rational>) -> bool {
        !self.lhs.eval(assignment).is_positive()
    }

    /// If the constraint mentions no variables, returns whether it is
    /// trivially true or false.
    pub fn as_trivial(&self) -> Option<bool> {
        if self.lhs.is_constant() {
            Some(!self.lhs.constant_part().is_positive())
        } else {
            None
        }
    }
}

impl fmt::Display for LinConstraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} <= 0", self.lhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(s: &str) -> Name {
        Name::intern(s)
    }

    #[test]
    fn building_and_reading_terms() {
        let mut e = LinExpr::var(n("x"));
        e.add_term(n("y"), Rational::int(2));
        e.add_constant(Rational::int(-3));
        assert_eq!(e.coeff(n("x")), Rational::ONE);
        assert_eq!(e.coeff(n("y")), Rational::int(2));
        assert_eq!(e.coeff(n("z")), Rational::ZERO);
        assert_eq!(e.constant_part(), Rational::int(-3));
    }

    #[test]
    fn cancelling_terms_removes_them() {
        let mut e = LinExpr::var(n("x"));
        e.add_term(n("x"), Rational::int(-1));
        assert!(e.is_constant());
        assert_eq!(e.vars().count(), 0);
    }

    #[test]
    fn plus_minus_scaled() {
        let x = LinExpr::var(n("x"));
        let y = LinExpr::var(n("y"));
        let e = x.plus(&y).minus(&x);
        assert_eq!(e, y);
        let two_y = y.scaled(Rational::int(2));
        assert_eq!(two_y.coeff(n("y")), Rational::int(2));
    }

    #[test]
    fn evaluation() {
        let mut e = LinExpr::var(n("x"));
        e.add_term(n("y"), Rational::int(3));
        e.add_constant(Rational::int(1));
        let mut asg = BTreeMap::new();
        asg.insert(n("x"), Rational::int(2));
        asg.insert(n("y"), Rational::int(-1));
        assert_eq!(e.eval(&asg), Rational::int(0));
    }

    #[test]
    fn constraint_negation_over_integers() {
        // x - 3 <= 0  (x <= 3);  negation: x >= 4 i.e. -x + 4 <= 0
        let mut lhs = LinExpr::var(n("x"));
        lhs.add_constant(Rational::int(-3));
        let c = LinConstraint::le_zero(lhs);
        let neg = c.negate_integer();
        let mut asg = BTreeMap::new();
        asg.insert(n("x"), Rational::int(3));
        assert!(c.holds(&asg));
        assert!(!neg.holds(&asg));
        asg.insert(n("x"), Rational::int(4));
        assert!(!c.holds(&asg));
        assert!(neg.holds(&asg));
    }

    #[test]
    fn double_negation_shifts_by_nothing() {
        let mut lhs = LinExpr::var(n("x"));
        lhs.add_constant(Rational::int(-3));
        let c = LinConstraint::le_zero(lhs);
        // ¬¬(x ≤ 3) over the integers is x ≤ 3 again.
        assert_eq!(c.negate_integer().negate_integer(), c);
    }

    #[test]
    fn trivial_constraints() {
        let c = LinConstraint::le_zero(LinExpr::constant(Rational::int(-1)));
        assert_eq!(c.as_trivial(), Some(true));
        let c = LinConstraint::le_zero(LinExpr::constant(Rational::int(1)));
        assert_eq!(c.as_trivial(), Some(false));
        let c = LinConstraint::le_zero(LinExpr::var(n("x")));
        assert_eq!(c.as_trivial(), None);
    }

    #[test]
    fn le_builder_subtracts() {
        let c = LinConstraint::le(LinExpr::var(n("i")), LinExpr::var(n("nn")));
        let mut asg = BTreeMap::new();
        asg.insert(n("i"), Rational::int(3));
        asg.insert(n("nn"), Rational::int(3));
        assert!(c.holds(&asg));
        asg.insert(n("i"), Rational::int(4));
        assert!(!c.holds(&asg));
    }

    #[test]
    fn display_is_readable() {
        let mut e = LinExpr::var(n("a"));
        e.add_term(n("b"), Rational::int(-2));
        e.add_constant(Rational::int(5));
        let s = format!("{e}");
        assert!(s.contains("a"));
        assert!(s.contains("b"));
        assert!(s.contains("5"));
    }
}
