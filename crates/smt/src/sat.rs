//! A small incremental CDCL SAT solver.
//!
//! This is the propositional core of the DPLL(T) loop.  It implements
//! conflict-driven clause learning with 1-UIP conflict analysis,
//! non-chronological backjumping, activity-based decisions, phase saving
//! and **two-watched-literal propagation**: every clause of two or more
//! literals watches two of them, and only the clauses watching a literal
//! that just became false are visited, with lazy watch repair (a false
//! watch migrates to any other non-false literal of the clause).  The
//! watcher lists survive across [`SatSolver::solve_under_assumptions`]
//! calls and are rebuilt wholesale by [`SatSolver::compact`].  The
//! historical occurrence-scan propagator is kept behind
//! [`SatConfig::scan_propagation`] so equivalence tests can pin the two
//! implementations against each other query for query.
//!
//! The solver is *incremental*: variables can be added after construction
//! ([`SatSolver::new_var`]), and [`SatSolver::solve_under_assumptions`]
//! decides satisfiability under a set of assumption literals while keeping
//! the clause database — including everything learned from conflicts —
//! for later calls.  Assumptions are enqueued as forced decisions below all
//! search decisions, exactly as in MiniSat: a learned clause is an ordinary
//! resolvent of the database and thus remains valid for every later query,
//! no matter which assumptions produced it.  [`crate::Session`] builds on
//! this to keep one persistent SAT core per hypothesis context, pushing
//! each goal's negation through a fresh activation literal.
//!
//! Clauses added between searches are *not* attached to the watcher lists
//! immediately: they are queued and integrated at the start of the next
//! search (or compaction), on the level-0 trail, where a new clause that is
//! already unit or falsified can be handled soundly.  Attaching eagerly
//! mid-search would break the watch invariant — both watches of a new
//! clause could be false at levels the propagation queue has already
//! drained, so the clause would never be revisited.

use std::fmt;

/// A propositional literal: variable index plus phase.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct SatLit {
    /// Variable index (0-based).
    pub var: usize,
    /// `true` for the positive phase.
    pub positive: bool,
}

impl SatLit {
    /// Creates a literal.
    pub fn new(var: usize, positive: bool) -> SatLit {
        SatLit { var, positive }
    }

    /// The complementary literal.
    pub fn negated(self) -> SatLit {
        SatLit {
            var: self.var,
            positive: !self.positive,
        }
    }
}

impl fmt::Debug for SatLit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.positive {
            write!(f, "x{}", self.var)
        } else {
            write!(f, "¬x{}", self.var)
        }
    }
}

/// Index of a literal into the watcher table.
fn watch_idx(lit: SatLit) -> usize {
    lit.var * 2 + lit.positive as usize
}

/// One watcher-list entry: the watching clause plus a *blocking literal* —
/// some other literal of the clause (typically the other watch).  If the
/// blocker is true the clause is satisfied and the visit skips without
/// touching the clause at all; propagation through hypothesis CNF that a
/// retired goal already satisfied is the dominant cost on long sessions,
/// and most of those visits die on the blocker check.
#[derive(Clone, Copy, Debug)]
struct Watcher {
    clause: usize,
    blocker: SatLit,
}

/// Result of a SAT check.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SatResult {
    /// Satisfiable, with an assignment indexed by variable.
    Sat(Vec<bool>),
    /// Unsatisfiable.
    Unsat,
    /// Resource limit exceeded.
    Unknown,
}

/// Configuration for the SAT solver.
#[derive(Clone, Copy, Debug)]
pub struct SatConfig {
    /// Maximum number of conflicts before giving up.
    pub max_conflicts: usize,
    /// Propagate by scanning the full clause database instead of the
    /// two-watched-literal scheme.  Kept for A/B equivalence testing; the
    /// verdicts are identical, only the work per propagation differs.
    pub scan_propagation: bool,
    /// Periodically drop low-activity learned clauses (MiniSat-style DB
    /// reduction).  Dropping a learned clause is always sound — it is a
    /// resolvent the search can re-derive — so verdicts are unaffected;
    /// the toggle exists for A/B equivalence testing.
    pub db_reduction: bool,
    /// Resource limits: per-search decision/conflict caps and the (amortized)
    /// wall-clock deadline.  Populated from the owning
    /// [`SmtConfig`](crate::SmtConfig) at solver construction; tripping a
    /// limit returns [`SatResult::Unknown`], never a wrong verdict.
    pub budget: crate::ResourceBudget,
}

impl Default for SatConfig {
    fn default() -> Self {
        let legacy = crate::legacy_toggles();
        SatConfig {
            max_conflicts: 200_000,
            scan_propagation: legacy,
            db_reduction: !legacy,
            budget: crate::ResourceBudget::UNLIMITED,
        }
    }
}

/// A CDCL SAT solver over a growable set of variables.
pub struct SatSolver {
    num_vars: usize,
    clauses: Vec<Vec<SatLit>>,
    /// Whether each clause was learned from a conflict (as opposed to added
    /// by the caller).  Only learned clauses are eligible for DB reduction:
    /// they are resolvents, so dropping them can never change a verdict.
    learned: Vec<bool>,
    /// MiniSat-style clause activities, bumped when a clause participates
    /// in conflict analysis; only meaningful for learned clauses.
    clause_activity: Vec<f64>,
    /// Watcher lists: for each literal, the clauses watching it (watched
    /// literals are kept at positions 0 and 1 of each clause).
    watches: Vec<Vec<Watcher>>,
    /// Clauses added since the last search, not yet attached to `watches`.
    pending: Vec<usize>,
    /// Current assignment (None = unassigned).
    assignment: Vec<Option<bool>>,
    /// Decision level at which each variable was assigned.
    level: Vec<usize>,
    /// Index of the clause that propagated each variable (None = decision).
    reason: Vec<Option<usize>>,
    /// Assignment trail, in order.
    trail: Vec<SatLit>,
    /// Start index in `trail` of each decision level.
    trail_lim: Vec<usize>,
    /// Next trail index to propagate.
    propagated: usize,
    /// Variable activities for branching.
    activity: Vec<f64>,
    /// Binary max-heap over candidate decision variables, ordered by
    /// activity (lazy deletion: assigned variables stay until popped).
    /// Rebuilt from the active set at the start of each search, so between
    /// searches it may be stale; within one it makes each decision
    /// O(log n) instead of an O(num_vars) scan — which dominated search
    /// time on decision-heavy (low-conflict) queries.
    order_heap: Vec<usize>,
    /// Position of each variable in `order_heap` (`usize::MAX` if absent).
    heap_pos: Vec<usize>,
    /// Saved phases.
    saved_phase: Vec<bool>,
    activity_inc: f64,
    clause_activity_inc: f64,
    /// Learned clauses currently in the database.
    num_learned: usize,
    /// Learned-clause count that triggers the next DB reduction.
    learn_limit: usize,
    /// Set to true if an empty clause was added.
    trivially_unsat: bool,
    /// Cumulative count of literals enqueued by unit propagation.
    propagations: usize,
    /// Cumulative count of watcher visits skipped by a true blocking
    /// literal.
    blocked_visits: usize,
    /// Cumulative count of learned-clause-DB reductions performed.
    db_reductions: usize,
    /// Cumulative count of searches abandoned because a resource budget
    /// (decision/conflict cap or deadline) tripped.
    budget_stops: usize,
    config: SatConfig,
}

impl SatSolver {
    /// Creates a solver over `num_vars` variables with no clauses.
    pub fn new(num_vars: usize, config: SatConfig) -> SatSolver {
        SatSolver {
            num_vars,
            clauses: Vec::new(),
            learned: Vec::new(),
            clause_activity: Vec::new(),
            watches: vec![Vec::new(); num_vars * 2],
            pending: Vec::new(),
            assignment: vec![None; num_vars],
            level: vec![0; num_vars],
            reason: vec![None; num_vars],
            trail: Vec::new(),
            trail_lim: Vec::new(),
            propagated: 0,
            activity: vec![0.0; num_vars],
            order_heap: Vec::new(),
            heap_pos: vec![usize::MAX; num_vars],
            saved_phase: vec![false; num_vars],
            activity_inc: 1.0,
            clause_activity_inc: 1.0,
            num_learned: 0,
            learn_limit: 256,
            trivially_unsat: false,
            propagations: 0,
            blocked_visits: 0,
            db_reductions: 0,
            budget_stops: 0,
            config,
        }
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Cumulative number of literals assigned by unit propagation since
    /// creation.  Monotone; callers attribute work by differencing.
    pub fn propagations(&self) -> usize {
        self.propagations
    }

    /// Cumulative number of watcher visits resolved by the blocking
    /// literal alone.  Monotone; callers attribute work by differencing.
    pub fn blocked_visits(&self) -> usize {
        self.blocked_visits
    }

    /// Cumulative number of learned-clause-DB reductions.  Monotone.
    pub fn db_reductions(&self) -> usize {
        self.db_reductions
    }

    /// Cumulative number of searches abandoned by a resource budget.
    /// Monotone; callers attribute stops by differencing.  Always zero
    /// under the default unlimited budget.
    pub fn budget_stops(&self) -> usize {
        self.budget_stops
    }

    /// Allocates a fresh variable and returns its index.
    pub fn new_var(&mut self) -> usize {
        let var = self.num_vars;
        self.ensure_vars(var + 1);
        var
    }

    /// Grows the variable range to at least `n` variables.
    pub fn ensure_vars(&mut self, n: usize) {
        if n <= self.num_vars {
            return;
        }
        self.assignment.resize(n, None);
        self.level.resize(n, 0);
        self.reason.resize(n, None);
        self.activity.resize(n, 0.0);
        self.heap_pos.resize(n, usize::MAX);
        self.saved_phase.resize(n, false);
        self.watches.resize(n * 2, Vec::new());
        self.num_vars = n;
    }

    /// Adds a clause.  Duplicate literals are removed; tautological clauses
    /// are ignored.  Variables beyond the current range are allocated on
    /// demand, so incremental callers need not pre-size the solver.  The
    /// clause is integrated into the watcher lists at the start of the next
    /// search (see the module docs for why attachment is deferred).
    pub fn add_clause(&mut self, mut lits: Vec<SatLit>) {
        if let Some(max_var) = lits.iter().map(|l| l.var).max() {
            self.ensure_vars(max_var + 1);
        }
        lits.sort_by_key(|l| (l.var, l.positive));
        lits.dedup();
        // Tautology?
        for w in lits.windows(2) {
            if w[0].var == w[1].var && w[0].positive != w[1].positive {
                return;
            }
        }
        if lits.is_empty() {
            self.trivially_unsat = true;
            return;
        }
        self.clauses.push(lits);
        self.learned.push(false);
        self.clause_activity.push(0.0);
        self.pending.push(self.clauses.len() - 1);
    }

    fn value(&self, lit: SatLit) -> Option<bool> {
        self.assignment[lit.var].map(|v| v == lit.positive)
    }

    fn current_level(&self) -> usize {
        self.trail_lim.len()
    }

    fn enqueue(&mut self, lit: SatLit, reason: Option<usize>) {
        debug_assert!(self.assignment[lit.var].is_none());
        self.assignment[lit.var] = Some(lit.positive);
        self.level[lit.var] = self.current_level();
        self.reason[lit.var] = reason;
        self.trail.push(lit);
        if reason.is_some() {
            self.propagations += 1;
        }
    }

    /// Integrates clause `ci` into the watcher lists.  Must run on a
    /// level-0 trail: a clause that is unit under the level-0 assignment is
    /// enqueued here, and one that is falsified makes the database
    /// trivially unsatisfiable.
    fn attach_clause(&mut self, ci: usize) {
        debug_assert_eq!(self.current_level(), 0);
        if self.clauses[ci].len() == 1 {
            // Units carry no watches: their literal is fixed at level 0,
            // which never backtracks, so the clause can never become
            // unsatisfied later without the whole database being unsat.
            let l = self.clauses[ci][0];
            match self.value(l) {
                Some(true) => {}
                Some(false) => self.trivially_unsat = true,
                None => self.enqueue(l, Some(ci)),
            }
            return;
        }
        // Move two non-false literals to the watch positions.
        let len = self.clauses[ci].len();
        let mut found = 0usize;
        for k in 0..len {
            if self.value(self.clauses[ci][k]) != Some(false) {
                self.clauses[ci].swap(found, k);
                found += 1;
                if found == 2 {
                    break;
                }
            }
        }
        match found {
            0 => {
                // Every literal is false at level 0.
                self.trivially_unsat = true;
                return;
            }
            1 => {
                // Unit under the level-0 assignment: enqueue the survivor.
                // The second watch is a level-0-false literal, which is
                // harmless — the clause is satisfied at level 0 from here
                // on and never needs revisiting.
                let l = self.clauses[ci][0];
                if self.value(l).is_none() {
                    self.enqueue(l, Some(ci));
                }
            }
            _ => {}
        }
        let l0 = self.clauses[ci][0];
        let l1 = self.clauses[ci][1];
        // Each watch's blocker is the other watch: it is the literal most
        // likely to be true when this one becomes false.
        self.watches[watch_idx(l0)].push(Watcher {
            clause: ci,
            blocker: l1,
        });
        self.watches[watch_idx(l1)].push(Watcher {
            clause: ci,
            blocker: l0,
        });
    }

    /// Attaches every clause added since the last search.
    fn flush_pending(&mut self) {
        let pending = std::mem::take(&mut self.pending);
        for ci in pending {
            self.attach_clause(ci);
        }
    }

    /// Unit propagation.  Returns the index of a conflicting clause, if any.
    fn propagate(&mut self) -> Option<usize> {
        if self.config.scan_propagation {
            return self.propagate_scan();
        }
        while self.propagated < self.trail.len() {
            let lit = self.trail[self.propagated];
            self.propagated += 1;
            let false_lit = lit.negated();
            let widx = watch_idx(false_lit);
            // The list is taken wholesale; watch migrations push onto
            // *other* lists (the new watch is non-false, the old one is
            // false), so re-entrant modification of this list is
            // impossible.
            let mut ws = std::mem::take(&mut self.watches[widx]);
            let mut conflict = None;
            let mut i = 0;
            'watchers: while i < ws.len() {
                // A true blocking literal satisfies the clause without
                // touching it (no cache miss on the clause memory at all).
                if self.value(ws[i].blocker) == Some(true) {
                    self.blocked_visits += 1;
                    i += 1;
                    continue;
                }
                let ci = ws[i].clause;
                // Normalise: the false literal sits at position 1.
                if self.clauses[ci][0] == false_lit {
                    self.clauses[ci].swap(0, 1);
                }
                let first = self.clauses[ci][0];
                if self.value(first) == Some(true) {
                    // Remember the satisfying literal for future visits.
                    ws[i].blocker = first;
                    i += 1;
                    continue;
                }
                // Try to migrate the watch to a non-false literal.
                for k in 2..self.clauses[ci].len() {
                    let cand = self.clauses[ci][k];
                    if self.value(cand) != Some(false) {
                        self.clauses[ci].swap(1, k);
                        self.watches[watch_idx(cand)].push(Watcher {
                            clause: ci,
                            blocker: first,
                        });
                        ws.swap_remove(i);
                        continue 'watchers;
                    }
                }
                // No replacement: `first` is unit or the clause conflicts.
                if self.value(first) == Some(false) {
                    conflict = Some(ci);
                    break;
                }
                self.enqueue(first, Some(ci));
                i += 1;
            }
            self.watches[widx] = ws;
            if conflict.is_some() {
                return conflict;
            }
        }
        None
    }

    /// The historical propagator: scans every clause on every pass.  Kept
    /// for A/B equivalence testing against the watched scheme.
    fn propagate_scan(&mut self) -> Option<usize> {
        loop {
            let mut changed = false;
            'clauses: for ci in 0..self.clauses.len() {
                let mut unassigned: Option<SatLit> = None;
                let mut num_unassigned = 0;
                for &lit in &self.clauses[ci] {
                    match self.value(lit) {
                        Some(true) => continue 'clauses, // clause satisfied
                        Some(false) => {}
                        None => {
                            num_unassigned += 1;
                            unassigned = Some(lit);
                        }
                    }
                }
                match (num_unassigned, unassigned) {
                    (0, _) => return Some(ci), // conflict
                    (1, Some(lit)) => {
                        self.enqueue(lit, Some(ci));
                        changed = true;
                    }
                    _ => {}
                }
            }
            self.propagated = self.trail.len();
            if !changed {
                return None;
            }
        }
    }

    fn bump(&mut self, var: usize) {
        self.activity[var] += self.activity_inc;
        if self.activity[var] > 1e100 {
            // Order-preserving rescale: heap order is unaffected.
            for a in &mut self.activity {
                *a *= 1e-100;
            }
            self.activity_inc *= 1e-100;
        }
        if self.heap_pos[var] != usize::MAX {
            self.heap_sift_up(self.heap_pos[var]);
        }
    }

    fn decay_activities(&mut self) {
        self.activity_inc /= 0.95;
        self.clause_activity_inc /= 0.999;
    }

    /// Bumps the activity of a clause that participated in conflict
    /// analysis.  Only learned clauses keep a meaningful activity, but
    /// bumping originals too is harmless — reduction never considers them.
    fn bump_clause(&mut self, ci: usize) {
        self.clause_activity[ci] += self.clause_activity_inc;
        if self.clause_activity[ci] > 1e20 {
            for a in &mut self.clause_activity {
                *a *= 1e-20;
            }
            self.clause_activity_inc *= 1e-20;
        }
    }

    /// 1-UIP conflict analysis.  Returns the learned clause — asserting
    /// literal first, a deepest remaining literal second (the watch-ready
    /// order) — and the level to backjump to.
    fn analyze(&mut self, conflict: usize) -> (Vec<SatLit>, usize) {
        let current_level = self.current_level();
        let mut learned: Vec<SatLit> = Vec::new();
        let mut seen = vec![false; self.num_vars];
        let mut counter = 0usize;
        let mut clause_lits: Vec<SatLit> = self.clauses[conflict].clone();
        let mut trail_idx = self.trail.len();
        self.bump_clause(conflict);

        loop {
            for lit in &clause_lits {
                let var = lit.var;
                if seen[var] || self.level[var] == 0 {
                    continue;
                }
                seen[var] = true;
                self.bump(var);
                if self.level[var] == current_level {
                    counter += 1;
                } else {
                    learned.push(*lit);
                }
            }
            // Find the next literal on the trail (at the current level) that
            // participates in the conflict.
            let pivot = loop {
                trail_idx -= 1;
                let lit = self.trail[trail_idx];
                if seen[lit.var] {
                    break lit;
                }
            };
            counter -= 1;
            if counter == 0 {
                // `pivot` is the 1-UIP.
                learned.push(pivot.negated());
                break;
            }
            let reason = self.reason[pivot.var].expect("UIP search hit a decision early");
            self.bump_clause(reason);
            clause_lits = self.clauses[reason]
                .iter()
                .copied()
                .filter(|l| l.var != pivot.var)
                .collect();
        }

        // Backjump level: second-highest level in the learned clause.
        let mut backjump = 0;
        for lit in &learned {
            let lvl = self.level[lit.var];
            if lvl != current_level && lvl > backjump {
                backjump = lvl;
            }
        }
        // Watch-ready order: the asserting (UIP) literal at position 0 and
        // a literal of the backjump level at position 1, so after the
        // backjump both watches are the last literals to become false.
        let uip = learned.len() - 1;
        learned.swap(0, uip);
        if learned.len() > 1 {
            for k in 1..learned.len() {
                if self.level[learned[k].var] == backjump {
                    learned.swap(1, k);
                    break;
                }
            }
        }
        (learned, backjump)
    }

    fn backtrack_to(&mut self, level: usize) {
        while self.current_level() > level {
            let start = self.trail_lim.pop().expect("trail limit underflow");
            while self.trail.len() > start {
                let lit = self.trail.pop().expect("trail underflow");
                self.saved_phase[lit.var] = lit.positive;
                self.assignment[lit.var] = None;
                self.reason[lit.var] = None;
                self.heap_insert(lit.var);
            }
        }
        self.propagated = self.trail.len();
    }

    fn heap_sift_up(&mut self, mut i: usize) {
        let v = self.order_heap[i];
        while i > 0 {
            let parent = (i - 1) / 2;
            let pv = self.order_heap[parent];
            if self.activity[pv] >= self.activity[v] {
                break;
            }
            self.order_heap[i] = pv;
            self.heap_pos[pv] = i;
            i = parent;
        }
        self.order_heap[i] = v;
        self.heap_pos[v] = i;
    }

    fn heap_sift_down(&mut self, mut i: usize) {
        let v = self.order_heap[i];
        loop {
            let left = 2 * i + 1;
            if left >= self.order_heap.len() {
                break;
            }
            let right = left + 1;
            let child = if right < self.order_heap.len()
                && self.activity[self.order_heap[right]] > self.activity[self.order_heap[left]]
            {
                right
            } else {
                left
            };
            let cv = self.order_heap[child];
            if self.activity[v] >= self.activity[cv] {
                break;
            }
            self.order_heap[i] = cv;
            self.heap_pos[cv] = i;
            i = child;
        }
        self.order_heap[i] = v;
        self.heap_pos[v] = i;
    }

    fn heap_insert(&mut self, v: usize) {
        if self.heap_pos[v] != usize::MAX {
            return;
        }
        self.order_heap.push(v);
        self.heap_pos[v] = self.order_heap.len() - 1;
        self.heap_sift_up(self.order_heap.len() - 1);
    }

    fn heap_pop(&mut self) -> Option<usize> {
        let top = *self.order_heap.first()?;
        self.heap_pos[top] = usize::MAX;
        let last = self.order_heap.pop().expect("heap is nonempty");
        if !self.order_heap.is_empty() {
            self.order_heap[0] = last;
            self.heap_pos[last] = 0;
            self.heap_sift_down(0);
        }
        Some(top)
    }

    /// Rebuilds the decision heap from the query's active set.  Restricting
    /// to active variables matters for incremental use: a long-lived solver
    /// accumulates variables from retired (compacted-away) queries, and a
    /// model need not assign variables no current clause mentions —
    /// deciding them anyway would make each check pay for every check
    /// before it.
    fn heap_rebuild(&mut self, active: &[bool]) {
        for &v in &self.order_heap {
            self.heap_pos[v] = usize::MAX;
        }
        self.order_heap.clear();
        for (v, &is_active) in active.iter().enumerate().take(self.num_vars) {
            if is_active && self.assignment[v].is_none() {
                self.order_heap.push(v);
                self.heap_pos[v] = v; // placeholder; fixed below
            }
        }
        // Bottom-up heapify: O(n), and fixes every position.
        for i in 0..self.order_heap.len() {
            self.heap_pos[self.order_heap[i]] = i;
        }
        for i in (0..self.order_heap.len() / 2).rev() {
            self.heap_sift_down(i);
        }
    }

    /// Picks the unassigned variable with the highest activity among
    /// `active` ones, by popping the decision heap (assigned or inactive
    /// entries are discarded lazily; unassigning re-inserts in
    /// [`SatSolver::backtrack_to`]).
    fn pick_branch_var(&mut self, active: &[bool]) -> Option<usize> {
        while let Some(v) = self.heap_pop() {
            if active[v] && self.assignment[v].is_none() {
                return Some(v);
            }
        }
        None
    }

    /// Runs the CDCL search with no assumptions.
    pub fn solve(&mut self) -> SatResult {
        self.solve_under_assumptions(&[])
    }

    /// Number of clauses currently in the database (original + learned).
    pub fn num_clauses(&self) -> usize {
        self.clauses.len()
    }

    /// Drops every clause satisfied by the level-0 assignment.
    ///
    /// Incremental sessions retire a goal by asserting the negation of its
    /// activation literal, which permanently satisfies the goal's guarded
    /// clauses (and every clause learned from them, which carries the
    /// negated guard too).  Compacting removes them; it is sound because a
    /// clause satisfied at level 0 is satisfied in every extension of the
    /// level-0 trail, so it can never constrain the search again.
    ///
    /// Ordering matters for the watched scheme: pending clauses are
    /// attached and level-0 propagation is run to a fixpoint *before*
    /// retention, so no clause can hold a pending propagation when it is
    /// dropped or shrunk.  Surviving clauses then have at least two
    /// unassigned literals each (a survivor with exactly one would have
    /// been propagated, satisfying it), their level-0-false literals are
    /// removed outright (level 0 never backtracks, so such literals are
    /// dead weight in every future search), and the watcher lists are
    /// rebuilt from scratch — removal reindexes the clause database, which
    /// also invalidates the `reason` indices of level-0 trail entries;
    /// those are cleared, which is equivalent because conflict analysis
    /// skips level-0 literals outright.
    pub fn compact(&mut self) {
        self.backtrack_to(0);
        self.flush_pending();
        if self.trivially_unsat {
            return;
        }
        if self.propagate().is_some() {
            // A level-0 conflict: the database is unsatisfiable outright.
            self.trivially_unsat = true;
            return;
        }
        let assignment = &self.assignment;
        let keep: Vec<bool> = self
            .clauses
            .iter()
            .map(|c| !c.iter().any(|l| assignment[l.var] == Some(l.positive)))
            .collect();
        for (ci, c) in self.clauses.iter_mut().enumerate() {
            if keep[ci] {
                c.retain(|l| self.assignment[l.var].map(|v| v == l.positive) != Some(false));
            }
        }
        self.retain_clauses(&keep);
    }

    /// Drops the clauses whose `keep` flag is false, keeping the per-clause
    /// metadata (`learned`, `clause_activity`) in sync, and rebuilds the
    /// watcher lists from scratch.  Removal reindexes the clause database,
    /// which also invalidates the `reason` indices of level-0 trail
    /// entries; those are cleared, which is equivalent because conflict
    /// analysis skips level-0 literals outright.  Must run on a level-0
    /// trail with no pending clauses.
    fn retain_clauses(&mut self, keep: &[bool]) {
        debug_assert_eq!(self.current_level(), 0);
        debug_assert!(self.pending.is_empty());
        let old_clauses = std::mem::take(&mut self.clauses);
        let old_learned = std::mem::take(&mut self.learned);
        let old_activity = std::mem::take(&mut self.clause_activity);
        self.num_learned = 0;
        for (ci, clause) in old_clauses.into_iter().enumerate() {
            if keep[ci] {
                self.clauses.push(clause);
                self.learned.push(old_learned[ci]);
                self.clause_activity.push(old_activity[ci]);
                if old_learned[ci] {
                    self.num_learned += 1;
                }
            }
        }
        for w in &mut self.watches {
            w.clear();
        }
        for ci in 0..self.clauses.len() {
            self.attach_clause(ci);
        }
        for i in 0..self.trail.len() {
            self.reason[self.trail[i].var] = None;
        }
    }

    /// MiniSat-style learned-clause-DB reduction: drops the lowest-activity
    /// half of the reducible learned clauses (binaries and caller-added
    /// clauses are always kept).  Sound because a learned clause is a
    /// resolvent of the database — removing it can never change a verdict,
    /// only the search path; the equivalence suite pins this.  Runs on the
    /// level-0 trail with pending flushed, like [`SatSolver::compact`].
    fn reduce_db(&mut self) {
        let mut acts: Vec<f64> = (0..self.clauses.len())
            .filter(|&ci| self.learned[ci] && self.clauses[ci].len() > 2)
            .map(|ci| self.clause_activity[ci])
            .collect();
        if acts.len() < 2 {
            return;
        }
        acts.sort_by(|a, b| a.partial_cmp(b).expect("activities are finite"));
        let median = acts[acts.len() / 2];
        let keep: Vec<bool> = (0..self.clauses.len())
            .map(|ci| {
                !self.learned[ci]
                    || self.clauses[ci].len() <= 2
                    || self.clause_activity[ci] >= median
            })
            .collect();
        self.retain_clauses(&keep);
        self.db_reductions += 1;
        // Geometric growth: long-lived sessions keep proportionally more of
        // what they keep re-deriving.
        self.learn_limit += self.learn_limit / 2;
    }

    /// Runs the CDCL search under `assumptions`.
    ///
    /// `Unsat` means the clause database has no model in which every
    /// assumption literal holds (the database alone may still be
    /// satisfiable).  The clause database — including clauses learned during
    /// this call — is retained, so subsequent calls resume with everything
    /// already derived.  Any search state from a previous call is undone by
    /// backtracking to decision level 0 first; level-0 facts (units and
    /// their propagations) are permanent.
    pub fn solve_under_assumptions(&mut self, assumptions: &[SatLit]) -> SatResult {
        if self.trivially_unsat {
            return SatResult::Unsat;
        }
        self.backtrack_to(0);
        self.flush_pending();
        if self.trivially_unsat {
            return SatResult::Unsat;
        }
        if self.config.db_reduction && self.num_learned >= self.learn_limit {
            self.reduce_db();
            if self.trivially_unsat {
                return SatResult::Unsat;
            }
        }
        // Variables this query can constrain: everything a current clause
        // or assumption mentions.  Clauses learned during the search only
        // resolve existing clauses, so they never activate a new variable.
        let mut active = vec![false; self.num_vars];
        for clause in &self.clauses {
            for l in clause {
                active[l.var] = true;
            }
        }
        for a in assumptions {
            active[a.var] = true;
        }
        self.heap_rebuild(&active);
        if crate::testing::inject_fault("sat") == Some(crate::testing::Fault::Unknown) {
            self.budget_stops += 1;
            self.backtrack_to(0);
            return SatResult::Unknown;
        }
        let budget = self.config.budget;
        let mut conflicts = 0usize;
        let mut decisions = 0u64;
        loop {
            if let Some(conflict) = self.propagate() {
                conflicts += 1;
                if conflicts > self.config.max_conflicts {
                    self.backtrack_to(0);
                    return SatResult::Unknown;
                }
                // Budget governance: the conflict cap exactly, the deadline
                // amortized (one clock read per 64 conflicts).
                if budget
                    .sat_conflicts
                    .is_some_and(|cap| conflicts as u64 > cap)
                    || (conflicts.is_multiple_of(64) && budget.deadline_exceeded())
                {
                    self.budget_stops += 1;
                    self.backtrack_to(0);
                    return SatResult::Unknown;
                }
                if self.current_level() == 0 {
                    return SatResult::Unsat;
                }
                let (learned, backjump) = self.analyze(conflict);
                self.backtrack_to(backjump);
                let assert_lit = learned[0];
                self.clauses.push(learned);
                self.learned.push(true);
                self.clause_activity.push(self.clause_activity_inc);
                self.num_learned += 1;
                let ci = self.clauses.len() - 1;
                if self.clauses[ci].len() >= 2 {
                    let l0 = self.clauses[ci][0];
                    let l1 = self.clauses[ci][1];
                    self.watches[watch_idx(l0)].push(Watcher {
                        clause: ci,
                        blocker: l1,
                    });
                    self.watches[watch_idx(l1)].push(Watcher {
                        clause: ci,
                        blocker: l0,
                    });
                }
                if self.value(assert_lit).is_none() {
                    self.enqueue(assert_lit, Some(ci));
                } else if self.value(assert_lit) == Some(false) {
                    // Can happen only at level 0 with a unit learned clause.
                    return SatResult::Unsat;
                }
                self.decay_activities();
            } else {
                // Re-establish assumptions (in order) before any search
                // decision; backjumps may have unassigned a suffix of them.
                let mut next_decision = None;
                for &a in assumptions {
                    match self.value(a) {
                        Some(true) => continue,
                        // The negation of an assumption is implied by the
                        // database together with the assumptions already
                        // placed (only assumptions are decided below this
                        // point), so the query is unsat under assumptions.
                        Some(false) => {
                            self.backtrack_to(0);
                            return SatResult::Unsat;
                        }
                        None => {
                            next_decision = Some(a);
                            break;
                        }
                    }
                }
                let decision = match next_decision {
                    Some(a) => a,
                    None => match self.pick_branch_var(&active) {
                        None => {
                            let model =
                                self.assignment.iter().map(|v| v.unwrap_or(false)).collect();
                            return SatResult::Sat(model);
                        }
                        Some(var) => SatLit::new(var, self.saved_phase[var]),
                    },
                };
                decisions += 1;
                // Budget governance mirrors the conflict site: decision cap
                // exact, deadline amortized (one clock read per 256
                // decisions).
                if budget.sat_decisions.is_some_and(|cap| decisions > cap)
                    || (decisions.is_multiple_of(256) && budget.deadline_exceeded())
                {
                    self.budget_stops += 1;
                    self.backtrack_to(0);
                    return SatResult::Unknown;
                }
                self.trail_lim.push(self.trail.len());
                self.enqueue(decision, None);
            }
        }
    }

    /// Audits the solver's internal data-structure invariants; part of the
    /// `FLUX_AUDIT=full` tier, runnable between searches (the trail may be
    /// mid-model: [`SatSolver::solve_under_assumptions`] returns `Sat`
    /// without backtracking).  Checks the two-watched-literal scheme (every
    /// attached clause of two or more literals watched exactly once at each
    /// of positions 0 and 1, blockers drawn from the clause, units and
    /// pending clauses unwatched), the trail/assignment bijection, decision
    /// levels against `trail_lim`, reason indices, metadata lengths, and
    /// the decision heap (index map and max-heap property).  Returns a
    /// description of the first violation found — which is a solver bug,
    /// never a property of the input.
    pub fn check_invariants(&self) -> Result<(), String> {
        if self.trivially_unsat {
            // An empty/falsified clause short-circuits attachment midway;
            // the remaining state is dead and intentionally unspecified.
            return Ok(());
        }
        let n = self.num_vars;
        if self.learned.len() != self.clauses.len()
            || self.clause_activity.len() != self.clauses.len()
        {
            return Err(format!(
                "clause metadata out of sync: {} clauses, {} learned flags, {} activities",
                self.clauses.len(),
                self.learned.len(),
                self.clause_activity.len()
            ));
        }
        if self.num_learned != self.learned.iter().filter(|&&l| l).count() {
            return Err(format!(
                "num_learned = {} disagrees with flags",
                self.num_learned
            ));
        }
        if self.watches.len() != n * 2
            || self.assignment.len() != n
            || self.level.len() != n
            || self.reason.len() != n
            || self.activity.len() != n
            || self.heap_pos.len() != n
            || self.saved_phase.len() != n
        {
            return Err("per-variable array lengths disagree with num_vars".to_owned());
        }
        // Watcher lists: `seen[ci]` counts watchers of clause `ci` found at
        // the list of its literal 0 resp. literal 1.
        let mut seen = vec![[0usize; 2]; self.clauses.len()];
        for (idx, list) in self.watches.iter().enumerate() {
            let lit = SatLit::new(idx / 2, idx % 2 == 1);
            for w in list {
                let Some(clause) = self.clauses.get(w.clause) else {
                    return Err(format!("watcher references dropped clause #{}", w.clause));
                };
                let which = if clause.first() == Some(&lit) {
                    0
                } else if clause.get(1) == Some(&lit) {
                    1
                } else {
                    return Err(format!(
                        "clause #{} is watched at {lit:?}, which is not at position 0 or 1: {clause:?}",
                        w.clause
                    ));
                };
                if !clause.contains(&w.blocker) {
                    return Err(format!(
                        "watcher of clause #{} has foreign blocker {:?}",
                        w.clause, w.blocker
                    ));
                }
                seen[w.clause][which] += 1;
            }
        }
        for (ci, counts) in seen.iter().enumerate() {
            let unwatched = self.pending.contains(&ci) || self.clauses[ci].len() == 1;
            let expected = if unwatched { [0, 0] } else { [1, 1] };
            if *counts != expected {
                return Err(format!(
                    "clause #{ci} ({:?}, pending = {}) has watch counts {counts:?}, expected {expected:?}",
                    self.clauses[ci],
                    self.pending.contains(&ci)
                ));
            }
        }
        // Trail/assignment bijection and decision levels.
        let mut on_trail = vec![false; n];
        let mut lims_before = 0usize;
        for (i, lit) in self.trail.iter().enumerate() {
            while lims_before < self.trail_lim.len() && self.trail_lim[lims_before] <= i {
                lims_before += 1;
            }
            if std::mem::replace(&mut on_trail[lit.var], true) {
                return Err(format!("variable {} appears twice on the trail", lit.var));
            }
            if self.assignment[lit.var] != Some(lit.positive) {
                return Err(format!(
                    "trail entry {lit:?} disagrees with assignment {:?}",
                    self.assignment[lit.var]
                ));
            }
            if self.level[lit.var] != lims_before {
                return Err(format!(
                    "trail entry {lit:?} at index {i} has level {}, expected {lims_before}",
                    self.level[lit.var]
                ));
            }
            if let Some(ci) = self.reason[lit.var] {
                if ci >= self.clauses.len() {
                    return Err(format!("reason of {lit:?} references dropped clause #{ci}"));
                }
            }
        }
        let assigned = self.assignment.iter().filter(|a| a.is_some()).count();
        if assigned != self.trail.len() {
            return Err(format!(
                "{assigned} variables assigned but trail has {} entries",
                self.trail.len()
            ));
        }
        if self.propagated > self.trail.len() {
            return Err(format!(
                "propagation index {} past the trail ({} entries)",
                self.propagated,
                self.trail.len()
            ));
        }
        for w in self.trail_lim.windows(2) {
            if w[1] <= w[0] {
                return Err(format!(
                    "trail_lim not strictly increasing: {:?}",
                    self.trail_lim
                ));
            }
        }
        if self.trail_lim.last().is_some_and(|&l| l > self.trail.len()) {
            return Err("trail_lim points past the trail".to_owned());
        }
        // Decision heap: the position map inverts the heap array, and every
        // parent's activity dominates its children's.
        let mut in_heap = vec![false; n];
        for (i, &v) in self.order_heap.iter().enumerate() {
            if v >= n {
                return Err(format!("heap entry {v} out of variable range"));
            }
            if std::mem::replace(&mut in_heap[v], true) {
                return Err(format!("variable {v} appears twice in the decision heap"));
            }
            if self.heap_pos[v] != i {
                return Err(format!(
                    "heap_pos[{v}] = {} but the variable sits at heap index {i}",
                    self.heap_pos[v]
                ));
            }
            if i > 0 {
                let parent = self.order_heap[(i - 1) / 2];
                if self.activity[parent] < self.activity[v] {
                    return Err(format!(
                        "heap property violated: parent {parent} ({}) < child {v} ({})",
                        self.activity[parent], self.activity[v]
                    ));
                }
            }
        }
        for (v, &present) in in_heap.iter().enumerate() {
            if !present && self.heap_pos[v] != usize::MAX {
                return Err(format!(
                    "heap_pos[{v}] = {} but the variable is not in the heap",
                    self.heap_pos[v]
                ));
            }
        }
        Ok(())
    }
}

/// Checks whether `assignment` satisfies all `clauses`; test helper.
pub fn assignment_satisfies(clauses: &[Vec<SatLit>], assignment: &[bool]) -> bool {
    clauses
        .iter()
        .all(|clause| clause.iter().any(|lit| assignment[lit.var] == lit.positive))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testing::Rng;

    fn lit(v: usize, pos: bool) -> SatLit {
        SatLit::new(v, pos)
    }

    fn solve_clauses(num_vars: usize, clauses: &[Vec<SatLit>]) -> SatResult {
        let mut solver = SatSolver::new(num_vars, SatConfig::default());
        for c in clauses {
            solver.add_clause(c.clone());
        }
        solver.solve()
    }

    #[test]
    fn empty_formula_is_sat() {
        assert!(matches!(solve_clauses(3, &[]), SatResult::Sat(_)));
    }

    #[test]
    fn unit_clauses_propagate() {
        let clauses = vec![vec![lit(0, true)], vec![lit(1, false)]];
        match solve_clauses(2, &clauses) {
            SatResult::Sat(m) => {
                assert!(m[0]);
                assert!(!m[1]);
            }
            other => panic!("expected sat, got {other:?}"),
        }
    }

    #[test]
    fn contradictory_units_are_unsat() {
        let clauses = vec![vec![lit(0, true)], vec![lit(0, false)]];
        assert_eq!(solve_clauses(1, &clauses), SatResult::Unsat);
    }

    #[test]
    fn simple_implication_chain() {
        // (¬a ∨ b) ∧ (¬b ∨ c) ∧ a ∧ ¬c is unsat.
        let clauses = vec![
            vec![lit(0, false), lit(1, true)],
            vec![lit(1, false), lit(2, true)],
            vec![lit(0, true)],
            vec![lit(2, false)],
        ];
        assert_eq!(solve_clauses(3, &clauses), SatResult::Unsat);
    }

    #[test]
    fn satisfiable_3sat_instance() {
        let clauses = vec![
            vec![lit(0, true), lit(1, true), lit(2, true)],
            vec![lit(0, false), lit(1, false)],
            vec![lit(1, true), lit(2, false)],
            vec![lit(0, true), lit(2, true)],
        ];
        match solve_clauses(3, &clauses) {
            SatResult::Sat(m) => assert!(assignment_satisfies(&clauses, &m)),
            other => panic!("expected sat, got {other:?}"),
        }
    }

    #[test]
    fn pigeonhole_two_pigeons_one_hole_is_unsat() {
        // p0 and p1 each must be placed in the single hole, but not both.
        let clauses = vec![
            vec![lit(0, true)],
            vec![lit(1, true)],
            vec![lit(0, false), lit(1, false)],
        ];
        assert_eq!(solve_clauses(2, &clauses), SatResult::Unsat);
    }

    #[test]
    fn pigeonhole_three_pigeons_two_holes_is_unsat() {
        // Variables x_{p,h} = p*2 + h, p in 0..3, h in 0..2.
        let var = |p: usize, h: usize| p * 2 + h;
        let mut clauses = Vec::new();
        for p in 0..3 {
            clauses.push(vec![lit(var(p, 0), true), lit(var(p, 1), true)]);
        }
        for h in 0..2 {
            for p1 in 0..3 {
                for p2 in (p1 + 1)..3 {
                    clauses.push(vec![lit(var(p1, h), false), lit(var(p2, h), false)]);
                }
            }
        }
        assert_eq!(solve_clauses(6, &clauses), SatResult::Unsat);
    }

    /// A pigeonhole instance hard enough to overflow the learned-clause
    /// limit: the reduction heuristic must actually fire, and dropping
    /// low-activity learned clauses must not change the verdict.
    #[test]
    fn db_reduction_fires_and_preserves_the_verdict() {
        let pigeons = 9;
        let holes = 8;
        let var = |p: usize, h: usize| p * holes + h;
        let mut clauses = Vec::new();
        for p in 0..pigeons {
            clauses.push((0..holes).map(|h| lit(var(p, h), true)).collect());
        }
        for h in 0..holes {
            for p1 in 0..pigeons {
                for p2 in (p1 + 1)..pigeons {
                    clauses.push(vec![lit(var(p1, h), false), lit(var(p2, h), false)]);
                }
            }
        }
        let mut reductions = 0;
        for db_reduction in [true, false] {
            let config = SatConfig {
                db_reduction,
                ..SatConfig::default()
            };
            let mut solver = SatSolver::new(pigeons * holes, config);
            for c in &clauses {
                solver.add_clause(c.clone());
            }
            // Reduction runs on the level-0 trail *between* searches: the
            // first solve piles up learned clauses, the second opens by
            // reducing them and must re-derive the same verdict.
            assert_eq!(solver.solve(), SatResult::Unsat);
            assert_eq!(solver.solve(), SatResult::Unsat);
            if db_reduction {
                reductions = solver.db_reductions();
            } else {
                assert_eq!(solver.db_reductions(), 0);
            }
        }
        assert!(
            reductions > 0,
            "the instance must learn enough clauses to trigger a reduction"
        );
    }

    #[test]
    fn tautological_clauses_are_ignored() {
        let clauses = vec![vec![lit(0, true), lit(0, false)], vec![lit(1, true)]];
        match solve_clauses(2, &clauses) {
            SatResult::Sat(m) => assert!(m[1]),
            other => panic!("expected sat, got {other:?}"),
        }
    }

    #[test]
    fn empty_clause_is_unsat() {
        let mut solver = SatSolver::new(1, SatConfig::default());
        solver.add_clause(vec![]);
        assert_eq!(solver.solve(), SatResult::Unsat);
    }

    #[test]
    fn duplicate_literals_are_deduplicated() {
        let clauses = vec![
            vec![lit(0, true), lit(0, true)],
            vec![lit(0, false), lit(1, true)],
        ];
        match solve_clauses(2, &clauses) {
            SatResult::Sat(m) => assert!(assignment_satisfies(&clauses, &m)),
            other => panic!("expected sat, got {other:?}"),
        }
    }

    /// Assumption-based solving must keep the clause database usable across
    /// calls: unsat under one assumption, sat under the other, and learned
    /// state must not corrupt later queries.
    #[test]
    fn assumptions_flip_satisfiability_without_corrupting_state() {
        let mut solver = SatSolver::new(0, SatConfig::default());
        let g1 = solver.new_var();
        let g2 = solver.new_var();
        let x = solver.new_var();
        // g1 ⟹ x, g2 ⟹ ¬x.
        solver.add_clause(vec![lit(g1, false), lit(x, true)]);
        solver.add_clause(vec![lit(g2, false), lit(x, false)]);
        match solver.solve_under_assumptions(&[lit(g1, true)]) {
            SatResult::Sat(m) => assert!(m[x]),
            other => panic!("expected sat under g1, got {other:?}"),
        }
        match solver.solve_under_assumptions(&[lit(g2, true)]) {
            SatResult::Sat(m) => assert!(!m[x]),
            other => panic!("expected sat under g2, got {other:?}"),
        }
        assert_eq!(
            solver.solve_under_assumptions(&[lit(g1, true), lit(g2, true)]),
            SatResult::Unsat,
            "both guards force contradictory values of x"
        );
        // The database itself is still satisfiable.
        assert!(matches!(solver.solve(), SatResult::Sat(_)));
    }

    /// Compaction must drop clauses satisfied at level 0 while preserving
    /// the level-0 facts they established.
    #[test]
    fn compact_drops_satisfied_clauses_but_keeps_facts() {
        let mut solver = SatSolver::new(0, SatConfig::default());
        let g = solver.new_var();
        let a = solver.new_var();
        let b = solver.new_var();
        // Guarded goal clauses: g ⟹ (a ∨ b), g ⟹ ¬a; plus a real fact b ⟹ a...
        solver.add_clause(vec![lit(g, false), lit(a, true), lit(b, true)]);
        solver.add_clause(vec![lit(g, false), lit(a, false)]);
        // An unguarded clause that stays live: a ∨ b.
        solver.add_clause(vec![lit(a, true), lit(b, true)]);
        assert!(matches!(
            solver.solve_under_assumptions(&[lit(g, true)]),
            SatResult::Sat(_)
        ));
        // Retire the guard and compact: both guarded clauses (satisfied by
        // ¬g) disappear, the live clause stays.
        solver.add_clause(vec![lit(g, false)]);
        solver.compact();
        assert_eq!(solver.num_clauses(), 1);
        // The retired fact ¬g persists in the level-0 assignment:
        // assuming g now is immediately unsat.
        assert_eq!(
            solver.solve_under_assumptions(&[lit(g, true)]),
            SatResult::Unsat
        );
        // And the live clause still constrains the search.
        match solver.solve() {
            SatResult::Sat(m) => assert!(m[a] || m[b]),
            other => panic!("expected sat, got {other:?}"),
        }
    }

    /// A clause added *between* searches whose literals are already partly
    /// decided at level 0 must still propagate: deferred attachment
    /// integrates it on the level-0 trail at the start of the next search.
    #[test]
    fn clauses_added_between_searches_propagate() {
        let mut solver = SatSolver::new(0, SatConfig::default());
        let x = solver.new_var();
        let y = solver.new_var();
        solver.add_clause(vec![lit(x, true)]); // level-0 fact x
        assert!(matches!(solver.solve(), SatResult::Sat(_)));
        // New clause ¬x ∨ y is unit under the level-0 assignment.
        solver.add_clause(vec![lit(x, false), lit(y, true)]);
        match solver.solve() {
            SatResult::Sat(m) => assert!(m[x] && m[y]),
            other => panic!("expected sat, got {other:?}"),
        }
        // And one falsified at level 0 makes the database unsat.
        solver.add_clause(vec![lit(x, false), lit(y, false)]);
        assert_eq!(solver.solve(), SatResult::Unsat);
    }

    /// Compaction must not skip a propagation pending in a clause added
    /// just before the compact (the retired-goal pattern: assert ¬guard,
    /// then compact).
    #[test]
    fn compact_integrates_pending_clauses_before_retention() {
        let mut solver = SatSolver::new(0, SatConfig::default());
        let g = solver.new_var();
        let a = solver.new_var();
        solver.add_clause(vec![lit(g, false), lit(a, true)]);
        assert!(matches!(
            solver.solve_under_assumptions(&[lit(g, true)]),
            SatResult::Sat(_)
        ));
        // Retire g without an intervening search: compact must attach the
        // pending unit, propagate ¬g, and drop the satisfied clause.
        solver.add_clause(vec![lit(g, false)]);
        solver.compact();
        assert_eq!(solver.num_clauses(), 0);
        assert_eq!(
            solver.solve_under_assumptions(&[lit(g, true)]),
            SatResult::Unsat
        );
    }

    /// The audit invariant sweep must pass at every between-search point of
    /// an incremental workout: after `Sat` (mid-trail model), after `Unsat`,
    /// after clause additions (pending), after compaction and after DB
    /// reduction — across both propagator implementations.
    #[test]
    fn invariants_hold_across_incremental_searches() {
        for scan in [false, true] {
            let config = SatConfig {
                scan_propagation: scan,
                ..SatConfig::default()
            };
            let mut solver = SatSolver::new(0, config);
            solver.check_invariants().unwrap();
            let vars: Vec<usize> = (0..8).map(|_| solver.new_var()).collect();
            let mut rng = Rng::new(0xA0D17);
            for round in 0..40 {
                let num_lits = rng.int_in(1, 4) as usize;
                let clause: Vec<SatLit> = (0..num_lits)
                    .map(|_| lit(vars[rng.below(8) as usize], rng.flip()))
                    .collect();
                solver.add_clause(clause);
                solver.check_invariants().unwrap(); // pending clauses unwatched
                let assumption = lit(vars[rng.below(8) as usize], rng.flip());
                let result = solver.solve_under_assumptions(&[assumption]);
                solver
                    .check_invariants()
                    .unwrap_or_else(|e| panic!("scan={scan} round {round} after {result:?}: {e}"));
                if round % 7 == 0 {
                    solver.compact();
                    solver.check_invariants().unwrap();
                }
                if solver.solve() == SatResult::Unsat {
                    break;
                }
                solver.check_invariants().unwrap();
            }
        }
    }

    /// Brute-force satisfiability for cross-checking on small instances.
    fn brute_force_sat(num_vars: usize, clauses: &[Vec<SatLit>]) -> bool {
        for bits in 0..(1u32 << num_vars) {
            let assignment: Vec<bool> = (0..num_vars).map(|v| bits & (1 << v) != 0).collect();
            if assignment_satisfies(clauses, &assignment) {
                return true;
            }
        }
        false
    }

    #[test]
    fn agrees_with_brute_force_on_random_instances() {
        let mut rng = Rng::new(0x5A7_5EED);
        for case in 0..128 {
            let num_clauses = rng.int_in(1, 11) as usize;
            let clauses: Vec<Vec<SatLit>> = (0..num_clauses)
                .map(|_| {
                    let num_lits = rng.int_in(1, 3) as usize;
                    (0..num_lits)
                        .map(|_| lit(rng.below(6) as usize, rng.flip()))
                        .collect()
                })
                .collect();
            let expected = brute_force_sat(6, &clauses);
            match solve_clauses(6, &clauses) {
                SatResult::Sat(m) => {
                    assert!(assignment_satisfies(&clauses, &m), "case {case}");
                    assert!(expected, "case {case}");
                }
                SatResult::Unsat => assert!(!expected, "case {case}"),
                SatResult::Unknown => {}
            }
        }
    }

    /// The watched and scan propagators must agree verdict-for-verdict on
    /// random incremental workloads: interleaved clause additions,
    /// assumption solves and compactions over one long-lived solver each.
    #[test]
    fn watched_and_scan_propagation_agree_incrementally() {
        let mut rng = Rng::new(0x3A7C_4EED);
        for case in 0..48 {
            let mut watched = SatSolver::new(6, SatConfig::default());
            let mut scan = SatSolver::new(
                6,
                SatConfig {
                    scan_propagation: true,
                    ..SatConfig::default()
                },
            );
            for step in 0..12 {
                match rng.below(5) {
                    0..=2 => {
                        let num_lits = rng.int_in(1, 3) as usize;
                        let clause: Vec<SatLit> = (0..num_lits)
                            .map(|_| lit(rng.below(6) as usize, rng.flip()))
                            .collect();
                        watched.add_clause(clause.clone());
                        scan.add_clause(clause);
                    }
                    3 => {
                        let num_assumptions = rng.below(3) as usize;
                        let assumptions: Vec<SatLit> = (0..num_assumptions)
                            .map(|_| lit(rng.below(6) as usize, rng.flip()))
                            .collect();
                        let w = watched.solve_under_assumptions(&assumptions);
                        let s = scan.solve_under_assumptions(&assumptions);
                        assert_eq!(
                            matches!(w, SatResult::Sat(_)),
                            matches!(s, SatResult::Sat(_)),
                            "case {case} step {step}: watched {w:?} vs scan {s:?}"
                        );
                    }
                    _ => {
                        watched.compact();
                        scan.compact();
                    }
                }
            }
            let w = watched.solve();
            let s = scan.solve();
            assert_eq!(
                matches!(w, SatResult::Sat(_)),
                matches!(s, SatResult::Sat(_)),
                "case {case} final: watched {w:?} vs scan {s:?}"
            );
        }
    }
}
