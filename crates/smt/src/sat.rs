//! A small CDCL SAT solver.
//!
//! This is the propositional core of the DPLL(T) loop.  It implements
//! conflict-driven clause learning with 1-UIP conflict analysis,
//! non-chronological backjumping, activity-based decisions and phase saving.
//! Propagation scans occurrence lists rather than using two-watched
//! literals; the formulas produced by the verifier are small (hundreds of
//! variables), so simplicity and auditability win over raw speed here.

use std::fmt;

/// A propositional literal: variable index plus phase.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct SatLit {
    /// Variable index (0-based).
    pub var: usize,
    /// `true` for the positive phase.
    pub positive: bool,
}

impl SatLit {
    /// Creates a literal.
    pub fn new(var: usize, positive: bool) -> SatLit {
        SatLit { var, positive }
    }

    /// The complementary literal.
    pub fn negated(self) -> SatLit {
        SatLit {
            var: self.var,
            positive: !self.positive,
        }
    }
}

impl fmt::Debug for SatLit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.positive {
            write!(f, "x{}", self.var)
        } else {
            write!(f, "¬x{}", self.var)
        }
    }
}

/// Result of a SAT check.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SatResult {
    /// Satisfiable, with an assignment indexed by variable.
    Sat(Vec<bool>),
    /// Unsatisfiable.
    Unsat,
    /// Resource limit exceeded.
    Unknown,
}

/// Configuration for the SAT solver.
#[derive(Clone, Copy, Debug)]
pub struct SatConfig {
    /// Maximum number of conflicts before giving up.
    pub max_conflicts: usize,
}

impl Default for SatConfig {
    fn default() -> Self {
        SatConfig {
            max_conflicts: 200_000,
        }
    }
}

/// A CDCL SAT solver over a fixed set of variables.
pub struct SatSolver {
    num_vars: usize,
    clauses: Vec<Vec<SatLit>>,
    /// Current assignment (None = unassigned).
    assignment: Vec<Option<bool>>,
    /// Decision level at which each variable was assigned.
    level: Vec<usize>,
    /// Index of the clause that propagated each variable (None = decision).
    reason: Vec<Option<usize>>,
    /// Assignment trail, in order.
    trail: Vec<SatLit>,
    /// Start index in `trail` of each decision level.
    trail_lim: Vec<usize>,
    /// Next trail index to propagate.
    propagated: usize,
    /// Variable activities for branching.
    activity: Vec<f64>,
    /// Saved phases.
    saved_phase: Vec<bool>,
    activity_inc: f64,
    /// Set to true if an empty clause was added.
    trivially_unsat: bool,
    config: SatConfig,
}

impl SatSolver {
    /// Creates a solver over `num_vars` variables with no clauses.
    pub fn new(num_vars: usize, config: SatConfig) -> SatSolver {
        SatSolver {
            num_vars,
            clauses: Vec::new(),
            assignment: vec![None; num_vars],
            level: vec![0; num_vars],
            reason: vec![None; num_vars],
            trail: Vec::new(),
            trail_lim: Vec::new(),
            propagated: 0,
            activity: vec![0.0; num_vars],
            saved_phase: vec![false; num_vars],
            activity_inc: 1.0,
            trivially_unsat: false,
            config,
        }
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Adds a clause.  Duplicate literals are removed; tautological clauses
    /// are ignored.
    pub fn add_clause(&mut self, mut lits: Vec<SatLit>) {
        lits.sort_by_key(|l| (l.var, l.positive));
        lits.dedup();
        // Tautology?
        for w in lits.windows(2) {
            if w[0].var == w[1].var && w[0].positive != w[1].positive {
                return;
            }
        }
        if lits.is_empty() {
            self.trivially_unsat = true;
            return;
        }
        self.clauses.push(lits);
    }

    fn value(&self, lit: SatLit) -> Option<bool> {
        self.assignment[lit.var].map(|v| v == lit.positive)
    }

    fn current_level(&self) -> usize {
        self.trail_lim.len()
    }

    fn enqueue(&mut self, lit: SatLit, reason: Option<usize>) {
        debug_assert!(self.assignment[lit.var].is_none());
        self.assignment[lit.var] = Some(lit.positive);
        self.level[lit.var] = self.current_level();
        self.reason[lit.var] = reason;
        self.trail.push(lit);
    }

    /// Unit propagation.  Returns the index of a conflicting clause, if any.
    fn propagate(&mut self) -> Option<usize> {
        loop {
            let mut changed = false;
            'clauses: for ci in 0..self.clauses.len() {
                let mut unassigned: Option<SatLit> = None;
                let mut num_unassigned = 0;
                for &lit in &self.clauses[ci] {
                    match self.value(lit) {
                        Some(true) => continue 'clauses, // clause satisfied
                        Some(false) => {}
                        None => {
                            num_unassigned += 1;
                            unassigned = Some(lit);
                        }
                    }
                }
                match (num_unassigned, unassigned) {
                    (0, _) => return Some(ci), // conflict
                    (1, Some(lit)) => {
                        self.enqueue(lit, Some(ci));
                        changed = true;
                    }
                    _ => {}
                }
            }
            self.propagated = self.trail.len();
            if !changed {
                return None;
            }
        }
    }

    fn bump(&mut self, var: usize) {
        self.activity[var] += self.activity_inc;
        if self.activity[var] > 1e100 {
            for a in &mut self.activity {
                *a *= 1e-100;
            }
            self.activity_inc *= 1e-100;
        }
    }

    fn decay_activities(&mut self) {
        self.activity_inc /= 0.95;
    }

    /// 1-UIP conflict analysis.  Returns the learned clause and the level to
    /// backjump to.
    fn analyze(&mut self, conflict: usize) -> (Vec<SatLit>, usize) {
        let current_level = self.current_level();
        let mut learned: Vec<SatLit> = Vec::new();
        let mut seen = vec![false; self.num_vars];
        let mut counter = 0usize;
        let mut clause_lits: Vec<SatLit> = self.clauses[conflict].clone();
        let mut trail_idx = self.trail.len();

        loop {
            for lit in &clause_lits {
                let var = lit.var;
                if seen[var] || self.level[var] == 0 {
                    continue;
                }
                seen[var] = true;
                self.bump(var);
                if self.level[var] == current_level {
                    counter += 1;
                } else {
                    learned.push(*lit);
                }
            }
            // Find the next literal on the trail (at the current level) that
            // participates in the conflict.
            let pivot = loop {
                trail_idx -= 1;
                let lit = self.trail[trail_idx];
                if seen[lit.var] {
                    break lit;
                }
            };
            counter -= 1;
            if counter == 0 {
                // `pivot` is the 1-UIP.
                learned.push(pivot.negated());
                break;
            }
            let reason = self.reason[pivot.var].expect("UIP search hit a decision early");
            clause_lits = self.clauses[reason]
                .iter()
                .copied()
                .filter(|l| l.var != pivot.var)
                .collect();
        }

        // Backjump level: second-highest level in the learned clause.
        let mut backjump = 0;
        for lit in &learned {
            if lit.var != learned.last().unwrap().var || learned.len() == 1 {
                // handled below
            }
            let lvl = self.level[lit.var];
            if lvl != current_level && lvl > backjump {
                backjump = lvl;
            }
        }
        (learned, backjump)
    }

    fn backtrack_to(&mut self, level: usize) {
        while self.current_level() > level {
            let start = self.trail_lim.pop().expect("trail limit underflow");
            while self.trail.len() > start {
                let lit = self.trail.pop().expect("trail underflow");
                self.saved_phase[lit.var] = lit.positive;
                self.assignment[lit.var] = None;
                self.reason[lit.var] = None;
            }
        }
        self.propagated = self.trail.len();
    }

    fn pick_branch_var(&self) -> Option<usize> {
        let mut best: Option<(usize, f64)> = None;
        for v in 0..self.num_vars {
            if self.assignment[v].is_none() {
                let act = self.activity[v];
                match best {
                    Some((_, best_act)) if best_act >= act => {}
                    _ => best = Some((v, act)),
                }
            }
        }
        best.map(|(v, _)| v)
    }

    /// Runs the CDCL search.
    pub fn solve(&mut self) -> SatResult {
        if self.trivially_unsat {
            return SatResult::Unsat;
        }
        let mut conflicts = 0usize;
        loop {
            if let Some(conflict) = self.propagate() {
                conflicts += 1;
                if conflicts > self.config.max_conflicts {
                    return SatResult::Unknown;
                }
                if self.current_level() == 0 {
                    return SatResult::Unsat;
                }
                let (learned, backjump) = self.analyze(conflict);
                self.backtrack_to(backjump);
                let assert_lit = *learned.last().expect("learned clause is never empty");
                self.clauses.push(learned);
                let ci = self.clauses.len() - 1;
                if self.value(assert_lit).is_none() {
                    self.enqueue(assert_lit, Some(ci));
                } else if self.value(assert_lit) == Some(false) {
                    // Can happen only at level 0 with a unit learned clause.
                    return SatResult::Unsat;
                }
                self.decay_activities();
            } else {
                match self.pick_branch_var() {
                    None => {
                        let model = self.assignment.iter().map(|v| v.unwrap_or(false)).collect();
                        return SatResult::Sat(model);
                    }
                    Some(var) => {
                        self.trail_lim.push(self.trail.len());
                        let phase = self.saved_phase[var];
                        self.enqueue(SatLit::new(var, phase), None);
                    }
                }
            }
        }
    }
}

/// Checks whether `assignment` satisfies all `clauses`; test helper.
pub fn assignment_satisfies(clauses: &[Vec<SatLit>], assignment: &[bool]) -> bool {
    clauses
        .iter()
        .all(|clause| clause.iter().any(|lit| assignment[lit.var] == lit.positive))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testing::Rng;

    fn lit(v: usize, pos: bool) -> SatLit {
        SatLit::new(v, pos)
    }

    fn solve_clauses(num_vars: usize, clauses: &[Vec<SatLit>]) -> SatResult {
        let mut solver = SatSolver::new(num_vars, SatConfig::default());
        for c in clauses {
            solver.add_clause(c.clone());
        }
        solver.solve()
    }

    #[test]
    fn empty_formula_is_sat() {
        assert!(matches!(solve_clauses(3, &[]), SatResult::Sat(_)));
    }

    #[test]
    fn unit_clauses_propagate() {
        let clauses = vec![vec![lit(0, true)], vec![lit(1, false)]];
        match solve_clauses(2, &clauses) {
            SatResult::Sat(m) => {
                assert!(m[0]);
                assert!(!m[1]);
            }
            other => panic!("expected sat, got {other:?}"),
        }
    }

    #[test]
    fn contradictory_units_are_unsat() {
        let clauses = vec![vec![lit(0, true)], vec![lit(0, false)]];
        assert_eq!(solve_clauses(1, &clauses), SatResult::Unsat);
    }

    #[test]
    fn simple_implication_chain() {
        // (¬a ∨ b) ∧ (¬b ∨ c) ∧ a ∧ ¬c is unsat.
        let clauses = vec![
            vec![lit(0, false), lit(1, true)],
            vec![lit(1, false), lit(2, true)],
            vec![lit(0, true)],
            vec![lit(2, false)],
        ];
        assert_eq!(solve_clauses(3, &clauses), SatResult::Unsat);
    }

    #[test]
    fn satisfiable_3sat_instance() {
        let clauses = vec![
            vec![lit(0, true), lit(1, true), lit(2, true)],
            vec![lit(0, false), lit(1, false)],
            vec![lit(1, true), lit(2, false)],
            vec![lit(0, true), lit(2, true)],
        ];
        match solve_clauses(3, &clauses) {
            SatResult::Sat(m) => assert!(assignment_satisfies(&clauses, &m)),
            other => panic!("expected sat, got {other:?}"),
        }
    }

    #[test]
    fn pigeonhole_two_pigeons_one_hole_is_unsat() {
        // p0 and p1 each must be placed in the single hole, but not both.
        let clauses = vec![
            vec![lit(0, true)],
            vec![lit(1, true)],
            vec![lit(0, false), lit(1, false)],
        ];
        assert_eq!(solve_clauses(2, &clauses), SatResult::Unsat);
    }

    #[test]
    fn pigeonhole_three_pigeons_two_holes_is_unsat() {
        // Variables x_{p,h} = p*2 + h, p in 0..3, h in 0..2.
        let var = |p: usize, h: usize| p * 2 + h;
        let mut clauses = Vec::new();
        for p in 0..3 {
            clauses.push(vec![lit(var(p, 0), true), lit(var(p, 1), true)]);
        }
        for h in 0..2 {
            for p1 in 0..3 {
                for p2 in (p1 + 1)..3 {
                    clauses.push(vec![lit(var(p1, h), false), lit(var(p2, h), false)]);
                }
            }
        }
        assert_eq!(solve_clauses(6, &clauses), SatResult::Unsat);
    }

    #[test]
    fn tautological_clauses_are_ignored() {
        let clauses = vec![vec![lit(0, true), lit(0, false)], vec![lit(1, true)]];
        match solve_clauses(2, &clauses) {
            SatResult::Sat(m) => assert!(m[1]),
            other => panic!("expected sat, got {other:?}"),
        }
    }

    #[test]
    fn empty_clause_is_unsat() {
        let mut solver = SatSolver::new(1, SatConfig::default());
        solver.add_clause(vec![]);
        assert_eq!(solver.solve(), SatResult::Unsat);
    }

    #[test]
    fn duplicate_literals_are_deduplicated() {
        let clauses = vec![
            vec![lit(0, true), lit(0, true)],
            vec![lit(0, false), lit(1, true)],
        ];
        match solve_clauses(2, &clauses) {
            SatResult::Sat(m) => assert!(assignment_satisfies(&clauses, &m)),
            other => panic!("expected sat, got {other:?}"),
        }
    }

    /// Brute-force satisfiability for cross-checking on small instances.
    fn brute_force_sat(num_vars: usize, clauses: &[Vec<SatLit>]) -> bool {
        for bits in 0..(1u32 << num_vars) {
            let assignment: Vec<bool> = (0..num_vars).map(|v| bits & (1 << v) != 0).collect();
            if assignment_satisfies(clauses, &assignment) {
                return true;
            }
        }
        false
    }

    #[test]
    fn agrees_with_brute_force_on_random_instances() {
        let mut rng = Rng::new(0x5A7_5EED);
        for case in 0..128 {
            let num_clauses = rng.int_in(1, 11) as usize;
            let clauses: Vec<Vec<SatLit>> = (0..num_clauses)
                .map(|_| {
                    let num_lits = rng.int_in(1, 3) as usize;
                    (0..num_lits)
                        .map(|_| lit(rng.below(6) as usize, rng.flip()))
                        .collect()
                })
                .collect();
            let expected = brute_force_sat(6, &clauses);
            match solve_clauses(6, &clauses) {
                SatResult::Sat(m) => {
                    assert!(assignment_satisfies(&clauses, &m), "case {case}");
                    assert!(expected, "case {case}");
                }
                SatResult::Unsat => assert!(!expected, "case {case}"),
                SatResult::Unknown => {}
            }
        }
    }
}
