//! A small incremental CDCL SAT solver.
//!
//! This is the propositional core of the DPLL(T) loop.  It implements
//! conflict-driven clause learning with 1-UIP conflict analysis,
//! non-chronological backjumping, activity-based decisions and phase saving.
//! Propagation scans occurrence lists rather than using two-watched
//! literals; the formulas produced by the verifier are small (hundreds of
//! variables), so simplicity and auditability win over raw speed here.
//!
//! The solver is *incremental*: variables can be added after construction
//! ([`SatSolver::new_var`]), and [`SatSolver::solve_under_assumptions`]
//! decides satisfiability under a set of assumption literals while keeping
//! the clause database — including everything learned from conflicts —
//! for later calls.  Assumptions are enqueued as forced decisions below all
//! search decisions, exactly as in MiniSat: a learned clause is an ordinary
//! resolvent of the database and thus remains valid for every later query,
//! no matter which assumptions produced it.  [`crate::Session`] builds on
//! this to keep one persistent SAT core per hypothesis context, pushing
//! each goal's negation through a fresh activation literal.

use std::fmt;

/// A propositional literal: variable index plus phase.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct SatLit {
    /// Variable index (0-based).
    pub var: usize,
    /// `true` for the positive phase.
    pub positive: bool,
}

impl SatLit {
    /// Creates a literal.
    pub fn new(var: usize, positive: bool) -> SatLit {
        SatLit { var, positive }
    }

    /// The complementary literal.
    pub fn negated(self) -> SatLit {
        SatLit {
            var: self.var,
            positive: !self.positive,
        }
    }
}

impl fmt::Debug for SatLit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.positive {
            write!(f, "x{}", self.var)
        } else {
            write!(f, "¬x{}", self.var)
        }
    }
}

/// Result of a SAT check.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SatResult {
    /// Satisfiable, with an assignment indexed by variable.
    Sat(Vec<bool>),
    /// Unsatisfiable.
    Unsat,
    /// Resource limit exceeded.
    Unknown,
}

/// Configuration for the SAT solver.
#[derive(Clone, Copy, Debug)]
pub struct SatConfig {
    /// Maximum number of conflicts before giving up.
    pub max_conflicts: usize,
}

impl Default for SatConfig {
    fn default() -> Self {
        SatConfig {
            max_conflicts: 200_000,
        }
    }
}

/// A CDCL SAT solver over a fixed set of variables.
pub struct SatSolver {
    num_vars: usize,
    clauses: Vec<Vec<SatLit>>,
    /// Current assignment (None = unassigned).
    assignment: Vec<Option<bool>>,
    /// Decision level at which each variable was assigned.
    level: Vec<usize>,
    /// Index of the clause that propagated each variable (None = decision).
    reason: Vec<Option<usize>>,
    /// Assignment trail, in order.
    trail: Vec<SatLit>,
    /// Start index in `trail` of each decision level.
    trail_lim: Vec<usize>,
    /// Next trail index to propagate.
    propagated: usize,
    /// Variable activities for branching.
    activity: Vec<f64>,
    /// Saved phases.
    saved_phase: Vec<bool>,
    activity_inc: f64,
    /// Set to true if an empty clause was added.
    trivially_unsat: bool,
    config: SatConfig,
}

impl SatSolver {
    /// Creates a solver over `num_vars` variables with no clauses.
    pub fn new(num_vars: usize, config: SatConfig) -> SatSolver {
        SatSolver {
            num_vars,
            clauses: Vec::new(),
            assignment: vec![None; num_vars],
            level: vec![0; num_vars],
            reason: vec![None; num_vars],
            trail: Vec::new(),
            trail_lim: Vec::new(),
            propagated: 0,
            activity: vec![0.0; num_vars],
            saved_phase: vec![false; num_vars],
            activity_inc: 1.0,
            trivially_unsat: false,
            config,
        }
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Allocates a fresh variable and returns its index.
    pub fn new_var(&mut self) -> usize {
        let var = self.num_vars;
        self.ensure_vars(var + 1);
        var
    }

    /// Grows the variable range to at least `n` variables.
    pub fn ensure_vars(&mut self, n: usize) {
        if n <= self.num_vars {
            return;
        }
        self.assignment.resize(n, None);
        self.level.resize(n, 0);
        self.reason.resize(n, None);
        self.activity.resize(n, 0.0);
        self.saved_phase.resize(n, false);
        self.num_vars = n;
    }

    /// Adds a clause.  Duplicate literals are removed; tautological clauses
    /// are ignored.  Variables beyond the current range are allocated on
    /// demand, so incremental callers need not pre-size the solver.
    pub fn add_clause(&mut self, mut lits: Vec<SatLit>) {
        if let Some(max_var) = lits.iter().map(|l| l.var).max() {
            self.ensure_vars(max_var + 1);
        }
        lits.sort_by_key(|l| (l.var, l.positive));
        lits.dedup();
        // Tautology?
        for w in lits.windows(2) {
            if w[0].var == w[1].var && w[0].positive != w[1].positive {
                return;
            }
        }
        if lits.is_empty() {
            self.trivially_unsat = true;
            return;
        }
        self.clauses.push(lits);
    }

    fn value(&self, lit: SatLit) -> Option<bool> {
        self.assignment[lit.var].map(|v| v == lit.positive)
    }

    fn current_level(&self) -> usize {
        self.trail_lim.len()
    }

    fn enqueue(&mut self, lit: SatLit, reason: Option<usize>) {
        debug_assert!(self.assignment[lit.var].is_none());
        self.assignment[lit.var] = Some(lit.positive);
        self.level[lit.var] = self.current_level();
        self.reason[lit.var] = reason;
        self.trail.push(lit);
    }

    /// Unit propagation.  Returns the index of a conflicting clause, if any.
    fn propagate(&mut self) -> Option<usize> {
        loop {
            let mut changed = false;
            'clauses: for ci in 0..self.clauses.len() {
                let mut unassigned: Option<SatLit> = None;
                let mut num_unassigned = 0;
                for &lit in &self.clauses[ci] {
                    match self.value(lit) {
                        Some(true) => continue 'clauses, // clause satisfied
                        Some(false) => {}
                        None => {
                            num_unassigned += 1;
                            unassigned = Some(lit);
                        }
                    }
                }
                match (num_unassigned, unassigned) {
                    (0, _) => return Some(ci), // conflict
                    (1, Some(lit)) => {
                        self.enqueue(lit, Some(ci));
                        changed = true;
                    }
                    _ => {}
                }
            }
            self.propagated = self.trail.len();
            if !changed {
                return None;
            }
        }
    }

    fn bump(&mut self, var: usize) {
        self.activity[var] += self.activity_inc;
        if self.activity[var] > 1e100 {
            for a in &mut self.activity {
                *a *= 1e-100;
            }
            self.activity_inc *= 1e-100;
        }
    }

    fn decay_activities(&mut self) {
        self.activity_inc /= 0.95;
    }

    /// 1-UIP conflict analysis.  Returns the learned clause and the level to
    /// backjump to.
    fn analyze(&mut self, conflict: usize) -> (Vec<SatLit>, usize) {
        let current_level = self.current_level();
        let mut learned: Vec<SatLit> = Vec::new();
        let mut seen = vec![false; self.num_vars];
        let mut counter = 0usize;
        let mut clause_lits: Vec<SatLit> = self.clauses[conflict].clone();
        let mut trail_idx = self.trail.len();

        loop {
            for lit in &clause_lits {
                let var = lit.var;
                if seen[var] || self.level[var] == 0 {
                    continue;
                }
                seen[var] = true;
                self.bump(var);
                if self.level[var] == current_level {
                    counter += 1;
                } else {
                    learned.push(*lit);
                }
            }
            // Find the next literal on the trail (at the current level) that
            // participates in the conflict.
            let pivot = loop {
                trail_idx -= 1;
                let lit = self.trail[trail_idx];
                if seen[lit.var] {
                    break lit;
                }
            };
            counter -= 1;
            if counter == 0 {
                // `pivot` is the 1-UIP.
                learned.push(pivot.negated());
                break;
            }
            let reason = self.reason[pivot.var].expect("UIP search hit a decision early");
            clause_lits = self.clauses[reason]
                .iter()
                .copied()
                .filter(|l| l.var != pivot.var)
                .collect();
        }

        // Backjump level: second-highest level in the learned clause.
        let mut backjump = 0;
        for lit in &learned {
            if lit.var != learned.last().unwrap().var || learned.len() == 1 {
                // handled below
            }
            let lvl = self.level[lit.var];
            if lvl != current_level && lvl > backjump {
                backjump = lvl;
            }
        }
        (learned, backjump)
    }

    fn backtrack_to(&mut self, level: usize) {
        while self.current_level() > level {
            let start = self.trail_lim.pop().expect("trail limit underflow");
            while self.trail.len() > start {
                let lit = self.trail.pop().expect("trail underflow");
                self.saved_phase[lit.var] = lit.positive;
                self.assignment[lit.var] = None;
                self.reason[lit.var] = None;
            }
        }
        self.propagated = self.trail.len();
    }

    /// Picks the unassigned variable with the highest activity among
    /// `active` ones.  Restricting to active variables matters for
    /// incremental use: a long-lived solver accumulates variables from
    /// retired (compacted-away) queries, and a model need not assign
    /// variables no current clause mentions — deciding them anyway would
    /// make each check pay for every check before it.
    fn pick_branch_var(&self, active: &[bool]) -> Option<usize> {
        let mut best: Option<(usize, f64)> = None;
        for (v, is_active) in active.iter().enumerate().take(self.num_vars) {
            if *is_active && self.assignment[v].is_none() {
                let act = self.activity[v];
                match best {
                    Some((_, best_act)) if best_act >= act => {}
                    _ => best = Some((v, act)),
                }
            }
        }
        best.map(|(v, _)| v)
    }

    /// Runs the CDCL search with no assumptions.
    pub fn solve(&mut self) -> SatResult {
        self.solve_under_assumptions(&[])
    }

    /// Number of clauses currently in the database (original + learned).
    pub fn num_clauses(&self) -> usize {
        self.clauses.len()
    }

    /// Drops every clause satisfied by the level-0 assignment.
    ///
    /// Incremental sessions retire a goal by asserting the negation of its
    /// activation literal, which permanently satisfies the goal's guarded
    /// clauses (and every clause learned from them, which carries the
    /// negated guard too) — but the naive propagation loop would still scan
    /// them on every pass of every later check.  Compacting removes them;
    /// it is sound because a clause satisfied at level 0 is satisfied in
    /// every extension of the level-0 trail, so it can never constrain the
    /// search again.
    ///
    /// Removal invalidates the `reason` clause indices of level-0 trail
    /// entries, so those are cleared; conflict analysis never dereferences
    /// reasons of level-0 literals (it skips them outright), making the
    /// cleared state equivalent.
    pub fn compact(&mut self) {
        self.backtrack_to(0);
        if self.propagate().is_some() {
            // A level-0 conflict: the database is unsatisfiable outright.
            self.trivially_unsat = true;
            return;
        }
        let assignment = &self.assignment;
        self.clauses
            .retain(|c| !c.iter().any(|l| assignment[l.var] == Some(l.positive)));
        for i in 0..self.trail.len() {
            self.reason[self.trail[i].var] = None;
        }
    }

    /// Runs the CDCL search under `assumptions`.
    ///
    /// `Unsat` means the clause database has no model in which every
    /// assumption literal holds (the database alone may still be
    /// satisfiable).  The clause database — including clauses learned during
    /// this call — is retained, so subsequent calls resume with everything
    /// already derived.  Any search state from a previous call is undone by
    /// backtracking to decision level 0 first; level-0 facts (units and
    /// their propagations) are permanent.
    pub fn solve_under_assumptions(&mut self, assumptions: &[SatLit]) -> SatResult {
        if self.trivially_unsat {
            return SatResult::Unsat;
        }
        self.backtrack_to(0);
        // Variables this query can constrain: everything a current clause
        // or assumption mentions.  Clauses learned during the search only
        // resolve existing clauses, so they never activate a new variable.
        let mut active = vec![false; self.num_vars];
        for clause in &self.clauses {
            for l in clause {
                active[l.var] = true;
            }
        }
        for a in assumptions {
            active[a.var] = true;
        }
        let mut conflicts = 0usize;
        loop {
            if let Some(conflict) = self.propagate() {
                conflicts += 1;
                if conflicts > self.config.max_conflicts {
                    self.backtrack_to(0);
                    return SatResult::Unknown;
                }
                if self.current_level() == 0 {
                    return SatResult::Unsat;
                }
                let (learned, backjump) = self.analyze(conflict);
                self.backtrack_to(backjump);
                let assert_lit = *learned.last().expect("learned clause is never empty");
                self.clauses.push(learned);
                let ci = self.clauses.len() - 1;
                if self.value(assert_lit).is_none() {
                    self.enqueue(assert_lit, Some(ci));
                } else if self.value(assert_lit) == Some(false) {
                    // Can happen only at level 0 with a unit learned clause.
                    return SatResult::Unsat;
                }
                self.decay_activities();
            } else {
                // Re-establish assumptions (in order) before any search
                // decision; backjumps may have unassigned a suffix of them.
                let mut next_decision = None;
                for &a in assumptions {
                    match self.value(a) {
                        Some(true) => continue,
                        // The negation of an assumption is implied by the
                        // database together with the assumptions already
                        // placed (only assumptions are decided below this
                        // point), so the query is unsat under assumptions.
                        Some(false) => {
                            self.backtrack_to(0);
                            return SatResult::Unsat;
                        }
                        None => {
                            next_decision = Some(a);
                            break;
                        }
                    }
                }
                let decision = match next_decision {
                    Some(a) => a,
                    None => match self.pick_branch_var(&active) {
                        None => {
                            let model =
                                self.assignment.iter().map(|v| v.unwrap_or(false)).collect();
                            return SatResult::Sat(model);
                        }
                        Some(var) => SatLit::new(var, self.saved_phase[var]),
                    },
                };
                self.trail_lim.push(self.trail.len());
                self.enqueue(decision, None);
            }
        }
    }
}

/// Checks whether `assignment` satisfies all `clauses`; test helper.
pub fn assignment_satisfies(clauses: &[Vec<SatLit>], assignment: &[bool]) -> bool {
    clauses
        .iter()
        .all(|clause| clause.iter().any(|lit| assignment[lit.var] == lit.positive))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testing::Rng;

    fn lit(v: usize, pos: bool) -> SatLit {
        SatLit::new(v, pos)
    }

    fn solve_clauses(num_vars: usize, clauses: &[Vec<SatLit>]) -> SatResult {
        let mut solver = SatSolver::new(num_vars, SatConfig::default());
        for c in clauses {
            solver.add_clause(c.clone());
        }
        solver.solve()
    }

    #[test]
    fn empty_formula_is_sat() {
        assert!(matches!(solve_clauses(3, &[]), SatResult::Sat(_)));
    }

    #[test]
    fn unit_clauses_propagate() {
        let clauses = vec![vec![lit(0, true)], vec![lit(1, false)]];
        match solve_clauses(2, &clauses) {
            SatResult::Sat(m) => {
                assert!(m[0]);
                assert!(!m[1]);
            }
            other => panic!("expected sat, got {other:?}"),
        }
    }

    #[test]
    fn contradictory_units_are_unsat() {
        let clauses = vec![vec![lit(0, true)], vec![lit(0, false)]];
        assert_eq!(solve_clauses(1, &clauses), SatResult::Unsat);
    }

    #[test]
    fn simple_implication_chain() {
        // (¬a ∨ b) ∧ (¬b ∨ c) ∧ a ∧ ¬c is unsat.
        let clauses = vec![
            vec![lit(0, false), lit(1, true)],
            vec![lit(1, false), lit(2, true)],
            vec![lit(0, true)],
            vec![lit(2, false)],
        ];
        assert_eq!(solve_clauses(3, &clauses), SatResult::Unsat);
    }

    #[test]
    fn satisfiable_3sat_instance() {
        let clauses = vec![
            vec![lit(0, true), lit(1, true), lit(2, true)],
            vec![lit(0, false), lit(1, false)],
            vec![lit(1, true), lit(2, false)],
            vec![lit(0, true), lit(2, true)],
        ];
        match solve_clauses(3, &clauses) {
            SatResult::Sat(m) => assert!(assignment_satisfies(&clauses, &m)),
            other => panic!("expected sat, got {other:?}"),
        }
    }

    #[test]
    fn pigeonhole_two_pigeons_one_hole_is_unsat() {
        // p0 and p1 each must be placed in the single hole, but not both.
        let clauses = vec![
            vec![lit(0, true)],
            vec![lit(1, true)],
            vec![lit(0, false), lit(1, false)],
        ];
        assert_eq!(solve_clauses(2, &clauses), SatResult::Unsat);
    }

    #[test]
    fn pigeonhole_three_pigeons_two_holes_is_unsat() {
        // Variables x_{p,h} = p*2 + h, p in 0..3, h in 0..2.
        let var = |p: usize, h: usize| p * 2 + h;
        let mut clauses = Vec::new();
        for p in 0..3 {
            clauses.push(vec![lit(var(p, 0), true), lit(var(p, 1), true)]);
        }
        for h in 0..2 {
            for p1 in 0..3 {
                for p2 in (p1 + 1)..3 {
                    clauses.push(vec![lit(var(p1, h), false), lit(var(p2, h), false)]);
                }
            }
        }
        assert_eq!(solve_clauses(6, &clauses), SatResult::Unsat);
    }

    #[test]
    fn tautological_clauses_are_ignored() {
        let clauses = vec![vec![lit(0, true), lit(0, false)], vec![lit(1, true)]];
        match solve_clauses(2, &clauses) {
            SatResult::Sat(m) => assert!(m[1]),
            other => panic!("expected sat, got {other:?}"),
        }
    }

    #[test]
    fn empty_clause_is_unsat() {
        let mut solver = SatSolver::new(1, SatConfig::default());
        solver.add_clause(vec![]);
        assert_eq!(solver.solve(), SatResult::Unsat);
    }

    #[test]
    fn duplicate_literals_are_deduplicated() {
        let clauses = vec![
            vec![lit(0, true), lit(0, true)],
            vec![lit(0, false), lit(1, true)],
        ];
        match solve_clauses(2, &clauses) {
            SatResult::Sat(m) => assert!(assignment_satisfies(&clauses, &m)),
            other => panic!("expected sat, got {other:?}"),
        }
    }

    /// Assumption-based solving must keep the clause database usable across
    /// calls: unsat under one assumption, sat under the other, and learned
    /// state must not corrupt later queries.
    #[test]
    fn assumptions_flip_satisfiability_without_corrupting_state() {
        let mut solver = SatSolver::new(0, SatConfig::default());
        let g1 = solver.new_var();
        let g2 = solver.new_var();
        let x = solver.new_var();
        // g1 ⟹ x, g2 ⟹ ¬x.
        solver.add_clause(vec![lit(g1, false), lit(x, true)]);
        solver.add_clause(vec![lit(g2, false), lit(x, false)]);
        match solver.solve_under_assumptions(&[lit(g1, true)]) {
            SatResult::Sat(m) => assert!(m[x]),
            other => panic!("expected sat under g1, got {other:?}"),
        }
        match solver.solve_under_assumptions(&[lit(g2, true)]) {
            SatResult::Sat(m) => assert!(!m[x]),
            other => panic!("expected sat under g2, got {other:?}"),
        }
        assert_eq!(
            solver.solve_under_assumptions(&[lit(g1, true), lit(g2, true)]),
            SatResult::Unsat,
            "both guards force contradictory values of x"
        );
        // The database itself is still satisfiable.
        assert!(matches!(solver.solve(), SatResult::Sat(_)));
    }

    /// Compaction must drop clauses satisfied at level 0 while preserving
    /// the level-0 facts they established.
    #[test]
    fn compact_drops_satisfied_clauses_but_keeps_facts() {
        let mut solver = SatSolver::new(0, SatConfig::default());
        let g = solver.new_var();
        let a = solver.new_var();
        let b = solver.new_var();
        // Guarded goal clauses: g ⟹ (a ∨ b), g ⟹ ¬a; plus a real fact b ⟹ a...
        solver.add_clause(vec![lit(g, false), lit(a, true), lit(b, true)]);
        solver.add_clause(vec![lit(g, false), lit(a, false)]);
        // An unguarded clause that stays live: a ∨ b.
        solver.add_clause(vec![lit(a, true), lit(b, true)]);
        assert!(matches!(
            solver.solve_under_assumptions(&[lit(g, true)]),
            SatResult::Sat(_)
        ));
        // Retire the guard and compact: both guarded clauses (satisfied by
        // ¬g) disappear, the live clause stays.
        solver.add_clause(vec![lit(g, false)]);
        solver.compact();
        assert_eq!(solver.num_clauses(), 1);
        // The retired fact ¬g persists in the level-0 assignment:
        // assuming g now is immediately unsat.
        assert_eq!(
            solver.solve_under_assumptions(&[lit(g, true)]),
            SatResult::Unsat
        );
        // And the live clause still constrains the search.
        match solver.solve() {
            SatResult::Sat(m) => assert!(m[a] || m[b]),
            other => panic!("expected sat, got {other:?}"),
        }
    }

    /// Brute-force satisfiability for cross-checking on small instances.
    fn brute_force_sat(num_vars: usize, clauses: &[Vec<SatLit>]) -> bool {
        for bits in 0..(1u32 << num_vars) {
            let assignment: Vec<bool> = (0..num_vars).map(|v| bits & (1 << v) != 0).collect();
            if assignment_satisfies(clauses, &assignment) {
                return true;
            }
        }
        false
    }

    #[test]
    fn agrees_with_brute_force_on_random_instances() {
        let mut rng = Rng::new(0x5A7_5EED);
        for case in 0..128 {
            let num_clauses = rng.int_in(1, 11) as usize;
            let clauses: Vec<Vec<SatLit>> = (0..num_clauses)
                .map(|_| {
                    let num_lits = rng.int_in(1, 3) as usize;
                    (0..num_lits)
                        .map(|_| lit(rng.below(6) as usize, rng.flip()))
                        .collect()
                })
                .collect();
            let expected = brute_force_sat(6, &clauses);
            match solve_clauses(6, &clauses) {
                SatResult::Sat(m) => {
                    assert!(assignment_satisfies(&clauses, &m), "case {case}");
                    assert!(expected, "case {case}");
                }
                SatResult::Unsat => assert!(!expected, "case {case}"),
                SatResult::Unknown => {}
            }
        }
    }
}
