//! Test support: a brute-force evaluator for refinement formulas over small
//! finite domains.
//!
//! The evaluator is deliberately simple and independent of the solver
//! pipeline so that property-based tests can cross-check the SMT solver (and
//! downstream components such as the Horn-constraint solver) against an
//! obviously-correct reference semantics.

use flux_logic::{BinOp, Constant, Expr, Name, Sort, SortCtx, UnOp};
use std::collections::BTreeMap;

/// A ground value of the refinement logic.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Value {
    /// An integer.
    Int(i128),
    /// A boolean.
    Bool(bool),
}

impl Value {
    fn as_int(self) -> Option<i128> {
        match self {
            Value::Int(i) => Some(i),
            Value::Bool(_) => None,
        }
    }

    fn as_bool(self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(b),
            Value::Int(_) => None,
        }
    }
}

/// An assignment of values to free variables.
pub type Env = BTreeMap<Name, Value>;

/// Evaluates `expr` under `env`.
///
/// Returns `None` when the expression mentions an unbound variable, applies
/// an uninterpreted function, divides by zero, or is otherwise outside the
/// fragment the evaluator covers.  Quantifiers are evaluated over
/// `quant_domain` (a small finite set of integers), which makes the
/// evaluator an *approximation* for quantified formulas — tests only use it
/// on quantifier-free formulas.
pub fn eval(expr: &Expr, env: &Env, quant_domain: &[i128]) -> Option<Value> {
    match expr {
        Expr::Var(name) => env.get(name).copied(),
        Expr::Const(Constant::Int(i)) => Some(Value::Int(*i)),
        Expr::Const(Constant::Bool(b)) => Some(Value::Bool(*b)),
        Expr::Const(Constant::Real(_)) => None,
        Expr::UnOp(UnOp::Not, e) => Some(Value::Bool(!eval(e, env, quant_domain)?.as_bool()?)),
        Expr::UnOp(UnOp::Neg, e) => Some(Value::Int(-eval(e, env, quant_domain)?.as_int()?)),
        Expr::BinOp(op, lhs, rhs) => {
            let l = eval(lhs, env, quant_domain)?;
            let r = eval(rhs, env, quant_domain)?;
            match op {
                BinOp::Add => Some(Value::Int(l.as_int()? + r.as_int()?)),
                BinOp::Sub => Some(Value::Int(l.as_int()? - r.as_int()?)),
                BinOp::Mul => Some(Value::Int(l.as_int()? * r.as_int()?)),
                BinOp::Div => {
                    let d = r.as_int()?;
                    if d == 0 {
                        None
                    } else {
                        Some(Value::Int(l.as_int()?.div_euclid(d)))
                    }
                }
                BinOp::Mod => {
                    let d = r.as_int()?;
                    if d == 0 {
                        None
                    } else {
                        Some(Value::Int(l.as_int()?.rem_euclid(d)))
                    }
                }
                BinOp::Lt => Some(Value::Bool(l.as_int()? < r.as_int()?)),
                BinOp::Le => Some(Value::Bool(l.as_int()? <= r.as_int()?)),
                BinOp::Gt => Some(Value::Bool(l.as_int()? > r.as_int()?)),
                BinOp::Ge => Some(Value::Bool(l.as_int()? >= r.as_int()?)),
                BinOp::Eq => Some(Value::Bool(l == r)),
                BinOp::Ne => Some(Value::Bool(l != r)),
                BinOp::And => Some(Value::Bool(l.as_bool()? && r.as_bool()?)),
                BinOp::Or => Some(Value::Bool(l.as_bool()? || r.as_bool()?)),
                BinOp::Imp => Some(Value::Bool(!l.as_bool()? || r.as_bool()?)),
                BinOp::Iff => Some(Value::Bool(l.as_bool()? == r.as_bool()?)),
            }
        }
        Expr::Ite(c, t, e) => {
            if eval(c, env, quant_domain)?.as_bool()? {
                eval(t, env, quant_domain)
            } else {
                eval(e, env, quant_domain)
            }
        }
        Expr::App(..) => None,
        Expr::Forall(binders, body) => eval_quant(binders, body, env, quant_domain, true),
        Expr::Exists(binders, body) => eval_quant(binders, body, env, quant_domain, false),
    }
}

fn eval_quant(
    binders: &[(Name, Sort)],
    body: &Expr,
    env: &Env,
    quant_domain: &[i128],
    universal: bool,
) -> Option<Value> {
    // Enumerate all assignments of domain values to the binders.
    fn go(
        binders: &[(Name, Sort)],
        idx: usize,
        env: &mut Env,
        body: &Expr,
        domain: &[i128],
        universal: bool,
    ) -> Option<bool> {
        if idx == binders.len() {
            return eval(body, env, domain)?.as_bool();
        }
        let (name, sort) = binders[idx];
        match sort {
            Sort::Int => {
                for &value in domain {
                    let prev = env.insert(name, Value::Int(value));
                    let result = go(binders, idx + 1, env, body, domain, universal)?;
                    match prev {
                        Some(p) => {
                            env.insert(name, p);
                        }
                        None => {
                            env.remove(&name);
                        }
                    }
                    if universal && !result {
                        return Some(false);
                    }
                    if !universal && result {
                        return Some(true);
                    }
                }
                Some(universal)
            }
            Sort::Bool => {
                for value in [false, true] {
                    let prev = env.insert(name, Value::Bool(value));
                    let result = go(binders, idx + 1, env, body, domain, universal)?;
                    match prev {
                        Some(p) => {
                            env.insert(name, p);
                        }
                        None => {
                            env.remove(&name);
                        }
                    }
                    if universal && !result {
                        return Some(false);
                    }
                    if !universal && result {
                        return Some(true);
                    }
                }
                Some(universal)
            }
            _ => None,
        }
    }
    let mut env = env.clone();
    go(binders, 0, &mut env, body, quant_domain, universal).map(Value::Bool)
}

/// Enumerates all environments assigning each variable in `ctx` a value from
/// `domain` (integers) or `{true, false}` (booleans).  Variables of other
/// sorts make the enumeration empty.
pub fn enumerate_envs(ctx: &SortCtx, domain: &[i128]) -> Vec<Env> {
    let mut envs = vec![Env::new()];
    for (name, sort) in ctx.iter() {
        let mut next = Vec::new();
        for env in &envs {
            match sort {
                Sort::Int => {
                    for &value in domain {
                        let mut e = env.clone();
                        e.insert(name, Value::Int(value));
                        next.push(e);
                    }
                }
                Sort::Bool => {
                    for value in [false, true] {
                        let mut e = env.clone();
                        e.insert(name, Value::Bool(value));
                        next.push(e);
                    }
                }
                _ => return Vec::new(),
            }
        }
        envs = next;
    }
    envs
}

/// Brute-force satisfiability over a finite integer domain.  Returns `None`
/// if the formula falls outside the evaluator's fragment.
pub fn brute_force_sat(ctx: &SortCtx, expr: &Expr, domain: &[i128]) -> Option<bool> {
    let envs = enumerate_envs(ctx, domain);
    if envs.is_empty() && !ctx.is_empty() {
        return None;
    }
    let mut any_undefined = false;
    for env in envs {
        match eval(expr, &env, domain) {
            Some(Value::Bool(true)) => return Some(true),
            Some(Value::Bool(false)) => {}
            _ => any_undefined = true,
        }
    }
    if any_undefined {
        None
    } else {
        Some(false)
    }
}

/// A tiny deterministic PRNG (xorshift64*) for randomised tests.
///
/// The build environment has no access to crates.io, so the randomised
/// differential tests in this workspace use this instead of proptest.  The
/// sequence depends only on the seed, which keeps every failure reproducible
/// by case index.
pub struct Rng(u64);

impl Rng {
    /// Creates a generator from a nonzero seed.
    pub fn new(seed: u64) -> Rng {
        Rng(seed.max(1))
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform value in `0..bound` (`bound` must be nonzero).
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }

    /// Uniform value in the inclusive range `lo..=hi`.
    pub fn int_in(&mut self, lo: i128, hi: i128) -> i128 {
        lo + self.below((hi - lo + 1) as u64) as i128
    }

    /// Uniform boolean.
    pub fn flip(&mut self) -> bool {
        self.below(2) == 1
    }
}

/// A kind of fault the deterministic fault-injection harness can produce at
/// an instrumented choke point.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Fault {
    /// The instrumented solver gives up (its existing `Unknown` path).
    Unknown,
    /// The instrumented site panics (exercises panic isolation).
    Panic,
    /// The instrumented site sleeps briefly while holding whatever locks it
    /// holds (exercises lock contention and watchdogs).
    Delay,
}

/// A deterministic fault plan: a seed plus per-site probabilities in
/// permille (0–1000).  Installed process-globally by [`install_fault_plan`];
/// the instrumented sites draw from a shared [`Rng`], so a given seed
/// reproduces the same fault sequence for a deterministic workload.
///
/// Instrumented sites as of PR 9: `sat`, `simplex`, `session`, `worker`
/// and `cnf-cache` inside the solving stack, plus `daemon` (worker
/// dispatch in `fluxd`) and `queue` (request admission in `fluxd`).
#[derive(Clone, Copy, Debug)]
pub struct FaultPlan {
    /// RNG seed (shifted to nonzero internally).
    pub seed: u64,
    /// Probability (permille) that a solver choke point returns `Unknown`.
    pub unknown_permille: u16,
    /// Probability (permille) that a worker choke point panics.
    pub panic_permille: u16,
    /// Probability (permille) that a lock/cache choke point delays.
    pub delay_permille: u16,
    /// How long a [`Fault::Delay`] sleeps, in milliseconds (`0` is allowed
    /// and means "yield without sleeping").  Sites read the duration back
    /// through [`fault_delay`] when they draw a delay.
    pub delay_ms: u64,
}

impl Default for FaultPlan {
    /// A plan that never fires (all permilles zero) with the historical
    /// 1 ms delay, so tests can spell only the bands they care about.
    fn default() -> FaultPlan {
        FaultPlan {
            seed: 1,
            unknown_permille: 0,
            panic_permille: 0,
            delay_permille: 0,
            delay_ms: 1,
        }
    }
}

struct FaultState {
    rng: Rng,
    plan: FaultPlan,
}

/// Fast-path flag: instrumented sites check this single atomic before
/// touching the mutex, so the harness costs one relaxed load when inactive.
static FAULTS_ACTIVE: std::sync::atomic::AtomicBool = std::sync::atomic::AtomicBool::new(false);

fn fault_state() -> &'static std::sync::Mutex<Option<FaultState>> {
    static STATE: std::sync::OnceLock<std::sync::Mutex<Option<FaultState>>> =
        std::sync::OnceLock::new();
    STATE.get_or_init(|| std::sync::Mutex::new(None))
}

/// Installs `plan` process-globally; every instrumented choke point starts
/// drawing faults from it.  Call [`clear_fault_plan`] when done — tests
/// should treat the plan like a lock (install, run, clear) and serialize
/// themselves around it.
pub fn install_fault_plan(plan: FaultPlan) {
    *flux_logic::lock_recover(fault_state()) = Some(FaultState {
        rng: Rng::new(plan.seed),
        plan,
    });
    FAULTS_ACTIVE.store(true, std::sync::atomic::Ordering::SeqCst);
}

/// Deactivates fault injection.
pub fn clear_fault_plan() {
    FAULTS_ACTIVE.store(false, std::sync::atomic::Ordering::SeqCst);
    *flux_logic::lock_recover(fault_state()) = None;
}

/// Draws a fault for the instrumented choke point `site`, or `None` (always
/// `None` when no plan is installed — the production fast path).  A
/// returned [`Fault::Panic`] is advisory: the site decides whether it can
/// honour it (only sites wrapped in panic isolation do).
pub fn inject_fault(site: &str) -> Option<Fault> {
    if !FAULTS_ACTIVE.load(std::sync::atomic::Ordering::Relaxed) {
        return None;
    }
    let mut guard = flux_logic::lock_recover(fault_state());
    let state = guard.as_mut()?;
    let draw = state.rng.below(1000) as u16;
    let plan = state.plan;
    // Partition [0, 1000) into disjoint bands per fault kind so one draw
    // decides the site's fate; sites ignore kinds they cannot honour.
    let _ = site;
    if draw < plan.unknown_permille {
        Some(Fault::Unknown)
    } else if draw < plan.unknown_permille + plan.panic_permille {
        Some(Fault::Panic)
    } else if draw < plan.unknown_permille + plan.panic_permille + plan.delay_permille {
        Some(Fault::Delay)
    } else {
        None
    }
}

/// The sleep duration a [`Fault::Delay`] asks for: the installed plan's
/// `delay_ms`, or the historical 1 ms when no plan is installed (a site
/// can only reach this between a positive [`inject_fault`] draw and the
/// plan being cleared by another thread).
pub fn fault_delay() -> std::time::Duration {
    let ms = flux_logic::lock_recover(fault_state())
        .as_ref()
        .map_or(1, |state| state.plan.delay_ms);
    std::time::Duration::from_millis(ms)
}

/// Runs `work` on a separate thread and panics if it does not finish within
/// `timeout_secs` (a hung worker leaks, but the test fails in bounded time
/// instead of hanging the suite).  Returns `work`'s result; a panic inside
/// `work` is propagated.
pub fn with_watchdog<T, F>(what: &str, timeout_secs: u64, work: F) -> T
where
    T: Send + 'static,
    F: FnOnce() -> T + Send + 'static,
{
    let (tx, rx) = std::sync::mpsc::channel();
    let handle = std::thread::spawn(move || {
        let out = work();
        tx.send(()).ok();
        out
    });
    match rx.recv_timeout(std::time::Duration::from_secs(timeout_secs)) {
        Ok(()) => handle
            .join()
            .unwrap_or_else(|_| panic!("{what}: watchdogged worker panicked after completing")),
        Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => {
            // The worker died without reporting: propagate its panic.
            match handle.join() {
                Ok(_) => panic!("{what}: worker disconnected without finishing"),
                Err(e) => std::panic::resume_unwind(e),
            }
        }
        Err(std::sync::mpsc::RecvTimeoutError::Timeout) => {
            panic!(
                "{what}: watchdog timeout — exceeded {timeout_secs}s, hang suspected \
                 (the site/request context in this message is the hang's address)"
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(s: &str) -> Expr {
        Expr::var(Name::intern(s))
    }

    fn env(pairs: &[(&str, Value)]) -> Env {
        pairs
            .iter()
            .map(|(n, val)| (Name::intern(n), *val))
            .collect()
    }

    #[test]
    fn evaluates_arithmetic_and_comparisons() {
        let e = Expr::lt(v("x") + Expr::int(1), Expr::int(5));
        let result = eval(&e, &env(&[("x", Value::Int(3))]), &[]);
        assert_eq!(result, Some(Value::Bool(true)));
        let result = eval(&e, &env(&[("x", Value::Int(4))]), &[]);
        assert_eq!(result, Some(Value::Bool(false)));
    }

    #[test]
    fn unbound_variable_is_none() {
        assert_eq!(eval(&v("missing"), &Env::new(), &[]), None);
    }

    #[test]
    fn division_by_zero_is_none() {
        let e = Expr::binop(BinOp::Div, Expr::int(1), Expr::int(0));
        assert_eq!(eval(&e, &Env::new(), &[]), None);
    }

    #[test]
    fn quantifier_over_small_domain() {
        let i = Name::intern("i");
        let all_nonneg = Expr::forall(vec![(i, Sort::Int)], Expr::ge(Expr::var(i), Expr::int(0)));
        assert_eq!(
            eval(&all_nonneg, &Env::new(), &[0, 1, 2]),
            Some(Value::Bool(true))
        );
        assert_eq!(
            eval(&all_nonneg, &Env::new(), &[-1, 0, 1]),
            Some(Value::Bool(false))
        );
    }

    #[test]
    fn existential_over_small_domain() {
        let i = Name::intern("i");
        let some_big = Expr::exists(vec![(i, Sort::Int)], Expr::gt(Expr::var(i), Expr::int(1)));
        assert_eq!(
            eval(&some_big, &Env::new(), &[0, 1]),
            Some(Value::Bool(false))
        );
        assert_eq!(
            eval(&some_big, &Env::new(), &[0, 2]),
            Some(Value::Bool(true))
        );
    }

    #[test]
    fn enumerate_envs_counts() {
        let mut ctx = SortCtx::new();
        ctx.push(Name::intern("x"), Sort::Int);
        ctx.push(Name::intern("b"), Sort::Bool);
        let envs = enumerate_envs(&ctx, &[0, 1, 2]);
        assert_eq!(envs.len(), 6);
    }

    #[test]
    fn brute_force_detects_unsat() {
        let mut ctx = SortCtx::new();
        ctx.push(Name::intern("x"), Sort::Int);
        let e = Expr::and(
            Expr::lt(v("x"), Expr::int(0)),
            Expr::gt(v("x"), Expr::int(0)),
        );
        assert_eq!(brute_force_sat(&ctx, &e, &[-2, -1, 0, 1, 2]), Some(false));
    }
}
