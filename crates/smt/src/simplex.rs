//! A decision procedure for conjunctions of linear integer constraints.
//!
//! The implementation follows the general simplex algorithm of Dutertre and
//! de Moura ("A fast linear-arithmetic solver for DPLL(T)", CAV 2006) in its
//! *incremental* form: [`IncrementalSimplex`] owns a tableau that persists
//! for the lifetime of a solver session.  Each distinct linear atom
//! registers its constraint once — the variable part becomes a slack
//! variable with a permanent row — and the DPLL(T) loop then merely asserts
//! and retracts *bounds* on those variables along a [`IncrementalSimplex::push`] /
//! [`IncrementalSimplex::pop`] trail.  Pivoting adapts the basis to the
//! asserted bounds, and because the basis survives retraction, a later
//! check over a similar bound set starts from an almost-feasible state
//! instead of re-deriving everything from zero.
//!
//! Rational feasibility is refined to *integer* feasibility by
//! branch-and-bound on variables with fractional values, implemented as
//! push/assert/pop on the same tableau.  Branch-and-bound is bounded; if the
//! bound is exhausted the result is [`LiaResult::Unknown`], which callers
//! must treat as "possibly satisfiable" (for the verifier this means
//! "cannot prove valid", never "unsoundly valid").
//!
//! [`check_lia`] and [`check_rational`] remain as one-shot wrappers (used by
//! tests and by [`model_satisfies`]-style callers): they build a fresh
//! tableau, assert every constraint and run a single check, so the one-shot
//! and incremental paths are literally the same decision procedure.

use crate::linear::LinConstraint;
use crate::rational::Rational;
use flux_logic::Name;
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// Result of a linear integer arithmetic feasibility check.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LiaResult {
    /// The constraints are satisfiable; the map is an integer model for the
    /// variables appearing in the constraints.
    Feasible(BTreeMap<Name, i128>),
    /// The constraints are unsatisfiable; the vector contains the tags of a
    /// subset of asserted constraints that is already unsatisfiable (for the
    /// one-shot wrappers, indices into the input slice).
    Infeasible(Vec<usize>),
    /// The solver gave up (pivot or branch-and-bound limit exhausted).
    Unknown,
}

/// Configuration limits for the LIA solver.
#[derive(Clone, Copy, Debug)]
pub struct LiaConfig {
    /// Maximum number of branch-and-bound nodes explored per check.
    pub max_branch_nodes: usize,
    /// Maximum number of pivots per simplex run.
    pub max_pivots: usize,
    /// Use the historical full-row scans for bound slides, pivot value
    /// updates and violated-row selection instead of the column occurrence
    /// lists and the suspect set.  Kept for A/B equivalence testing; the
    /// occurrence-list path is the default.
    pub row_scan: bool,
    /// Resource limits: the pivot/branch-node caps here *tighten* the
    /// `max_pivots`/`max_branch_nodes` bounds above, and the deadline is
    /// checked amortized inside the pivot loop and per branch node.
    /// Populated from the owning [`SmtConfig`](crate::SmtConfig) at solver
    /// construction; tripping a limit yields [`LiaResult::Unknown`].
    pub budget: crate::ResourceBudget,
}

impl Default for LiaConfig {
    fn default() -> Self {
        LiaConfig {
            max_branch_nodes: 200,
            max_pivots: 10_000,
            row_scan: crate::legacy_toggles(),
            budget: crate::ResourceBudget::UNLIMITED,
        }
    }
}

/// Checks feasibility of the conjunction of `constraints` over the integers.
///
/// One-shot wrapper over [`IncrementalSimplex`]: all variables are assumed
/// to range over the integers, and infeasible cores are reported as indices
/// into the input slice.
pub fn check_lia(constraints: &[LinConstraint], config: &LiaConfig) -> LiaResult {
    let mut simplex = IncrementalSimplex::new(*config);
    for (i, c) in constraints.iter().enumerate() {
        let slot = simplex.register(c);
        if let Err(core) = simplex.assert_constraint(slot, true, i) {
            return LiaResult::Infeasible(core);
        }
    }
    simplex.check_integer()
}

/// Checks rational feasibility only (no integrality); used by tests and by
/// callers that want the relaxation.
pub fn check_rational(constraints: &[LinConstraint], config: &LiaConfig) -> LiaResult {
    let mut simplex = IncrementalSimplex::new(*config);
    for (i, c) in constraints.iter().enumerate() {
        let slot = simplex.register(c);
        if let Err(core) = simplex.assert_constraint(slot, true, i) {
            return LiaResult::Infeasible(core);
        }
    }
    match simplex.solve_rational() {
        RationalResult::Feasible => {
            let rounded = simplex
                .named_values()
                .map(|(n, v)| (n, v.floor()))
                .collect::<BTreeMap<_, _>>();
            LiaResult::Feasible(rounded)
        }
        RationalResult::Infeasible(core) => LiaResult::Infeasible(core),
        RationalResult::PivotLimit => LiaResult::Unknown,
    }
}

/// Internal variable identifier: original variables and slack variables
/// share one id space.
type VarId = usize;

/// Handle of a registered constraint, returned by
/// [`IncrementalSimplex::register`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SlotId(usize);

/// The tag attached to an asserted bound: the caller's identifier for
/// external assertions (used to build infeasible cores), or `Internal` for
/// branch-and-bound bounds, which never appear in cores.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum BoundTag {
    External(usize),
    Internal,
}

#[derive(Clone, Copy, Debug)]
struct Bound {
    value: Rational,
    tag: BoundTag,
}

/// Registration-ready form of a constraint: the analysis `register`
/// performs (term extraction, bound derivation), precomputed once so
/// callers that register the same atom into many tableaux — one per
/// session — pay the constraint-shape analysis a single time process-wide.
pub struct Prepared {
    kind: PreparedKind,
}

enum PreparedKind {
    /// `constant ≤ 0`.
    Constant(Rational),
    /// Single-term constraint: a direct bound on `name`.
    SingleVar {
        name: Name,
        pos_upper: bool,
        pos: Rational,
        neg: Rational,
    },
    /// General constraint: a slack row over `terms`.
    Row {
        terms: Vec<(Name, Rational)>,
        pos: Rational,
        neg: Rational,
    },
}

impl Prepared {
    /// Analyses `constraint` (the atom `lhs ≤ 0`) into registration-ready
    /// form.
    pub fn of(constraint: &LinConstraint) -> Prepared {
        let constant = constraint.lhs.constant_part();
        let terms: Vec<(Name, Rational)> = constraint.lhs.terms().collect();
        let kind = match terms.as_slice() {
            [] => PreparedKind::Constant(constant),
            [(name, coeff)] => PreparedKind::SingleVar {
                name: *name,
                pos_upper: coeff.is_positive(),
                pos: -constant / *coeff,
                neg: (Rational::ONE - constant) / *coeff,
            },
            _ => PreparedKind::Row {
                terms,
                pos: -constant,
                neg: Rational::ONE - constant,
            },
        };
        Prepared { kind }
    }

    /// The variables the constraint mentions.
    pub fn vars(&self) -> impl Iterator<Item = Name> + '_ {
        let names: Vec<Name> = match &self.kind {
            PreparedKind::Constant(_) => Vec::new(),
            PreparedKind::SingleVar { name, .. } => vec![*name],
            PreparedKind::Row { terms, .. } => terms.iter().map(|(n, _)| *n).collect(),
        };
        names.into_iter()
    }
}

/// How a registered constraint maps onto tableau bounds.
#[derive(Clone, Copy, Debug)]
enum Slot {
    /// A constraint with no variables: `constant ≤ 0`.
    Constant(Rational),
    /// Bounds on `var` (an original variable for single-term constraints,
    /// a slack variable otherwise).  Asserting the positive phase imposes
    /// `var ≤ pos` when `pos_upper` (else `var ≥ pos`); the negated phase
    /// (`e ≥ 1` over the integers) imposes the complementary bound `neg`.
    Bounded {
        var: VarId,
        pos_upper: bool,
        pos: Rational,
        neg: Rational,
    },
}

/// One undone bound change on the assertion trail.
struct UndoBound {
    var: VarId,
    is_upper: bool,
    old: Option<Bound>,
}

enum RationalResult {
    Feasible,
    Infeasible(Vec<usize>),
    PivotLimit,
}

/// A persistent, backtrackable simplex tableau (see the module docs).
pub struct IncrementalSimplex {
    config: LiaConfig,
    /// Tableau variable of each original variable name.
    var_ids: HashMap<Name, VarId>,
    /// Name of each variable; `None` for slack variables.
    names: Vec<Option<Name>>,
    upper: Vec<Option<Bound>>,
    lower: Vec<Option<Bound>>,
    /// Current assignment; kept consistent with the rows at all times.
    value: Vec<Rational>,
    /// For each basic variable, its row: basic = Σ coeff · nonbasic.
    rows: HashMap<VarId, BTreeMap<VarId, Rational>>,
    /// Slack variable of each registered variable part (rows are shared
    /// between constraints that differ only in their constant).
    row_ids: HashMap<Vec<(Name, Rational)>, VarId>,
    /// Registered constraints, deduplicated.
    slots: Vec<Slot>,
    slot_ids: HashMap<LinConstraint, SlotId>,
    /// Undo trail of bound changes, delimited by `scopes`.
    trail: Vec<UndoBound>,
    scopes: Vec<usize>,
    /// Column occurrence lists: `occs[v]` is the set of basic variables
    /// whose row contains `v`.  Kept exactly in sync with `rows`, so bound
    /// slides and pivot updates touch only the rows that mention the moved
    /// variable instead of scanning the whole (session-lifetime) tableau.
    occs: Vec<BTreeSet<VarId>>,
    /// Basic variables that may violate one of their bounds.  Invariant:
    /// every actually-violated basic variable is in this set — values only
    /// change in `update_nonbasic`/`pivot_and_update` and bounds only
    /// tighten in `assert_bound` (a `pop` restores strictly looser bounds),
    /// and each of those sites inserts the affected basics.  The minimum
    /// violated suspect therefore equals Bland's minimum violated basic.
    suspect: BTreeSet<VarId>,
    /// Cumulative pivot count (never reset; callers read deltas).
    pivots: u64,
    /// Cumulative count of rows visited by column scans (bound slides,
    /// pivot updates, violated-row selection); the observable the
    /// occurrence lists exist to shrink.  Never reset; callers read deltas.
    col_scans: u64,
}

impl IncrementalSimplex {
    /// Creates an empty tableau.
    pub fn new(config: LiaConfig) -> IncrementalSimplex {
        IncrementalSimplex {
            config,
            var_ids: HashMap::new(),
            names: Vec::new(),
            upper: Vec::new(),
            lower: Vec::new(),
            value: Vec::new(),
            rows: HashMap::new(),
            row_ids: HashMap::new(),
            slots: Vec::new(),
            slot_ids: HashMap::new(),
            trail: Vec::new(),
            scopes: Vec::new(),
            occs: Vec::new(),
            suspect: BTreeSet::new(),
            pivots: 0,
            col_scans: 0,
        }
    }

    /// Total number of pivots performed since creation.  Monotone; callers
    /// attribute work to a check by differencing.
    pub fn pivots(&self) -> u64 {
        self.pivots
    }

    /// Total number of rows visited by column scans since creation (see the
    /// `col_scans` field).  Monotone; callers attribute work to a check by
    /// differencing.
    pub fn col_scans(&self) -> u64 {
        self.col_scans
    }

    /// Number of tableau variables (original + slack); exposed for tests.
    pub fn num_vars(&self) -> usize {
        self.names.len()
    }

    fn new_var(&mut self, name: Option<Name>) -> VarId {
        let id = self.names.len();
        self.names.push(name);
        self.upper.push(None);
        self.lower.push(None);
        self.value.push(Rational::ZERO);
        self.occs.push(BTreeSet::new());
        id
    }

    fn var_of(&mut self, name: Name) -> VarId {
        if let Some(&id) = self.var_ids.get(&name) {
            return id;
        }
        let id = self.new_var(Some(name));
        self.var_ids.insert(name, id);
        id
    }

    /// Registers `constraint` (the atom `lhs ≤ 0`), returning a handle for
    /// later assertions.  Registration is permanent — the constraint's row
    /// stays in the tableau for the lifetime of the solver — and
    /// deduplicated, so registering the same constraint twice is free.
    pub fn register(&mut self, constraint: &LinConstraint) -> SlotId {
        if let Some(&slot) = self.slot_ids.get(constraint) {
            return slot;
        }
        let prepared = Prepared::of(constraint);
        let id = self.register_inner(&prepared, true);
        self.slot_ids.insert(constraint.clone(), id);
        id
    }

    /// Registers a [`Prepared`] constraint, skipping every hashing step of
    /// [`IncrementalSimplex::register`]: no constraint-level dedup (callers
    /// using this entry point dedup by atom id themselves) and no row
    /// sharing between constraints with equal variable parts (each gets its
    /// own slack; the few extra rows cost far less than re-hashing every
    /// constraint into every session's tableau).
    pub fn register_prepared(&mut self, prepared: &Prepared) -> SlotId {
        self.register_inner(prepared, false)
    }

    fn register_inner(&mut self, prepared: &Prepared, dedup_rows: bool) -> SlotId {
        let slot = match &prepared.kind {
            PreparedKind::Constant(k) => Slot::Constant(*k),
            // Single-term constraint `c·v + k ≤ 0`: a direct bound on `v`,
            // no slack row needed.
            PreparedKind::SingleVar {
                name,
                pos_upper,
                pos,
                neg,
            } => {
                let var = self.var_of(*name);
                Slot::Bounded {
                    var,
                    pos_upper: *pos_upper,
                    pos: *pos,
                    neg: *neg,
                }
            }
            // General constraint: slack = variable part (shared between
            // constraints whose variable parts coincide when `dedup_rows`).
            PreparedKind::Row { terms, pos, neg } => {
                let shared = if dedup_rows {
                    self.row_ids.get(terms).copied()
                } else {
                    None
                };
                let var = match shared {
                    Some(slack) => slack,
                    None => {
                        let slack = self.new_slack_row(terms);
                        if dedup_rows {
                            self.row_ids.insert(terms.clone(), slack);
                        }
                        slack
                    }
                };
                Slot::Bounded {
                    var,
                    pos_upper: true,
                    pos: *pos,
                    neg: *neg,
                }
            }
        };
        let id = SlotId(self.slots.len());
        self.slots.push(slot);
        id
    }

    /// Creates a slack variable whose row is `terms`, expressed over the
    /// current nonbasic variables.
    fn new_slack_row(&mut self, terms: &[(Name, Rational)]) -> VarId {
        let vars: Vec<(VarId, Rational)> = terms
            .iter()
            .map(|(name, coeff)| (self.var_of(*name), *coeff))
            .collect();
        // Registration can happen after pivoting, when some of the row's
        // variables are basic.  Rows must be expressed over nonbasic
        // variables only, so basic variables are substituted by their
        // defining rows (a change of basis — the expansion of a nonzero
        // variable part is never empty).
        let mut row: BTreeMap<VarId, Rational> = BTreeMap::new();
        let add = |row: &mut BTreeMap<VarId, Rational>, v: VarId, c: Rational| {
            let entry = row.entry(v).or_insert(Rational::ZERO);
            *entry += c;
            if entry.is_zero() {
                row.remove(&v);
            }
        };
        for (v, coeff) in vars {
            match self.rows.get(&v) {
                Some(basic_row) => {
                    for (&w, &c) in basic_row {
                        add(&mut row, w, coeff * c);
                    }
                }
                None => add(&mut row, v, coeff),
            }
        }
        debug_assert!(!row.is_empty(), "nonzero variable part expanded to zero");
        let init = row
            .iter()
            .map(|(&v, &c)| c * self.value[v])
            .fold(Rational::ZERO, |acc, x| acc + x);
        let slack = self.new_var(None);
        self.value[slack] = init;
        for &v in row.keys() {
            self.occs[v].insert(slack);
        }
        self.rows.insert(slack, row);
        slack
    }

    /// Opens a backtracking scope; bounds asserted after this call are
    /// retracted by the matching [`IncrementalSimplex::pop`].
    pub fn push(&mut self) {
        self.scopes.push(self.trail.len());
    }

    /// Retracts every bound asserted since the matching
    /// [`IncrementalSimplex::push`].  The basis and the current assignment
    /// are kept: retracting bounds never invalidates feasibility, and the
    /// adapted basis is exactly what makes the next check cheap.
    pub fn pop(&mut self) {
        let mark = self.scopes.pop().expect("pop without matching push");
        while self.trail.len() > mark {
            let undo = self.trail.pop().expect("trail underflow");
            if undo.is_upper {
                self.upper[undo.var] = undo.old;
            } else {
                self.lower[undo.var] = undo.old;
            }
        }
    }

    /// Asserts the registered constraint `slot` with the given phase
    /// (`positive` is the atom itself, `!positive` its integer negation
    /// `e ≥ 1`), tagging the bound with `tag` for core extraction.
    ///
    /// Returns the external tags of an immediately-conflicting bound pair
    /// when the new bound contradicts one already asserted.
    pub fn assert_constraint(
        &mut self,
        slot: SlotId,
        positive: bool,
        tag: usize,
    ) -> Result<(), Vec<usize>> {
        match self.slots[slot.0] {
            Slot::Constant(k) => {
                let holds = if positive {
                    !k.is_positive() // k ≤ 0
                } else {
                    !(Rational::ONE - k).is_positive() // k ≥ 1
                };
                if holds {
                    Ok(())
                } else {
                    Err(vec![tag])
                }
            }
            Slot::Bounded {
                var,
                pos_upper,
                pos,
                neg,
            } => {
                let (is_upper, bound) = if positive {
                    (pos_upper, pos)
                } else {
                    (!pos_upper, neg)
                };
                self.assert_bound(var, is_upper, bound, BoundTag::External(tag))
            }
        }
    }

    fn assert_bound(
        &mut self,
        var: VarId,
        is_upper: bool,
        bound: Rational,
        tag: BoundTag,
    ) -> Result<(), Vec<usize>> {
        let (same, opposite) = if is_upper {
            (&self.upper[var], &self.lower[var])
        } else {
            (&self.lower[var], &self.upper[var])
        };
        // Not tighter than the current bound: nothing to do.
        if let Some(existing) = same {
            let redundant = if is_upper {
                existing.value <= bound
            } else {
                existing.value >= bound
            };
            if redundant {
                return Ok(());
            }
        }
        // Contradicts the opposite bound: immediate conflict.
        if let Some(opp) = opposite {
            let conflict = if is_upper {
                opp.value > bound
            } else {
                opp.value < bound
            };
            if conflict {
                let mut core = Vec::new();
                if let BoundTag::External(t) = tag {
                    core.push(t);
                }
                if let BoundTag::External(t) = opp.tag {
                    core.push(t);
                }
                core.sort_unstable();
                core.dedup();
                return Err(core);
            }
        }
        let old = if is_upper {
            self.upper[var].replace(Bound { value: bound, tag })
        } else {
            self.lower[var].replace(Bound { value: bound, tag })
        };
        self.trail.push(UndoBound { var, is_upper, old });
        // A nonbasic variable violating its new bound can be repaired
        // immediately by sliding it to the bound (updating dependent basic
        // values); basic violations are repaired by pivoting in `check`.
        if !self.rows.contains_key(&var) {
            let v = self.value[var];
            let violated = if is_upper { v > bound } else { v < bound };
            if violated {
                self.update_nonbasic(var, bound);
            }
        } else {
            self.suspect.insert(var);
        }
        Ok(())
    }

    /// Sets the value of the nonbasic `var` to `target`, updating every
    /// basic variable whose row mentions it.
    fn update_nonbasic(&mut self, var: VarId, target: Rational) {
        let delta = target - self.value[var];
        self.value[var] = target;
        if self.config.row_scan {
            let basics: Vec<VarId> = self.rows.keys().copied().collect();
            self.col_scans += basics.len() as u64;
            for b in basics {
                if let Some(&coeff) = self.rows[&b].get(&var) {
                    self.value[b] += coeff * delta;
                    self.suspect.insert(b);
                }
            }
        } else {
            let holders: Vec<VarId> = self.occs[var].iter().copied().collect();
            self.col_scans += holders.len() as u64;
            for b in holders {
                let coeff = self.rows[&b][&var];
                self.value[b] += coeff * delta;
                self.suspect.insert(b);
            }
        }
    }

    /// Values of the named (non-slack) variables.
    fn named_values(&self) -> impl Iterator<Item = (Name, Rational)> + '_ {
        self.names
            .iter()
            .enumerate()
            .filter_map(|(id, name)| name.map(|n| (n, self.value[id])))
    }

    fn can_increase(&self, v: VarId) -> bool {
        match self.upper[v] {
            Some(b) => self.value[v] < b.value,
            None => true,
        }
    }

    fn can_decrease(&self, v: VarId) -> bool {
        match self.lower[v] {
            Some(b) => self.value[v] > b.value,
            None => true,
        }
    }

    fn is_violated(&self, b: VarId) -> bool {
        let v = self.value[b];
        let above = matches!(self.upper[b], Some(ub) if v > ub.value);
        let below = matches!(self.lower[b], Some(lb) if v < lb.value);
        above || below
    }

    /// Bland's minimum violated basic variable.  The default path drains
    /// the suspect set in ascending order (sound because every violated
    /// basic is a suspect — see the `suspect` field invariant — so the
    /// first violated suspect is the overall minimum); the legacy path
    /// scans every row.
    fn next_violated(&mut self) -> Option<VarId> {
        if self.config.row_scan {
            self.col_scans += self.rows.len() as u64;
            return self
                .rows
                .keys()
                .copied()
                .filter(|&b| self.is_violated(b))
                .min();
        }
        while let Some(b) = self.suspect.pop_first() {
            self.col_scans += 1;
            if self.rows.contains_key(&b) && self.is_violated(b) {
                return Some(b);
            }
        }
        None
    }

    /// Repairs bound violations by pivoting until the asserted bounds all
    /// hold or a row proves them inconsistent (Bland's rule on both the
    /// violated basic and the entering nonbasic guarantees termination).
    fn solve_rational(&mut self) -> RationalResult {
        // The budget's pivot cap tightens the configured one; the deadline
        // is read amortized, once per 128 loop iterations.
        let budget = self.config.budget;
        let max_pivots = match budget.pivots {
            Some(cap) => self.config.max_pivots.min(cap as usize),
            None => self.config.max_pivots,
        };
        for round in 0..max_pivots {
            if round % 128 == 127 && budget.deadline_exceeded() {
                return RationalResult::PivotLimit;
            }
            let Some(basic) = self.next_violated() else {
                return RationalResult::Feasible;
            };
            let value = self.value[basic];
            if let Some(ub) = self.upper[basic] {
                if value > ub.value {
                    // Need to decrease `basic` to its upper bound.
                    match self.select_pivot(basic, false) {
                        Some(nb) => self.pivot_and_update(basic, nb, ub.value),
                        None => {
                            // Still violated: keep the suspect invariant
                            // for the next check after backtracking.
                            self.suspect.insert(basic);
                            return RationalResult::Infeasible(self.explain(basic, ub.tag, false));
                        }
                    }
                    continue;
                }
            }
            if let Some(lb) = self.lower[basic] {
                if value < lb.value {
                    match self.select_pivot(basic, true) {
                        Some(nb) => self.pivot_and_update(basic, nb, lb.value),
                        None => {
                            self.suspect.insert(basic);
                            return RationalResult::Infeasible(self.explain(basic, lb.tag, true));
                        }
                    }
                    continue;
                }
            }
        }
        RationalResult::PivotLimit
    }

    /// Smallest nonbasic variable in `basic`'s row that can move `basic`
    /// in the required direction (`increase` = toward a violated lower
    /// bound).
    fn select_pivot(&self, basic: VarId, increase: bool) -> Option<VarId> {
        self.rows[&basic]
            .iter()
            .filter(|(&nb, &coeff)| {
                let up = coeff.is_positive() == increase;
                if up {
                    self.can_increase(nb)
                } else {
                    self.can_decrease(nb)
                }
            })
            .map(|(&nb, _)| nb)
            .min()
    }

    /// Builds the infeasible core for a stuck row: the violated bound of
    /// `basic` plus the binding bound of every nonbasic in its row.
    fn explain(&self, basic: VarId, tag: BoundTag, increase: bool) -> Vec<usize> {
        let mut core = Vec::new();
        if let BoundTag::External(t) = tag {
            core.push(t);
        }
        for (&nb, &coeff) in &self.rows[&basic] {
            let binding = if coeff.is_positive() == increase {
                self.upper[nb]
            } else {
                self.lower[nb]
            };
            if let Some(b) = binding {
                if let BoundTag::External(t) = b.tag {
                    core.push(t);
                }
            }
        }
        core.sort_unstable();
        core.dedup();
        core
    }

    /// Pivots `basic` out of the basis, `nonbasic` in, and sets the value of
    /// `basic` to `target`.
    fn pivot_and_update(&mut self, basic: VarId, nonbasic: VarId, target: Rational) {
        self.pivots += 1;
        let row = self.rows.remove(&basic).expect("pivot of non-basic row");
        for &v in row.keys() {
            self.occs[v].remove(&basic);
        }
        let a = row[&nonbasic];
        let theta = (target - self.value[basic]) / a;
        self.value[basic] = target;
        self.value[nonbasic] += theta;
        self.suspect.insert(nonbasic);
        // The rows to update: everything mentioning `nonbasic` (occurrence
        // list), or — legacy path — every row, with the membership test
        // repeated per row.
        let holders: Vec<VarId> = if self.config.row_scan {
            let all: Vec<VarId> = self.rows.keys().copied().collect();
            self.col_scans += all.len() as u64;
            all
        } else {
            let h: Vec<VarId> = self.occs[nonbasic].iter().copied().collect();
            self.col_scans += h.len() as u64;
            h
        };
        // Update values of the other basic variables.
        for &b in &holders {
            if let Some(&coeff) = self.rows[&b].get(&nonbasic) {
                self.value[b] += coeff * theta;
                self.suspect.insert(b);
            }
        }
        // Express `nonbasic` in terms of `basic` and the rest of the row:
        //   basic = Σ a_j x_j  ⟹  nonbasic = (basic - Σ_{j≠nonbasic} a_j x_j) / a
        let mut new_row: BTreeMap<VarId, Rational> = BTreeMap::new();
        new_row.insert(basic, Rational::ONE / a);
        for (&v, &c) in &row {
            if v != nonbasic {
                let coeff = -c / a;
                if !coeff.is_zero() {
                    new_row.insert(v, coeff);
                }
            }
        }
        // Substitute into every other row mentioning `nonbasic`.
        for &b in &holders {
            let mut row_b = self.rows.remove(&b).expect("row disappeared");
            if let Some(coeff) = row_b.remove(&nonbasic) {
                self.occs[nonbasic].remove(&b);
                for (&v, &c) in &new_row {
                    let entry = row_b.entry(v).or_insert(Rational::ZERO);
                    // Entries are never stored at zero, so a zero before the
                    // addition means the entry was just created.
                    let was_absent = entry.is_zero();
                    *entry += coeff * c;
                    if entry.is_zero() {
                        row_b.remove(&v);
                        if !was_absent {
                            self.occs[v].remove(&b);
                        }
                    } else if was_absent {
                        self.occs[v].insert(b);
                    }
                }
            }
            self.rows.insert(b, row_b);
        }
        for &v in new_row.keys() {
            self.occs[v].insert(nonbasic);
        }
        self.rows.insert(nonbasic, new_row);
    }

    /// Decides integer feasibility of the currently asserted bounds by
    /// branch-and-bound over the persistent tableau, considering every
    /// registered variable.
    pub fn check_integer(&mut self) -> LiaResult {
        if crate::testing::inject_fault("simplex") == Some(crate::testing::Fault::Unknown) {
            return LiaResult::Unknown;
        }
        let mut budget = self.node_budget();
        self.branch_and_bound(None, &mut budget)
    }

    /// Effective branch-and-bound node budget: the configured cap tightened
    /// by the resource budget's.
    fn node_budget(&self) -> usize {
        match self.config.budget.branch_nodes {
            Some(cap) => self.config.max_branch_nodes.min(cap as usize),
            None => self.config.max_branch_nodes,
        }
    }

    /// [`IncrementalSimplex::check_integer`] restricted to `relevant`
    /// variables: only they are branched to integrality and only they
    /// appear in the reported model.
    ///
    /// A session-lifetime tableau keeps variables from retired goals; the
    /// current bounds do not constrain them, so they need no integrality of
    /// their own — and their stale, possibly fractional values must neither
    /// burn branch budget nor leak into counter-models.  Callers pass the
    /// variables of the constraints asserted in the current scope.
    pub fn check_integer_over(&mut self, relevant: &BTreeSet<Name>) -> LiaResult {
        if crate::testing::inject_fault("simplex") == Some(crate::testing::Fault::Unknown) {
            return LiaResult::Unknown;
        }
        let mut budget = self.node_budget();
        self.branch_and_bound(Some(relevant), &mut budget)
    }

    fn branch_and_bound(
        &mut self,
        relevant: Option<&BTreeSet<Name>>,
        budget: &mut usize,
    ) -> LiaResult {
        if *budget == 0 {
            return LiaResult::Unknown;
        }
        // One deadline read per node: each node pays for a full rational
        // repair below, so the clock read is already amortized.
        if self.config.budget.deadline_exceeded() {
            return LiaResult::Unknown;
        }
        *budget -= 1;
        let is_relevant = |n: &Name| relevant.is_none_or(|r| r.contains(n));
        match self.solve_rational() {
            RationalResult::PivotLimit => LiaResult::Unknown,
            RationalResult::Infeasible(core) => LiaResult::Infeasible(core),
            RationalResult::Feasible => {
                // Find a relevant named variable with a fractional value
                // (slack variables are affine combinations of named ones
                // and need no integrality of their own).
                let fractional = self
                    .named_values()
                    .find(|(n, v)| is_relevant(n) && !v.is_integer())
                    .map(|(n, v)| (self.var_ids[&n], v));
                match fractional {
                    None => {
                        let model = self
                            .named_values()
                            .filter(|(n, _)| is_relevant(n))
                            .map(|(n, v)| (n, v.numer()))
                            .collect::<BTreeMap<_, _>>();
                        LiaResult::Feasible(model)
                    }
                    Some((var, value)) => {
                        // Branch: var ≤ floor(value).
                        self.push();
                        let lo = match self.assert_bound(
                            var,
                            true,
                            Rational::int(value.floor()),
                            BoundTag::Internal,
                        ) {
                            Ok(()) => self.branch_and_bound(relevant, budget),
                            Err(core) => LiaResult::Infeasible(core),
                        };
                        self.pop();
                        if let LiaResult::Feasible(_) = lo {
                            return lo;
                        }
                        // Branch: var ≥ ceil(value).
                        self.push();
                        let hi = match self.assert_bound(
                            var,
                            false,
                            Rational::int(value.ceil()),
                            BoundTag::Internal,
                        ) {
                            Ok(()) => self.branch_and_bound(relevant, budget),
                            Err(core) => LiaResult::Infeasible(core),
                        };
                        self.pop();
                        if let LiaResult::Feasible(_) = hi {
                            return hi;
                        }
                        match (lo, hi) {
                            (LiaResult::Infeasible(mut a), LiaResult::Infeasible(b)) => {
                                for idx in b {
                                    if !a.contains(&idx) {
                                        a.push(idx);
                                    }
                                }
                                a.sort_unstable();
                                LiaResult::Infeasible(a)
                            }
                            _ => LiaResult::Unknown,
                        }
                    }
                }
            }
        }
    }
}

/// Convenience helper: evaluates whether an integer assignment satisfies all
/// constraints.  Used by tests to validate models.
pub fn model_satisfies(constraints: &[LinConstraint], model: &BTreeMap<Name, i128>) -> bool {
    let rational_model: BTreeMap<Name, Rational> =
        model.iter().map(|(n, v)| (*n, Rational::int(*v))).collect();
    constraints.iter().all(|c| c.holds(&rational_model))
}

/// Collects the set of variables mentioned by a slice of constraints.
pub fn constraint_vars(constraints: &[LinConstraint]) -> BTreeSet<Name> {
    let mut out = BTreeSet::new();
    for c in constraints {
        out.extend(c.lhs.vars());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linear::LinExpr;
    use crate::testing::Rng;

    fn n(s: &str) -> Name {
        Name::intern(s)
    }

    /// Builds the constraint `Σ coeffs·vars + c ≤ 0`.
    fn le0(terms: &[(&str, i128)], c: i128) -> LinConstraint {
        let mut e = LinExpr::constant(Rational::int(c));
        for (v, coeff) in terms {
            e.add_term(n(v), Rational::int(*coeff));
        }
        LinConstraint::le_zero(e)
    }

    fn cfg() -> LiaConfig {
        LiaConfig::default()
    }

    #[test]
    fn trivially_true_and_false_constants() {
        assert!(matches!(
            check_lia(&[le0(&[], -5)], &cfg()),
            LiaResult::Feasible(_)
        ));
        assert_eq!(
            check_lia(&[le0(&[], 3)], &cfg()),
            LiaResult::Infeasible(vec![0])
        );
    }

    #[test]
    fn single_variable_bounds() {
        // x <= 3 && x >= 1  (−x + 1 ≤ 0)
        let cs = vec![le0(&[("x", 1)], -3), le0(&[("x", -1)], 1)];
        match check_lia(&cs, &cfg()) {
            LiaResult::Feasible(model) => {
                assert!(model_satisfies(&cs, &model));
            }
            other => panic!("expected feasible, got {other:?}"),
        }
    }

    #[test]
    fn contradictory_bounds_are_infeasible_with_core() {
        // x <= 0 && x >= 1
        let cs = vec![le0(&[("x", 1)], 0), le0(&[("x", -1)], 1)];
        match check_lia(&cs, &cfg()) {
            LiaResult::Infeasible(core) => {
                assert!(core.contains(&0));
                assert!(core.contains(&1));
            }
            other => panic!("expected infeasible, got {other:?}"),
        }
    }

    #[test]
    fn core_excludes_irrelevant_constraints() {
        // y <= 10 is irrelevant to the conflict between constraints 1 and 2.
        let cs = vec![
            le0(&[("y", 1)], -10),
            le0(&[("x", 1)], -2), // x <= 2
            le0(&[("x", -1)], 5), // x >= 5
        ];
        match check_lia(&cs, &cfg()) {
            LiaResult::Infeasible(core) => {
                assert!(
                    !core.contains(&0),
                    "core {core:?} should not mention y's bound"
                );
                assert!(core.contains(&1) && core.contains(&2));
            }
            other => panic!("expected infeasible, got {other:?}"),
        }
    }

    #[test]
    fn chained_inequalities() {
        // a <= b && b <= c && c <= a - 1  is infeasible.
        let cs = vec![
            le0(&[("a", 1), ("b", -1)], 0),
            le0(&[("b", 1), ("c", -1)], 0),
            le0(&[("c", 1), ("a", -1)], 1),
        ];
        assert!(matches!(check_lia(&cs, &cfg()), LiaResult::Infeasible(_)));
        // Dropping the last makes it feasible.
        let cs2 = &cs[..2];
        assert!(matches!(check_lia(cs2, &cfg()), LiaResult::Feasible(_)));
    }

    #[test]
    fn branch_and_bound_detects_integer_infeasibility() {
        // 2x >= 1 && 2x <= 1  has the rational solution x = 1/2 but no
        // integer solution.
        let cs = vec![le0(&[("x", -2)], 1), le0(&[("x", 2)], -1)];
        match check_lia(&cs, &cfg()) {
            LiaResult::Infeasible(_) => {}
            other => panic!("expected integer infeasible, got {other:?}"),
        }
        // The rational relaxation is feasible.
        assert!(matches!(
            check_rational(&cs, &cfg()),
            LiaResult::Feasible(_)
        ));
    }

    #[test]
    fn branch_and_bound_finds_integer_model() {
        // 2x + 3y = 7 && x >= 0 && y >= 0 (as inequalities).
        let cs = vec![
            le0(&[("x", 2), ("y", 3)], -7),
            le0(&[("x", -2), ("y", -3)], 7),
            le0(&[("x", -1)], 0),
            le0(&[("y", -1)], 0),
        ];
        match check_lia(&cs, &cfg()) {
            LiaResult::Feasible(model) => assert!(model_satisfies(&cs, &model)),
            other => panic!("expected feasible, got {other:?}"),
        }
    }

    #[test]
    fn typical_verification_condition_shape() {
        // From `decr`: n >= 0, n > 0, and the *negated* goal n - 1 < 0.
        // Should be infeasible (i.e. the VC is valid).
        let cs = vec![
            le0(&[("nv", -1)], 0), // n >= 0
            le0(&[("nv", -1)], 1), // n >= 1  (n > 0)
            le0(&[("nv", 1)], 0),  // n - 1 < 0  ⟺  n <= 0
        ];
        assert!(matches!(check_lia(&cs, &cfg()), LiaResult::Infeasible(_)));
    }

    #[test]
    fn loop_counter_invariant_shape() {
        // i <= len && i >= len && ¬(i = len) encoded as i <= len-1 is infeasible.
        let cs = vec![
            le0(&[("i", 1), ("lenv", -1)], 0),
            le0(&[("i", -1), ("lenv", 1)], 0),
            le0(&[("i", 1), ("lenv", -1)], 1),
        ];
        assert!(matches!(check_lia(&cs, &cfg()), LiaResult::Infeasible(_)));
    }

    #[test]
    fn many_variables_feasible() {
        // x1 <= x2 <= ... <= x6, x1 >= 0, x6 <= 100
        let names = ["x1", "x2", "x3", "x4", "x5", "x6"];
        let mut cs = Vec::new();
        for w in names.windows(2) {
            cs.push(le0(&[(w[0], 1), (w[1], -1)], 0));
        }
        cs.push(le0(&[("x1", -1)], 0));
        cs.push(le0(&[("x6", 1)], -100));
        match check_lia(&cs, &cfg()) {
            LiaResult::Feasible(model) => assert!(model_satisfies(&cs, &model)),
            other => panic!("expected feasible, got {other:?}"),
        }
    }

    #[test]
    fn constraint_vars_collects_names() {
        let cs = vec![le0(&[("p", 1), ("q", -1)], 0)];
        let vars = constraint_vars(&cs);
        assert!(vars.contains(&n("p")) && vars.contains(&n("q")));
    }

    /// Asserting, retracting and re-asserting bounds over one persistent
    /// tableau must reach the same verdicts as fresh one-shot checks.
    #[test]
    fn push_pop_reaches_one_shot_verdicts() {
        let family = vec![
            le0(&[("a", 1), ("b", -1)], 0), // a <= b
            le0(&[("b", 1), ("c", -1)], 0), // b <= c
            le0(&[("a", -1)], 0),           // a >= 0
            le0(&[("c", 1)], -10),          // c <= 10
            le0(&[("c", 1), ("a", -1)], 1), // c <= a - 1 (breaks the chain)
        ];
        let mut simplex = IncrementalSimplex::new(cfg());
        let slots: Vec<SlotId> = family.iter().map(|c| simplex.register(c)).collect();
        // Scope 1: the feasible chain (constraints 0..4).
        simplex.push();
        for (i, slot) in slots[..4].iter().enumerate() {
            assert!(simplex.assert_constraint(*slot, true, i).is_ok());
        }
        assert!(matches!(simplex.check_integer(), LiaResult::Feasible(_)));
        // Scope 2: add the contradiction on top.
        simplex.push();
        assert!(simplex.assert_constraint(slots[4], true, 4).is_ok());
        match simplex.check_integer() {
            LiaResult::Infeasible(core) => {
                // The core must be an actually-infeasible subset.
                let subset: Vec<LinConstraint> = core.iter().map(|&i| family[i].clone()).collect();
                assert!(matches!(
                    check_lia(&subset, &cfg()),
                    LiaResult::Infeasible(_)
                ));
            }
            other => panic!("expected infeasible, got {other:?}"),
        }
        // Retract the contradiction: feasible again.
        simplex.pop();
        assert!(matches!(simplex.check_integer(), LiaResult::Feasible(_)));
        simplex.pop();
        // Everything retracted: trivially feasible.
        assert!(matches!(simplex.check_integer(), LiaResult::Feasible(_)));
    }

    /// Registration is deduplicated: the same constraint (and the same
    /// variable part) never grows the tableau twice.
    #[test]
    fn registration_is_deduplicated() {
        let mut simplex = IncrementalSimplex::new(cfg());
        let c1 = le0(&[("p", 1), ("q", 2)], -3);
        let c2 = le0(&[("p", 1), ("q", 2)], -5); // same row, different constant
        let s1 = simplex.register(&c1);
        let s1_again = simplex.register(&c1);
        assert_eq!(s1, s1_again);
        let vars_before = simplex.num_vars();
        let s2 = simplex.register(&c2);
        assert_ne!(s1, s2);
        assert_eq!(
            simplex.num_vars(),
            vars_before,
            "constraints sharing a variable part must share the slack row"
        );
    }

    /// Random small systems: if the solver says feasible, the model must
    /// satisfy every constraint; if it says infeasible, brute force over a
    /// small box must also find no solution whenever the system only
    /// involves small coefficients (soundness spot-check).
    #[test]
    fn random_systems_agree_with_brute_force() {
        let mut rng = Rng::new(0x51312EED);
        for case in 0..64 {
            let num_constraints = rng.int_in(1, 5) as usize;
            let sys: Vec<(Vec<i128>, i128)> = (0..num_constraints)
                .map(|_| {
                    let coeffs = (0..3).map(|_| rng.int_in(-3, 3)).collect();
                    (coeffs, rng.int_in(-4, 4))
                })
                .collect();
            let var_names = ["a", "b", "c"];
            let cs: Vec<LinConstraint> = sys
                .iter()
                .map(|(coeffs, c)| {
                    let terms: Vec<(&str, i128)> = var_names
                        .iter()
                        .zip(coeffs)
                        .map(|(v, k)| (*v, *k))
                        .collect();
                    le0(&terms, *c)
                })
                .collect();

            // Brute force over a small box.
            let mut brute_feasible = false;
            'outer: for a in -6i128..=6 {
                for b in -6i128..=6 {
                    for c in -6i128..=6 {
                        let model: BTreeMap<Name, i128> = [(n("a"), a), (n("b"), b), (n("c"), c)]
                            .into_iter()
                            .collect();
                        if model_satisfies(&cs, &model) {
                            brute_feasible = true;
                            break 'outer;
                        }
                    }
                }
            }

            match check_lia(&cs, &cfg()) {
                LiaResult::Feasible(model) => {
                    assert!(
                        model_satisfies(&cs, &model),
                        "case {case}: claimed model does not satisfy"
                    );
                }
                LiaResult::Infeasible(_) => {
                    assert!(
                        !brute_feasible,
                        "case {case}: solver said infeasible but brute force found a model"
                    );
                }
                LiaResult::Unknown => {}
            }
        }
    }
}
