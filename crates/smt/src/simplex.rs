//! A decision procedure for conjunctions of linear integer constraints.
//!
//! The implementation follows the general simplex algorithm of Dutertre and
//! de Moura ("A fast linear-arithmetic solver for DPLL(T)", CAV 2006):
//! every constraint `e ≤ 0` introduces a *slack* variable equal to the
//! variable part of `e` with an upper bound equal to `-constant(e)`; the
//! algorithm then repairs bound violations by pivoting until either all
//! bounds hold (feasible, with a rational model) or a row proves the bounds
//! inconsistent (infeasible, with an explanation in terms of the original
//! constraint indices).
//!
//! Rational feasibility is then refined to *integer* feasibility by
//! branch-and-bound on variables with fractional values.  Branch-and-bound
//! is bounded; if the bound is exhausted the result is [`LiaResult::Unknown`],
//! which callers must treat as "possibly satisfiable" (for the verifier this
//! means "cannot prove valid", never "unsoundly valid").

use crate::linear::{LinConstraint, LinExpr};
use crate::rational::Rational;
use flux_logic::Name;
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// Result of a linear integer arithmetic feasibility check.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LiaResult {
    /// The constraints are satisfiable; the map is an integer model for the
    /// variables appearing in the constraints.
    Feasible(BTreeMap<Name, i128>),
    /// The constraints are unsatisfiable; the vector contains indices (into
    /// the input slice) of a subset of constraints that is already
    /// unsatisfiable.
    Infeasible(Vec<usize>),
    /// The solver gave up (branch-and-bound limit exhausted).
    Unknown,
}

/// Configuration limits for the LIA solver.
#[derive(Clone, Copy, Debug)]
pub struct LiaConfig {
    /// Maximum number of branch-and-bound nodes explored per check.
    pub max_branch_nodes: usize,
    /// Maximum number of pivots per simplex run.
    pub max_pivots: usize,
}

impl Default for LiaConfig {
    fn default() -> Self {
        LiaConfig {
            max_branch_nodes: 200,
            max_pivots: 10_000,
        }
    }
}

/// Checks feasibility of the conjunction of `constraints` over the integers.
///
/// All variables are assumed to range over the integers.
pub fn check_lia(constraints: &[LinConstraint], config: &LiaConfig) -> LiaResult {
    let mut budget = config.max_branch_nodes;
    branch_and_bound(constraints.to_vec(), constraints.len(), config, &mut budget)
}

/// Checks rational feasibility only (no integrality); used by tests and by
/// callers that want the relaxation.
pub fn check_rational(constraints: &[LinConstraint], config: &LiaConfig) -> LiaResult {
    match Simplex::solve(constraints, config) {
        SimplexResult::Feasible(model) => {
            let rounded = model
                .iter()
                .map(|(n, v)| (*n, v.floor()))
                .collect::<BTreeMap<_, _>>();
            LiaResult::Feasible(rounded)
        }
        SimplexResult::Infeasible(core) => LiaResult::Infeasible(core),
        SimplexResult::PivotLimit => LiaResult::Unknown,
    }
}

fn branch_and_bound(
    constraints: Vec<LinConstraint>,
    n_original: usize,
    config: &LiaConfig,
    budget: &mut usize,
) -> LiaResult {
    if *budget == 0 {
        return LiaResult::Unknown;
    }
    *budget -= 1;
    match Simplex::solve(&constraints, config) {
        SimplexResult::PivotLimit => LiaResult::Unknown,
        SimplexResult::Infeasible(core) => {
            LiaResult::Infeasible(core.into_iter().filter(|i| *i < n_original).collect())
        }
        SimplexResult::Feasible(model) => {
            // Find a variable with a fractional value.
            let fractional = model.iter().find(|(_, v)| !v.is_integer());
            match fractional {
                None => {
                    let int_model = model
                        .iter()
                        .map(|(n, v)| (*n, v.numer()))
                        .collect::<BTreeMap<_, _>>();
                    LiaResult::Feasible(int_model)
                }
                Some((&var, &value)) => {
                    // Branch: var <= floor(value)
                    let mut lo_branch = constraints.clone();
                    let mut lhs = LinExpr::var(var);
                    lhs.add_constant(Rational::int(-value.floor()));
                    lo_branch.push(LinConstraint::le_zero(lhs));
                    let lo = branch_and_bound(lo_branch, n_original, config, budget);
                    if let LiaResult::Feasible(_) = lo {
                        return lo;
                    }
                    // Branch: var >= ceil(value), i.e. -var + ceil <= 0
                    let mut hi_branch = constraints;
                    let mut lhs = LinExpr::var(var).scaled(-Rational::ONE);
                    lhs.add_constant(Rational::int(value.ceil()));
                    hi_branch.push(LinConstraint::le_zero(lhs));
                    let hi = branch_and_bound(hi_branch, n_original, config, budget);
                    if let LiaResult::Feasible(_) = hi {
                        return hi;
                    }
                    match (lo, hi) {
                        (LiaResult::Infeasible(mut a), LiaResult::Infeasible(b)) => {
                            for idx in b {
                                if !a.contains(&idx) {
                                    a.push(idx);
                                }
                            }
                            a.retain(|i| *i < n_original);
                            a.sort_unstable();
                            LiaResult::Infeasible(a)
                        }
                        _ => LiaResult::Unknown,
                    }
                }
            }
        }
    }
}

enum SimplexResult {
    Feasible(BTreeMap<Name, Rational>),
    /// Indices of constraints forming an infeasible subset.
    Infeasible(Vec<usize>),
    PivotLimit,
}

/// Internal variable identifier: original variables first, then one slack
/// variable per constraint.
type VarId = usize;

struct Simplex {
    /// Upper bound of each variable, if any, together with the constraint
    /// index that introduced it.
    upper: Vec<Option<(Rational, usize)>>,
    /// Lower bound of each variable, if any (unused for slack variables but
    /// kept for symmetry / future extension).
    lower: Vec<Option<(Rational, usize)>>,
    /// Current assignment.
    value: Vec<Rational>,
    /// For each basic variable, its row: basic = Σ coeff · nonbasic.
    rows: HashMap<VarId, BTreeMap<VarId, Rational>>,
    /// Whether a variable is currently basic.
    is_basic: Vec<bool>,
    /// Original variable names, indexed by VarId for the first `n` entries.
    names: Vec<Name>,
}

impl Simplex {
    fn solve(constraints: &[LinConstraint], config: &LiaConfig) -> SimplexResult {
        // Collect variables.
        let mut name_ids: BTreeMap<Name, VarId> = BTreeMap::new();
        for c in constraints {
            for v in c.lhs.vars() {
                let next = name_ids.len();
                name_ids.entry(v).or_insert(next);
            }
        }
        let n_vars = name_ids.len();
        let n_total = n_vars + constraints.len();
        let mut names = vec![Name::intern("_"); n_vars];
        for (name, id) in &name_ids {
            names[*id] = *name;
        }

        let mut simplex = Simplex {
            upper: vec![None; n_total],
            lower: vec![None; n_total],
            value: vec![Rational::ZERO; n_total],
            rows: HashMap::new(),
            is_basic: vec![false; n_total],
            names,
        };

        // One slack variable per constraint: slack_i = variable part of lhs,
        // with upper bound -constant.
        for (i, c) in constraints.iter().enumerate() {
            let slack = n_vars + i;
            let mut row: BTreeMap<VarId, Rational> = BTreeMap::new();
            for (name, coeff) in c.lhs.terms() {
                row.insert(name_ids[&name], coeff);
            }
            simplex.upper[slack] = Some((-c.lhs.constant_part(), i));
            if row.is_empty() {
                // Constant constraint: trivially check it.
                if c.lhs.constant_part().is_positive() {
                    return SimplexResult::Infeasible(vec![i]);
                }
                // Trivially true; no row needed, keep slack nonbasic at 0
                // which satisfies its (non-negative) upper bound.
                continue;
            }
            simplex.rows.insert(slack, row);
            simplex.is_basic[slack] = true;
        }
        // Initial values of basic variables.
        let basics: Vec<VarId> = simplex.rows.keys().copied().collect();
        for b in basics {
            simplex.value[b] = simplex.eval_row(b);
        }

        simplex.check(config)
    }

    fn eval_row(&self, basic: VarId) -> Rational {
        let mut acc = Rational::ZERO;
        for (&v, &c) in &self.rows[&basic] {
            acc += c * self.value[v];
        }
        acc
    }

    fn can_increase(&self, v: VarId) -> bool {
        match self.upper[v] {
            Some((ub, _)) => self.value[v] < ub,
            None => true,
        }
    }

    fn can_decrease(&self, v: VarId) -> bool {
        match self.lower[v] {
            Some((lb, _)) => self.value[v] > lb,
            None => true,
        }
    }

    fn check(&mut self, config: &LiaConfig) -> SimplexResult {
        for _ in 0..config.max_pivots {
            // Find a basic variable violating one of its bounds (Bland: use
            // the smallest id to guarantee termination).
            let violated = self
                .rows
                .keys()
                .copied()
                .filter(|&b| {
                    let v = self.value[b];
                    let above = matches!(self.upper[b], Some((ub, _)) if v > ub);
                    let below = matches!(self.lower[b], Some((lb, _)) if v < lb);
                    above || below
                })
                .min();
            let Some(basic) = violated else {
                // Feasible: extract model for original variables.
                let model = self
                    .names
                    .iter()
                    .enumerate()
                    .map(|(id, name)| (*name, self.value[id]))
                    .collect();
                return SimplexResult::Feasible(model);
            };
            let value = self.value[basic];
            if let Some((ub, ub_idx)) = self.upper[basic] {
                if value > ub {
                    // Need to decrease `basic` to ub.
                    let row = self.rows[&basic].clone();
                    let pivot = row
                        .iter()
                        .filter(|(&nb, &coeff)| {
                            (coeff.is_positive() && self.can_decrease(nb))
                                || (coeff.is_negative() && self.can_increase(nb))
                        })
                        .map(|(&nb, _)| nb)
                        .min();
                    match pivot {
                        Some(nb) => self.pivot_and_update(basic, nb, ub),
                        None => {
                            // Conflict: ub of basic plus the binding bounds of
                            // every nonbasic in the row.
                            let mut core = vec![ub_idx];
                            for (&nb, &coeff) in &row {
                                let bound = if coeff.is_positive() {
                                    self.lower[nb]
                                } else {
                                    self.upper[nb]
                                };
                                if let Some((_, idx)) = bound {
                                    core.push(idx);
                                }
                            }
                            core.sort_unstable();
                            core.dedup();
                            return SimplexResult::Infeasible(core);
                        }
                    }
                    continue;
                }
            }
            if let Some((lb, lb_idx)) = self.lower[basic] {
                if value < lb {
                    // Need to increase `basic` to lb.
                    let row = self.rows[&basic].clone();
                    let pivot = row
                        .iter()
                        .filter(|(&nb, &coeff)| {
                            (coeff.is_positive() && self.can_increase(nb))
                                || (coeff.is_negative() && self.can_decrease(nb))
                        })
                        .map(|(&nb, _)| nb)
                        .min();
                    match pivot {
                        Some(nb) => self.pivot_and_update(basic, nb, lb),
                        None => {
                            let mut core = vec![lb_idx];
                            for (&nb, &coeff) in &row {
                                let bound = if coeff.is_positive() {
                                    self.upper[nb]
                                } else {
                                    self.lower[nb]
                                };
                                if let Some((_, idx)) = bound {
                                    core.push(idx);
                                }
                            }
                            core.sort_unstable();
                            core.dedup();
                            return SimplexResult::Infeasible(core);
                        }
                    }
                    continue;
                }
            }
        }
        SimplexResult::PivotLimit
    }

    /// Pivots `basic` out of the basis, `nonbasic` in, and sets the value of
    /// `basic` to `target`.
    fn pivot_and_update(&mut self, basic: VarId, nonbasic: VarId, target: Rational) {
        let row = self.rows.remove(&basic).expect("pivot of non-basic row");
        let a = row[&nonbasic];
        let theta = (target - self.value[basic]) / a;
        self.value[basic] = target;
        self.value[nonbasic] += theta;
        // Update values of the other basic variables.
        let other_basics: Vec<VarId> = self.rows.keys().copied().collect();
        for b in other_basics {
            if let Some(&coeff) = self.rows[&b].get(&nonbasic) {
                self.value[b] += coeff * theta;
            }
        }
        // Express `nonbasic` in terms of `basic` and the rest of the row:
        //   basic = Σ a_j x_j  ⟹  nonbasic = (basic - Σ_{j≠nonbasic} a_j x_j) / a
        let mut new_row: BTreeMap<VarId, Rational> = BTreeMap::new();
        new_row.insert(basic, Rational::ONE / a);
        for (&v, &c) in &row {
            if v != nonbasic {
                let coeff = -c / a;
                if !coeff.is_zero() {
                    new_row.insert(v, coeff);
                }
            }
        }
        // Substitute into every other row mentioning `nonbasic`.
        let basics: Vec<VarId> = self.rows.keys().copied().collect();
        for b in basics {
            let row_b = self.rows.get_mut(&b).expect("row disappeared");
            if let Some(coeff) = row_b.remove(&nonbasic) {
                let mut updated = row_b.clone();
                for (&v, &c) in &new_row {
                    let entry = updated.entry(v).or_insert(Rational::ZERO);
                    *entry += coeff * c;
                    if entry.is_zero() {
                        updated.remove(&v);
                    }
                }
                *row_b = updated;
            }
        }
        self.rows.insert(nonbasic, new_row);
        self.is_basic[basic] = false;
        self.is_basic[nonbasic] = true;
    }
}

/// Convenience helper: evaluates whether an integer assignment satisfies all
/// constraints.  Used by tests to validate models.
pub fn model_satisfies(constraints: &[LinConstraint], model: &BTreeMap<Name, i128>) -> bool {
    let rational_model: BTreeMap<Name, Rational> =
        model.iter().map(|(n, v)| (*n, Rational::int(*v))).collect();
    constraints.iter().all(|c| c.holds(&rational_model))
}

/// Collects the set of variables mentioned by a slice of constraints.
pub fn constraint_vars(constraints: &[LinConstraint]) -> BTreeSet<Name> {
    let mut out = BTreeSet::new();
    for c in constraints {
        out.extend(c.lhs.vars());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testing::Rng;

    fn n(s: &str) -> Name {
        Name::intern(s)
    }

    /// Builds the constraint `Σ coeffs·vars + c ≤ 0`.
    fn le0(terms: &[(&str, i128)], c: i128) -> LinConstraint {
        let mut e = LinExpr::constant(Rational::int(c));
        for (v, coeff) in terms {
            e.add_term(n(v), Rational::int(*coeff));
        }
        LinConstraint::le_zero(e)
    }

    fn cfg() -> LiaConfig {
        LiaConfig::default()
    }

    #[test]
    fn trivially_true_and_false_constants() {
        assert!(matches!(
            check_lia(&[le0(&[], -5)], &cfg()),
            LiaResult::Feasible(_)
        ));
        assert_eq!(
            check_lia(&[le0(&[], 3)], &cfg()),
            LiaResult::Infeasible(vec![0])
        );
    }

    #[test]
    fn single_variable_bounds() {
        // x <= 3 && x >= 1  (−x + 1 ≤ 0)
        let cs = vec![le0(&[("x", 1)], -3), le0(&[("x", -1)], 1)];
        match check_lia(&cs, &cfg()) {
            LiaResult::Feasible(model) => {
                assert!(model_satisfies(&cs, &model));
            }
            other => panic!("expected feasible, got {other:?}"),
        }
    }

    #[test]
    fn contradictory_bounds_are_infeasible_with_core() {
        // x <= 0 && x >= 1
        let cs = vec![le0(&[("x", 1)], 0), le0(&[("x", -1)], 1)];
        match check_lia(&cs, &cfg()) {
            LiaResult::Infeasible(core) => {
                assert!(core.contains(&0));
                assert!(core.contains(&1));
            }
            other => panic!("expected infeasible, got {other:?}"),
        }
    }

    #[test]
    fn core_excludes_irrelevant_constraints() {
        // y <= 10 is irrelevant to the conflict between constraints 1 and 2.
        let cs = vec![
            le0(&[("y", 1)], -10),
            le0(&[("x", 1)], -2), // x <= 2
            le0(&[("x", -1)], 5), // x >= 5
        ];
        match check_lia(&cs, &cfg()) {
            LiaResult::Infeasible(core) => {
                assert!(
                    !core.contains(&0),
                    "core {core:?} should not mention y's bound"
                );
                assert!(core.contains(&1) && core.contains(&2));
            }
            other => panic!("expected infeasible, got {other:?}"),
        }
    }

    #[test]
    fn chained_inequalities() {
        // a <= b && b <= c && c <= a - 1  is infeasible.
        let cs = vec![
            le0(&[("a", 1), ("b", -1)], 0),
            le0(&[("b", 1), ("c", -1)], 0),
            le0(&[("c", 1), ("a", -1)], 1),
        ];
        assert!(matches!(check_lia(&cs, &cfg()), LiaResult::Infeasible(_)));
        // Dropping the last makes it feasible.
        let cs2 = &cs[..2];
        assert!(matches!(check_lia(cs2, &cfg()), LiaResult::Feasible(_)));
    }

    #[test]
    fn branch_and_bound_detects_integer_infeasibility() {
        // 2x >= 1 && 2x <= 1  has the rational solution x = 1/2 but no
        // integer solution.
        let cs = vec![le0(&[("x", -2)], 1), le0(&[("x", 2)], -1)];
        match check_lia(&cs, &cfg()) {
            LiaResult::Infeasible(_) => {}
            other => panic!("expected integer infeasible, got {other:?}"),
        }
        // The rational relaxation is feasible.
        assert!(matches!(
            check_rational(&cs, &cfg()),
            LiaResult::Feasible(_)
        ));
    }

    #[test]
    fn branch_and_bound_finds_integer_model() {
        // 2x + 3y = 7 && x >= 0 && y >= 0 (as inequalities).
        let cs = vec![
            le0(&[("x", 2), ("y", 3)], -7),
            le0(&[("x", -2), ("y", -3)], 7),
            le0(&[("x", -1)], 0),
            le0(&[("y", -1)], 0),
        ];
        match check_lia(&cs, &cfg()) {
            LiaResult::Feasible(model) => assert!(model_satisfies(&cs, &model)),
            other => panic!("expected feasible, got {other:?}"),
        }
    }

    #[test]
    fn typical_verification_condition_shape() {
        // From `decr`: n >= 0, n > 0, and the *negated* goal n - 1 < 0.
        // Should be infeasible (i.e. the VC is valid).
        let cs = vec![
            le0(&[("nv", -1)], 0), // n >= 0
            le0(&[("nv", -1)], 1), // n >= 1  (n > 0)
            le0(&[("nv", 1)], 0),  // n - 1 < 0  ⟺  n <= 0
        ];
        assert!(matches!(check_lia(&cs, &cfg()), LiaResult::Infeasible(_)));
    }

    #[test]
    fn loop_counter_invariant_shape() {
        // i <= len && i >= len && ¬(i = len) encoded as i <= len-1 is infeasible.
        let cs = vec![
            le0(&[("i", 1), ("lenv", -1)], 0),
            le0(&[("i", -1), ("lenv", 1)], 0),
            le0(&[("i", 1), ("lenv", -1)], 1),
        ];
        assert!(matches!(check_lia(&cs, &cfg()), LiaResult::Infeasible(_)));
    }

    #[test]
    fn many_variables_feasible() {
        // x1 <= x2 <= ... <= x6, x1 >= 0, x6 <= 100
        let names = ["x1", "x2", "x3", "x4", "x5", "x6"];
        let mut cs = Vec::new();
        for w in names.windows(2) {
            cs.push(le0(&[(w[0], 1), (w[1], -1)], 0));
        }
        cs.push(le0(&[("x1", -1)], 0));
        cs.push(le0(&[("x6", 1)], -100));
        match check_lia(&cs, &cfg()) {
            LiaResult::Feasible(model) => assert!(model_satisfies(&cs, &model)),
            other => panic!("expected feasible, got {other:?}"),
        }
    }

    #[test]
    fn constraint_vars_collects_names() {
        let cs = vec![le0(&[("p", 1), ("q", -1)], 0)];
        let vars = constraint_vars(&cs);
        assert!(vars.contains(&n("p")) && vars.contains(&n("q")));
    }

    /// Random small systems: if the solver says feasible, the model must
    /// satisfy every constraint; if it says infeasible, brute force over a
    /// small box must also find no solution whenever the system only
    /// involves small coefficients (soundness spot-check).
    #[test]
    fn random_systems_agree_with_brute_force() {
        let mut rng = Rng::new(0x51312EED);
        for case in 0..64 {
            let num_constraints = rng.int_in(1, 5) as usize;
            let sys: Vec<(Vec<i128>, i128)> = (0..num_constraints)
                .map(|_| {
                    let coeffs = (0..3).map(|_| rng.int_in(-3, 3)).collect();
                    (coeffs, rng.int_in(-4, 4))
                })
                .collect();
            let var_names = ["a", "b", "c"];
            let cs: Vec<LinConstraint> = sys
                .iter()
                .map(|(coeffs, c)| {
                    let terms: Vec<(&str, i128)> = var_names
                        .iter()
                        .zip(coeffs)
                        .map(|(v, k)| (*v, *k))
                        .collect();
                    le0(&terms, *c)
                })
                .collect();

            // Brute force over a small box.
            let mut brute_feasible = false;
            'outer: for a in -6i128..=6 {
                for b in -6i128..=6 {
                    for c in -6i128..=6 {
                        let model: BTreeMap<Name, i128> = [(n("a"), a), (n("b"), b), (n("c"), c)]
                            .into_iter()
                            .collect();
                        if model_satisfies(&cs, &model) {
                            brute_feasible = true;
                            break 'outer;
                        }
                    }
                }
            }

            match check_lia(&cs, &cfg()) {
                LiaResult::Feasible(model) => {
                    assert!(
                        model_satisfies(&cs, &model),
                        "case {case}: claimed model does not satisfy"
                    );
                }
                LiaResult::Infeasible(_) => {
                    assert!(
                        !brute_feasible,
                        "case {case}: solver said infeasible but brute force found a model"
                    );
                }
                LiaResult::Unknown => {}
            }
        }
    }
}
