//! Theory certificates: independent validation of solver verdicts.
//!
//! The DPLL(T) loop trusts two oracles: the simplex core's *infeasible*
//! verdicts (each one becomes a learned blocking lemma — a wrong core makes
//! the solver unsound) and its *feasible* verdicts (each one becomes a
//! counter-model — a wrong model makes candidate pruning delete sound
//! candidates).  Under [`flux_logic::AuditTier::Full`] both are re-checked
//! by machinery that shares nothing with the engine being audited:
//!
//! * **Infeasible cores** are certified by extracting a *Farkas
//!   combination* of the asserted bounds: non-negative multipliers λᵢ with
//!   `Σ λᵢ·lhsᵢ` equal to a positive constant.  Since every asserted
//!   constraint says `lhsᵢ ≤ 0`, such a combination is an unconditional
//!   one-line proof of infeasibility, checked here with the exact rational
//!   arithmetic of [`crate::rational`] — no simplex, no tableau, no
//!   incrementality.  Cores produced by branch-and-bound may be rationally
//!   *feasible* (their infeasibility is an integrality fact); those fall
//!   back to an independent one-shot [`check_lia`] replay with generous
//!   limits.
//! * **Models** are validated by evaluating every live clause under the SAT
//!   assignment, every asserted theory atom under the integer model, and
//!   (in sessions) the original pre-CNF hypotheses/goal under the reported
//!   model via the hash-consed evaluator — a Tseitin/CNF equisatisfiability
//!   spot-check.
//!
//! A failed certificate is a bug in the engine (or the audit layer), never
//! a property of the input program, so the wired call sites panic; the
//! checkers themselves return `Result` so negative tests can assert that
//! planted forgeries are reported.

use crate::linear::{LinConstraint, LinExpr};
use crate::rational::Rational;
use crate::simplex::{check_lia, LiaConfig, LiaResult};
use crate::solver::Model;
use flux_logic::{ExprId, Name};
use std::collections::BTreeMap;

/// A checked proof that a conjunction of asserted bounds is infeasible.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Certificate {
    /// Non-negative multipliers over the core constraints whose combination
    /// is a positive constant; verified by [`check_farkas`].
    Farkas(Vec<Rational>),
    /// The core is rationally feasible (its infeasibility is an integrality
    /// fact from branch-and-bound); an independent one-shot LIA replay
    /// confirmed integer infeasibility.
    IntegerReplay,
    /// The independent replay exhausted its limits without a verdict.  Not
    /// a forgery — the audited conflict stands unconfirmed, which is
    /// tolerated (the replay limits are generous, so this is rare).
    Inconclusive,
}

/// Verifies a Farkas certificate against `core` from first principles:
/// every multiplier non-negative, and `Σ λᵢ·lhsᵢ` a *constant, positive*
/// expression.  Since each `lhsᵢ ≤ 0`, any non-negative combination is
/// `≤ 0` under every assignment — so a positive constant combination
/// proves no assignment satisfies all of `core`.
pub fn check_farkas(core: &[LinConstraint], coeffs: &[Rational]) -> Result<(), String> {
    if coeffs.len() != core.len() {
        return Err(format!(
            "Farkas certificate has {} multipliers for {} constraints",
            coeffs.len(),
            core.len()
        ));
    }
    if let Some(bad) = coeffs.iter().find(|c| c.is_negative()) {
        return Err(format!("Farkas multiplier {bad} is negative"));
    }
    let mut sum = LinExpr::zero();
    for (c, &lambda) in core.iter().zip(coeffs) {
        sum.add_scaled(&c.lhs, lambda);
    }
    if !sum.is_constant() {
        return Err(format!("Farkas combination is not constant: {sum}"));
    }
    if !sum.constant_part().is_positive() {
        return Err(format!(
            "Farkas combination is the non-positive constant {}",
            sum.constant_part()
        ));
    }
    Ok(())
}

/// Magnitude bound on numerators/denominators of derived rows; past this
/// the extraction bails to the integer replay rather than risking i128
/// overflow in the exact arithmetic (conflict cores are small — a handful
/// of bounds with program-sized coefficients — so this never fires in
/// practice).
const FM_MAGNITUDE_LIMIT: i128 = 1 << 48;

/// Row-count cap for Fourier–Motzkin elimination.
const FM_ROW_LIMIT: usize = 512;

/// Attempts to extract Farkas multipliers for `core` by Fourier–Motzkin
/// elimination with multiplier tracking.  Returns `None` when the system is
/// rationally feasible or the elimination exceeds its caps.
fn extract_farkas(core: &[LinConstraint]) -> Option<Vec<Rational>> {
    // Each row is a derived inequality `lhs ≤ 0` together with the
    // non-negative multipliers over the original constraints that produced
    // it; combining rows combines multipliers the same way, so whichever
    // row becomes a positive constant carries its own certificate.
    let mut rows: Vec<(LinExpr, Vec<Rational>)> = core
        .iter()
        .enumerate()
        .map(|(i, c)| {
            let mut m = vec![Rational::ZERO; core.len()];
            m[i] = Rational::ONE;
            (c.lhs.clone(), m)
        })
        .collect();
    loop {
        for (lhs, mults) in &rows {
            if lhs.is_constant() && lhs.constant_part().is_positive() {
                return Some(mults.clone());
            }
        }
        // Pick the variable with the fewest positive×negative pairings (the
        // classical blowup-minimizing heuristic).
        let mut best: Option<(Name, usize)> = None;
        {
            let mut counts: BTreeMap<Name, (usize, usize)> = BTreeMap::new();
            for (lhs, _) in &rows {
                for (x, c) in lhs.terms() {
                    let entry = counts.entry(x).or_default();
                    if c.is_positive() {
                        entry.0 += 1;
                    } else {
                        entry.1 += 1;
                    }
                }
            }
            for (x, (pos, neg)) in counts {
                let cost = pos * neg;
                if best.map(|(_, c)| cost < c).unwrap_or(true) {
                    best = Some((x, cost));
                }
            }
        }
        let Some((var, _)) = best else {
            // No variables left anywhere and no positive constant row: the
            // system is rationally feasible.
            return None;
        };
        let mut next: Vec<(LinExpr, Vec<Rational>)> = Vec::new();
        let mut pos: Vec<(LinExpr, Vec<Rational>)> = Vec::new();
        let mut neg: Vec<(LinExpr, Vec<Rational>)> = Vec::new();
        for row in rows {
            let c = row.0.coeff(var);
            if c.is_positive() {
                pos.push(row);
            } else if c.is_negative() {
                neg.push(row);
            } else {
                next.push(row);
            }
        }
        // A variable bounded on one side only cannot contribute to rational
        // infeasibility; its rows are dropped with it.
        for (p_lhs, p_mults) in &pos {
            let a = p_lhs.coeff(var);
            for (n_lhs, n_mults) in &neg {
                let b = n_lhs.coeff(var); // negative
                                          // (-b)·p + a·n eliminates `var`; both scales are positive,
                                          // so the combination remains implied.
                let mut lhs = p_lhs.scaled(-b);
                lhs.add_scaled(n_lhs, a);
                if lhs
                    .terms()
                    .map(|(_, c)| c)
                    .chain([lhs.constant_part()])
                    .any(|c| c.numer().abs() > FM_MAGNITUDE_LIMIT || c.denom() > FM_MAGNITUDE_LIMIT)
                {
                    return None;
                }
                let mults = p_mults
                    .iter()
                    .zip(n_mults)
                    .map(|(&pm, &nm)| pm * -b + nm * a)
                    .collect();
                next.push((lhs, mults));
                if next.len() > FM_ROW_LIMIT {
                    return None;
                }
            }
        }
        rows = next;
        if rows.is_empty() {
            return None;
        }
    }
}

/// Certifies that the conjunction of `core` is infeasible over the
/// integers, independently of whatever solver produced the conflict.
///
/// Rationally infeasible cores yield a checked [`Certificate::Farkas`];
/// rationally feasible ones (branch-and-bound conflicts) fall back to an
/// independent one-shot LIA replay with generous limits.  `Err` means the
/// conflict was a *forgery*: the replay found an integer model of the
/// supposedly-infeasible core.
pub fn certify_infeasible_core(core: &[LinConstraint]) -> Result<Certificate, String> {
    if let Some(coeffs) = extract_farkas(core) {
        check_farkas(core, &coeffs)?;
        return Ok(Certificate::Farkas(coeffs));
    }
    let replay = LiaConfig {
        max_branch_nodes: 10_000,
        max_pivots: 200_000,
        row_scan: false,
        budget: crate::ResourceBudget::UNLIMITED,
    };
    match check_lia(core, &replay) {
        LiaResult::Infeasible(_) => Ok(Certificate::IntegerReplay),
        LiaResult::Unknown => Ok(Certificate::Inconclusive),
        LiaResult::Feasible(model) => Err(format!(
            "forged theory conflict: the {}-constraint core is satisfied by {model:?}",
            core.len()
        )),
    }
}

/// Folds each literal's phase into its linear constraint: a positive
/// literal asserts the atom's constraint, a negative one its integer
/// negation — exactly what the DPLL(T) loop asserts to the theory.
/// Non-linear atoms are skipped (`Bool` atoms are pure SAT; `Opaque`
/// atoms are never asserted to the theory).
pub fn asserted_constraints(
    lits: &[crate::atoms::Lit],
    atoms: &crate::atoms::AtomTable,
) -> Vec<LinConstraint> {
    lits.iter()
        .filter_map(|lit| match atoms.get(lit.atom) {
            crate::atoms::Atom::Lin(c) => Some(if lit.positive {
                c.clone()
            } else {
                c.negate_integer()
            }),
            _ => None,
        })
        .collect()
}

/// Validates a SAT assignment against a clause set: every clause must
/// contain a literal whose value (per `value`; `None` = unassigned) is
/// `true`.  `what` names the clause set in the error.
pub fn validate_clauses<C, F>(what: &str, clauses: C, value: F) -> Result<(), String>
where
    C: IntoIterator,
    C::Item: AsRef<[crate::atoms::Lit]>,
    F: Fn(crate::atoms::Lit) -> Option<bool>,
{
    for (i, clause) in clauses.into_iter().enumerate() {
        let clause = clause.as_ref();
        if !clause.iter().any(|&lit| value(lit) == Some(true)) {
            return Err(format!(
                "model leaves {what} clause #{i} unsatisfied: {clause:?}"
            ));
        }
    }
    Ok(())
}

/// Validates the asserted theory atoms against the integer model: each
/// `(constraint, asserted)` pair must have `constraint` hold exactly when
/// `asserted` (negations were already folded into the constraint by the
/// caller via [`LinConstraint::negate_integer`], so `asserted` is always
/// `true` in practice; the parameter keeps the checker direction-agnostic).
pub fn validate_theory_assignment(
    asserted: &[(LinConstraint, bool)],
    ints: &BTreeMap<Name, i128>,
) -> Result<(), String> {
    let rats: BTreeMap<Name, Rational> =
        ints.iter().map(|(n, v)| (*n, Rational::int(*v))).collect();
    for (i, (constraint, expected)) in asserted.iter().enumerate() {
        if constraint.holds(&rats) != *expected {
            return Err(format!(
                "integer model violates asserted theory atom #{i}: {constraint} \
                 expected to hold = {expected} under {ints:?}"
            ));
        }
    }
    Ok(())
}

/// Tseitin/CNF equisatisfiability spot-check: the reported counter-model
/// must not decidably falsify any pre-CNF hypothesis, and must decidably
/// falsify the goal conjunction (i.e. not make *every* goal true) when
/// goals are present.  `None` evaluations are tolerated — models are
/// partial (only the query's relevant variables are assigned).
pub fn spot_check_model(model: &Model, hyps: &[ExprId], goals: &[ExprId]) -> Result<(), String> {
    for &hyp in hyps {
        if model.eval_bool_id(hyp) == Some(false) {
            return Err(format!(
                "counter-model falsifies hypothesis ExprId #{} — the CNF encoding \
                 and the original formula disagree",
                hyp.index()
            ));
        }
    }
    if !goals.is_empty() && goals.iter().all(|&g| model.eval_bool_id(g) == Some(true)) {
        return Err(
            "counter-model satisfies every goal conjunct it was meant to refute".to_owned(),
        );
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(s: &str) -> Name {
        Name::intern(s)
    }

    /// `x ≤ a` as a constraint.
    fn le_const(x: &str, a: i128) -> LinConstraint {
        let mut lhs = LinExpr::var(n(x));
        lhs.add_constant(Rational::int(-a));
        LinConstraint::le_zero(lhs)
    }

    /// `x ≥ a` as a constraint.
    fn ge_const(x: &str, a: i128) -> LinConstraint {
        let mut lhs = LinExpr::var(n(x)).scaled(-Rational::ONE);
        lhs.add_constant(Rational::int(a));
        LinConstraint::le_zero(lhs)
    }

    #[test]
    fn farkas_extraction_on_contradictory_bounds() {
        // x ≤ 3 ∧ x ≥ 5 is rationally infeasible.
        let core = vec![le_const("fx", 3), ge_const("fx", 5)];
        match certify_infeasible_core(&core).unwrap() {
            Certificate::Farkas(coeffs) => {
                check_farkas(&core, &coeffs).unwrap();
                assert!(coeffs.iter().all(|c| !c.is_negative()));
            }
            other => panic!("expected a Farkas certificate, got {other:?}"),
        }
    }

    #[test]
    fn farkas_extraction_through_a_chain() {
        // x ≤ y ∧ y ≤ z ∧ z ≤ x - 1 is infeasible via a 3-step combination.
        let le = |a: &str, b: &str, shift: i128| {
            let mut lhs = LinExpr::var(n(a));
            lhs.add_scaled(&LinExpr::var(n(b)), -Rational::ONE);
            lhs.add_constant(Rational::int(shift));
            LinConstraint::le_zero(lhs)
        };
        let core = vec![le("fa", "fb", 0), le("fb", "fc", 0), le("fc", "fa", 1)];
        match certify_infeasible_core(&core).unwrap() {
            Certificate::Farkas(coeffs) => check_farkas(&core, &coeffs).unwrap(),
            other => panic!("expected a Farkas certificate, got {other:?}"),
        }
    }

    #[test]
    fn integer_only_core_falls_back_to_replay() {
        // 2x ≥ 1 ∧ 2x ≤ 1 is rationally feasible (x = 1/2) but has no
        // integer solution.
        let mut up = LinExpr::var(n("gx")).scaled(Rational::int(2));
        up.add_constant(Rational::int(-1));
        let mut down = LinExpr::var(n("gx")).scaled(Rational::int(-2));
        down.add_constant(Rational::int(1));
        let core = vec![LinConstraint::le_zero(up), LinConstraint::le_zero(down)];
        assert_eq!(
            certify_infeasible_core(&core).unwrap(),
            Certificate::IntegerReplay
        );
    }

    #[test]
    fn satisfiable_core_is_reported_as_forgery() {
        let core = vec![le_const("hx", 5), ge_const("hx", 3)];
        let err = certify_infeasible_core(&core).unwrap_err();
        assert!(err.contains("forged"), "{err}");
    }

    #[test]
    fn corrupted_farkas_coefficient_is_rejected() {
        let core = vec![le_const("ix", 3), ge_const("ix", 5)];
        let Certificate::Farkas(mut coeffs) = certify_infeasible_core(&core).unwrap() else {
            panic!("expected a Farkas certificate");
        };
        check_farkas(&core, &coeffs).unwrap();
        // Corrupt one multiplier: the combination stops being constant (or
        // stops being positive), and the checker must say so.
        coeffs[0] += Rational::ONE;
        assert!(check_farkas(&core, &coeffs).is_err());
        // A negated multiplier is rejected outright.
        coeffs[0] = -Rational::ONE;
        assert!(check_farkas(&core, &coeffs).is_err());
        // And a truncated certificate never passes.
        assert!(check_farkas(&core, &[]).is_err());
    }

    #[test]
    fn theory_assignment_validation_catches_flipped_bit() {
        let c = le_const("jx", 3);
        let mut ints = BTreeMap::new();
        ints.insert(n("jx"), 2);
        validate_theory_assignment(&[(c.clone(), true)], &ints).unwrap();
        // Flip the asserted phase: 2 ≤ 3 does not violate the constraint.
        assert!(validate_theory_assignment(&[(c.clone(), false)], &ints).is_err());
        // Flip the model bit past the bound.
        ints.insert(n("jx"), 4);
        assert!(validate_theory_assignment(&[(c, true)], &ints).is_err());
    }

    #[test]
    fn clause_validation_catches_flipped_model_bit() {
        use crate::atoms::{AtomId, Lit};
        let clauses = vec![vec![Lit::pos(AtomId(0)), Lit::neg(AtomId(1))]];
        let good = |lit: Lit| Some(lit.atom == AtomId(0) && lit.positive);
        validate_clauses("test", &clauses, good).unwrap();
        // Flip atom 0 to false: the clause loses its only true literal
        // (atom 1 stays true, so its negation is false).
        let flipped = |lit: Lit| Some(!lit.positive && lit.atom != AtomId(1));
        assert!(validate_clauses("test", &clauses, flipped).is_err());
    }

    #[test]
    fn spot_check_rejects_model_violating_hypothesis() {
        use flux_logic::Expr;
        let mut model = Model::default();
        model.ints.insert(n("kx"), 1);
        let hyp = ExprId::intern(&Expr::ge(Expr::var(n("kx")), Expr::int(0)));
        let goal = ExprId::intern(&Expr::ge(Expr::var(n("kx")), Expr::int(5)));
        spot_check_model(&model, &[hyp], &[goal]).unwrap();
        // A model that falsifies the hypothesis is a forgery...
        model.ints.insert(n("kx"), -1);
        assert!(spot_check_model(&model, &[hyp], &[goal]).is_err());
        // ...and so is one that satisfies the goal it allegedly refutes.
        model.ints.insert(n("kx"), 7);
        assert!(spot_check_model(&model, &[hyp], &[goal]).is_err());
        // Partial models are tolerated.
        let partial = Model::default();
        spot_check_model(&partial, &[hyp], &[goal]).unwrap();
    }
}
