//! Conversion of quantifier-free formulas to CNF over theory atoms.
//!
//! The conversion is the standard Tseitin encoding: every non-literal
//! subformula gets a fresh propositional definition variable, producing a
//! CNF that is equisatisfiable with the input and linear in its size.
//!
//! Input formulas must already be preprocessed (see [`crate::preprocess`]):
//! no quantifiers, no `if-then-else` terms, no uninterpreted applications,
//! and all arithmetic comparisons normalised to `e ≤ 0` atoms.

use crate::atoms::{Atom, AtomId, AtomTable, Lit};
use crate::linear::{LinConstraint, LinExpr};
use crate::rational::Rational;
use flux_logic::{BinOp, Constant, Expr, Name, UnOp};

/// A CNF: a conjunction of clauses, each a disjunction of literals.
#[derive(Clone, Debug, Default)]
pub struct Cnf {
    /// The clauses.
    pub clauses: Vec<Vec<Lit>>,
}

impl Cnf {
    /// Adds a clause.
    pub fn add(&mut self, clause: Vec<Lit>) {
        self.clauses.push(clause);
    }

    /// Number of clauses.
    pub fn len(&self) -> usize {
        self.clauses.len()
    }

    /// True if there are no clauses.
    pub fn is_empty(&self) -> bool {
        self.clauses.is_empty()
    }
}

/// Errors that can occur while converting to CNF.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CnfError {
    /// A construct that should have been eliminated by preprocessing was
    /// still present.
    UnexpectedConstruct(String),
}

impl std::fmt::Display for CnfError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CnfError::UnexpectedConstruct(what) => {
                write!(f, "unexpected construct during CNF conversion: {what}")
            }
        }
    }
}

impl std::error::Error for CnfError {}

/// Converts `formula` to CNF, interning atoms into `atoms`.
///
/// The returned CNF is satisfiable iff `formula` is (over the combined
/// boolean + linear-integer theory).
pub fn tseitin(formula: &Expr, atoms: &mut AtomTable) -> Result<Cnf, CnfError> {
    let (root, mut cnf) = tseitin_literal(formula, atoms)?;
    cnf.add(vec![root]);
    Ok(cnf)
}

/// Converts `formula` to a *defining* CNF plus a root literal: under the
/// returned clauses, the root literal is equivalent to `formula`, but the
/// formula itself is not asserted.  This lets callers combine several
/// independently cached encodings into one query — e.g. asserting the
/// disjunction `root₁ ∨ … ∨ rootₙ` on top of the unions of their defining
/// clauses encodes `f₁ ∨ … ∨ fₙ` without re-encoding any `fᵢ`.
pub fn tseitin_literal(formula: &Expr, atoms: &mut AtomTable) -> Result<(Lit, Cnf), CnfError> {
    let mut cnf = Cnf::default();
    let root = encode(formula, atoms, &mut cnf)?;
    Ok((root, cnf))
}

/// Encodes `expr` returning a literal equivalent to it (adding definition
/// clauses to `cnf` as needed).
fn encode(expr: &Expr, atoms: &mut AtomTable, cnf: &mut Cnf) -> Result<Lit, CnfError> {
    match expr {
        Expr::Const(Constant::Bool(b)) => {
            // Represent constants with a dedicated always-true atom.
            let id = atoms.intern(Atom::Bool(Name::intern("$true")));
            cnf.add(vec![Lit::pos(id)]);
            Ok(if *b { Lit::pos(id) } else { Lit::neg(id) })
        }
        Expr::Var(name) => Ok(Lit::pos(atoms.intern(Atom::Bool(*name)))),
        Expr::UnOp(UnOp::Not, inner) => Ok(encode(inner, atoms, cnf)?.negated()),
        Expr::BinOp(op, lhs, rhs) => match op {
            BinOp::And => {
                let a = encode(lhs, atoms, cnf)?;
                let b = encode(rhs, atoms, cnf)?;
                let d = fresh_def(atoms);
                // d <-> a & b
                cnf.add(vec![d.negated(), a]);
                cnf.add(vec![d.negated(), b]);
                cnf.add(vec![a.negated(), b.negated(), d]);
                Ok(d)
            }
            BinOp::Or => {
                let a = encode(lhs, atoms, cnf)?;
                let b = encode(rhs, atoms, cnf)?;
                let d = fresh_def(atoms);
                cnf.add(vec![d.negated(), a, b]);
                cnf.add(vec![a.negated(), d]);
                cnf.add(vec![b.negated(), d]);
                Ok(d)
            }
            BinOp::Imp => {
                let a = encode(lhs, atoms, cnf)?;
                let b = encode(rhs, atoms, cnf)?;
                let d = fresh_def(atoms);
                cnf.add(vec![d.negated(), a.negated(), b]);
                cnf.add(vec![a, d]);
                cnf.add(vec![b.negated(), d]);
                Ok(d)
            }
            BinOp::Iff => {
                let a = encode(lhs, atoms, cnf)?;
                let b = encode(rhs, atoms, cnf)?;
                let d = fresh_def(atoms);
                cnf.add(vec![d.negated(), a.negated(), b]);
                cnf.add(vec![d.negated(), b.negated(), a]);
                cnf.add(vec![d, a, b]);
                cnf.add(vec![d, a.negated(), b.negated()]);
                Ok(d)
            }
            // Remaining binary operators are atoms (comparisons) or should
            // have been eliminated.
            _ => Ok(Lit::pos(encode_atom(expr, atoms)?)),
        },
        Expr::App(..) => Err(CnfError::UnexpectedConstruct(
            "uninterpreted application (should be ackermannized)".to_owned(),
        )),
        Expr::Ite(..) => Err(CnfError::UnexpectedConstruct(
            "if-then-else (should be eliminated)".to_owned(),
        )),
        Expr::Forall(..) | Expr::Exists(..) => Err(CnfError::UnexpectedConstruct(
            "quantifier (should be instantiated)".to_owned(),
        )),
        Expr::Const(_) | Expr::UnOp(UnOp::Neg, _) => Err(CnfError::UnexpectedConstruct(format!(
            "non-boolean expression in boolean position: {expr}"
        ))),
    }
}

fn fresh_def(atoms: &mut AtomTable) -> Lit {
    Lit::pos(atoms.intern(Atom::Bool(Name::fresh("$def"))))
}

/// Encodes a comparison (or opaque predicate) as a theory atom.
fn encode_atom(expr: &Expr, atoms: &mut AtomTable) -> Result<AtomId, CnfError> {
    match expr {
        Expr::BinOp(BinOp::Le, lhs, rhs) => {
            match linearize(&Expr::binop(BinOp::Sub, (**lhs).clone(), (**rhs).clone())) {
                Some(lin) => Ok(atoms.intern(Atom::Lin(LinConstraint::le_zero(lin)))),
                None => Ok(atoms.intern(Atom::Opaque(expr.clone()))),
            }
        }
        _ => Ok(atoms.intern(Atom::Opaque(expr.clone()))),
    }
}

/// Attempts to interpret `expr` as a linear expression over integer
/// variables.  Returns `None` if the expression is non-linear.
pub fn linearize(expr: &Expr) -> Option<LinExpr> {
    match expr {
        Expr::Const(Constant::Int(i)) => Some(LinExpr::constant(Rational::int(*i))),
        Expr::Var(name) => Some(LinExpr::var(*name)),
        Expr::UnOp(UnOp::Neg, inner) => Some(linearize(inner)?.scaled(-Rational::ONE)),
        Expr::BinOp(BinOp::Add, lhs, rhs) => Some(linearize(lhs)?.plus(&linearize(rhs)?)),
        Expr::BinOp(BinOp::Sub, lhs, rhs) => Some(linearize(lhs)?.minus(&linearize(rhs)?)),
        Expr::BinOp(BinOp::Mul, lhs, rhs) => {
            let l = linearize(lhs)?;
            let r = linearize(rhs)?;
            if l.is_constant() {
                Some(r.scaled(l.constant_part()))
            } else if r.is_constant() {
                Some(l.scaled(r.constant_part()))
            } else {
                None
            }
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atoms::Atom;

    fn v(s: &str) -> Expr {
        Expr::var(Name::intern(s))
    }

    #[test]
    fn linearize_handles_affine_expressions() {
        let e = v("x") + Expr::int(2) * v("y") - Expr::int(3);
        let lin = linearize(&e).unwrap();
        assert_eq!(lin.coeff(Name::intern("x")), Rational::ONE);
        assert_eq!(lin.coeff(Name::intern("y")), Rational::int(2));
        assert_eq!(lin.constant_part(), Rational::int(-3));
    }

    #[test]
    fn linearize_rejects_products_of_variables() {
        assert!(linearize(&(v("x") * v("y"))).is_none());
    }

    #[test]
    fn le_atoms_become_linear_constraints() {
        let mut atoms = AtomTable::new();
        let e = Expr::le(v("i"), v("n"));
        let cnf = tseitin(&e, &mut atoms).unwrap();
        assert_eq!(cnf.len(), 1);
        let lit = cnf.clauses[0][0];
        assert!(matches!(atoms.get(lit.atom), Atom::Lin(_)));
    }

    #[test]
    fn boolean_variables_become_bool_atoms() {
        let mut atoms = AtomTable::new();
        let cnf = tseitin(&v("p"), &mut atoms).unwrap();
        assert_eq!(cnf.len(), 1);
        assert!(matches!(atoms.get(cnf.clauses[0][0].atom), Atom::Bool(_)));
    }

    #[test]
    fn conjunction_produces_definition_clauses() {
        let mut atoms = AtomTable::new();
        let e = Expr::binop(BinOp::And, v("p"), v("q"));
        let cnf = tseitin(&e, &mut atoms).unwrap();
        // 3 definition clauses + 1 root assertion
        assert_eq!(cnf.len(), 4);
    }

    #[test]
    fn nonlinear_comparison_becomes_opaque_atom() {
        let mut atoms = AtomTable::new();
        let e = Expr::le(v("x") * v("y"), Expr::int(4));
        let cnf = tseitin(&e, &mut atoms).unwrap();
        let lit = cnf.clauses[0][0];
        assert!(matches!(atoms.get(lit.atom), Atom::Opaque(_)));
    }

    #[test]
    fn leftover_quantifier_is_an_error() {
        let mut atoms = AtomTable::new();
        let i = Name::intern("i");
        let e = Expr::Forall(vec![(i, flux_logic::Sort::Int)], Box::new(Expr::tt()));
        assert!(tseitin(&e, &mut atoms).is_err());
    }

    #[test]
    fn negation_flips_literal() {
        let mut atoms = AtomTable::new();
        let e = Expr::not(v("p"));
        let cnf = tseitin(&e, &mut atoms).unwrap();
        assert!(!cnf.clauses[0][0].positive);
    }
}
