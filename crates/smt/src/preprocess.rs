//! Preprocessing passes that bring a formula into the fragment the CNF
//! converter and the linear theory solver understand.
//!
//! The passes are applied by [`crate::Solver`] in this order:
//!
//! 1. quantifier elimination ([`crate::quant`]): skolemisation plus bounded
//!    instantiation (only formulas from the program-logic baseline contain
//!    quantifiers),
//! 2. [`eliminate_div_mod`]: integer division/remainder by positive
//!    constants becomes a fresh variable plus defining constraints,
//! 3. [`eliminate_ite`]: `if-then-else` is rewritten into boolean structure,
//! 4. [`ackermannize`]: uninterpreted applications become fresh variables
//!    plus functional-consistency axioms,
//! 5. [`normalize_comparisons`]: every integer comparison becomes an `≤`
//!    atom, so that the theory solver only ever sees constraints of the form
//!    `e ≤ 0` and literal negation stays within the fragment.

use flux_logic::{BinOp, Constant, Expr, Name, Sort, SortCtx, UnOp};
use std::collections::BTreeMap;

/// Eliminates integer division and remainder by a *positive constant*
/// divisor.  Returns the rewritten expression together with defining
/// constraints that must be conjoined to the formula being checked.
///
/// `a / c` is replaced by a fresh variable `q` with
/// `c*q ≤ a ∧ a ≤ c*q + (c-1)` (floor semantics), and `a % c` by `r` with
/// `a = c*q + r ∧ 0 ≤ r ≤ c-1`.  Divisions by non-constant or non-positive
/// divisors are left in place (they later become opaque atoms).
///
/// Floor and truncating division agree for non-negative dividends, which is
/// the only case exercised by the benchmark programs (indices and lengths).
pub fn eliminate_div_mod(expr: &Expr, defs: &mut Vec<Expr>) -> Expr {
    match expr {
        Expr::Var(_) | Expr::Const(_) => expr.clone(),
        Expr::UnOp(op, e) => Expr::unop(*op, eliminate_div_mod(e, defs)),
        Expr::BinOp(op @ (BinOp::Div | BinOp::Mod), lhs, rhs) => {
            let lhs = eliminate_div_mod(lhs, defs);
            let rhs = eliminate_div_mod(rhs, defs);
            let divisor = match &rhs {
                Expr::Const(Constant::Int(c)) if *c > 0 => *c,
                _ => return Expr::binop(*op, lhs, rhs),
            };
            let q = Expr::var(Name::fresh("$div"));
            let r = Expr::var(Name::fresh("$mod"));
            // lhs = divisor*q + r ∧ 0 <= r <= divisor-1
            defs.push(Expr::eq(
                lhs.clone(),
                Expr::int(divisor) * q.clone() + r.clone(),
            ));
            defs.push(Expr::ge(r.clone(), Expr::int(0)));
            defs.push(Expr::le(r.clone(), Expr::int(divisor - 1)));
            match op {
                BinOp::Div => q,
                _ => r,
            }
        }
        Expr::BinOp(op, lhs, rhs) => Expr::binop(
            *op,
            eliminate_div_mod(lhs, defs),
            eliminate_div_mod(rhs, defs),
        ),
        Expr::Ite(c, t, e) => Expr::ite(
            eliminate_div_mod(c, defs),
            eliminate_div_mod(t, defs),
            eliminate_div_mod(e, defs),
        ),
        Expr::App(f, args) => Expr::App(
            *f,
            args.iter().map(|a| eliminate_div_mod(a, defs)).collect(),
        ),
        Expr::Forall(binders, body) => {
            // Definitions introduced under a quantifier would be unsound to
            // hoist; quantified formulas are instantiated before this pass,
            // so in practice we never get here with a division inside.
            Expr::Forall(binders.clone(), Box::new(eliminate_div_mod(body, defs)))
        }
        Expr::Exists(binders, body) => {
            Expr::Exists(binders.clone(), Box::new(eliminate_div_mod(body, defs)))
        }
    }
}

/// Rewrites `if-then-else` away.
///
/// In boolean positions `ite(c, t, e)` becomes `(c ∧ t) ∨ (¬c ∧ e)`.  An
/// `ite` nested inside a comparison is removed by case-splitting the
/// enclosing comparison.
pub fn eliminate_ite(expr: &Expr) -> Expr {
    match expr {
        Expr::Var(_) | Expr::Const(_) => expr.clone(),
        Expr::UnOp(op, e) => Expr::unop(*op, eliminate_ite(e)),
        Expr::Ite(c, t, e) => {
            // Boolean position.
            let c = eliminate_ite(c);
            let t = eliminate_ite(t);
            let e = eliminate_ite(e);
            Expr::or(Expr::and(c.clone(), t), Expr::and(Expr::not(c), e))
        }
        Expr::BinOp(op, lhs, rhs) if !op.is_predicate() => {
            Expr::binop(*op, eliminate_ite(lhs), eliminate_ite(rhs))
        }
        Expr::BinOp(op, lhs, rhs) => {
            // A comparison or boolean connective: first split on any `ite`
            // that occurs in a term position below it.
            if let Some((cond, with_then, with_else)) = split_first_term_ite(expr) {
                let cond = eliminate_ite(&cond);
                return Expr::or(
                    Expr::and(cond.clone(), eliminate_ite(&with_then)),
                    Expr::and(Expr::not(cond), eliminate_ite(&with_else)),
                );
            }
            Expr::binop(*op, eliminate_ite(lhs), eliminate_ite(rhs))
        }
        Expr::App(f, args) => Expr::App(*f, args.iter().map(eliminate_ite).collect()),
        Expr::Forall(binders, body) => Expr::Forall(binders.clone(), Box::new(eliminate_ite(body))),
        Expr::Exists(binders, body) => Expr::Exists(binders.clone(), Box::new(eliminate_ite(body))),
    }
}

/// Finds the first `ite` occurring in a *term* (non-boolean) position inside
/// `expr` and returns `(condition, expr[then], expr[else])`.
fn split_first_term_ite(expr: &Expr) -> Option<(Expr, Expr, Expr)> {
    fn find_in_term(term: &Expr) -> Option<(Expr, Expr, Expr)> {
        match term {
            Expr::Ite(c, t, e) => Some(((**c).clone(), (**t).clone(), (**e).clone())),
            Expr::UnOp(op, inner) => {
                find_in_term(inner).map(|(c, t, e)| (c, Expr::unop(*op, t), Expr::unop(*op, e)))
            }
            Expr::BinOp(op, lhs, rhs) => {
                if let Some((c, t, e)) = find_in_term(lhs) {
                    let rt = (**rhs).clone();
                    Some((c, Expr::binop(*op, t, rt.clone()), Expr::binop(*op, e, rt)))
                } else if let Some((c, t, e)) = find_in_term(rhs) {
                    let lt = (**lhs).clone();
                    Some((c, Expr::binop(*op, lt.clone(), t), Expr::binop(*op, lt, e)))
                } else {
                    None
                }
            }
            Expr::App(f, args) => {
                for (i, arg) in args.iter().enumerate() {
                    if let Some((c, t, e)) = find_in_term(arg) {
                        let mut with_t = args.clone();
                        let mut with_e = args.clone();
                        with_t[i] = t;
                        with_e[i] = e;
                        return Some((c, Expr::App(*f, with_t), Expr::App(*f, with_e)));
                    }
                }
                None
            }
            _ => None,
        }
    }
    match expr {
        Expr::BinOp(op, lhs, rhs) if op.is_predicate() => {
            if let Some((c, t, e)) = find_in_term(lhs) {
                let rt = (**rhs).clone();
                Some((c, Expr::binop(*op, t, rt.clone()), Expr::binop(*op, e, rt)))
            } else if let Some((c, t, e)) = find_in_term(rhs) {
                let lt = (**lhs).clone();
                Some((c, Expr::binop(*op, lt.clone(), t), Expr::binop(*op, lt, e)))
            } else {
                None
            }
        }
        _ => None,
    }
}

/// Replaces uninterpreted applications by fresh variables and returns the
/// functional-consistency axioms (Ackermann's reduction).
///
/// Two applications of the same function symbol with syntactically distinct
/// argument lists `ā` and `b̄` yield the axiom `ā = b̄ ⟹ vₐ = v_b`.
/// Equality between arguments of non-integer sorts is approximated
/// syntactically, which only ever *weakens* the formula: the solver may fail
/// to prove a valid formula but will never claim validity wrongly.
pub fn ackermannize(expr: &Expr, ctx: &SortCtx, axioms: &mut Vec<Expr>) -> (Expr, SortCtx) {
    let mut table: BTreeMap<(Name, Vec<Expr>), Name> = BTreeMap::new();
    let mut extended = ctx.clone();
    let rewritten = ack_rec(expr, ctx, &mut table, &mut extended);
    // Functional consistency axioms, grouped by function symbol.
    let entries: Vec<((Name, Vec<Expr>), Name)> =
        table.iter().map(|(k, v)| (k.clone(), *v)).collect();
    for (i, ((f1, args1), v1)) in entries.iter().enumerate() {
        for ((f2, args2), v2) in entries.iter().skip(i + 1) {
            if f1 != f2 || args1.len() != args2.len() {
                continue;
            }
            let mut hypothesis = Expr::tt();
            let mut comparable = true;
            for (a1, a2) in args1.iter().zip(args2) {
                let s1 = operand_sort(a1, ctx);
                if s1 == Sort::Int {
                    hypothesis = Expr::and(hypothesis, Expr::eq(a1.clone(), a2.clone()));
                } else if a1 != a2 {
                    // Cannot reason about equality of this sort: drop the
                    // axiom (weaker, still sound).
                    comparable = false;
                    break;
                }
            }
            if comparable {
                axioms.push(Expr::imp(
                    hypothesis,
                    Expr::eq(Expr::Var(*v1), Expr::Var(*v2)),
                ));
            }
        }
    }
    (rewritten, extended)
}

fn ack_rec(
    expr: &Expr,
    ctx: &SortCtx,
    table: &mut BTreeMap<(Name, Vec<Expr>), Name>,
    extended: &mut SortCtx,
) -> Expr {
    match expr {
        Expr::Var(_) | Expr::Const(_) => expr.clone(),
        Expr::UnOp(op, e) => Expr::unop(*op, ack_rec(e, ctx, table, extended)),
        Expr::BinOp(op, l, r) => Expr::binop(
            *op,
            ack_rec(l, ctx, table, extended),
            ack_rec(r, ctx, table, extended),
        ),
        Expr::Ite(c, t, e) => Expr::ite(
            ack_rec(c, ctx, table, extended),
            ack_rec(t, ctx, table, extended),
            ack_rec(e, ctx, table, extended),
        ),
        Expr::App(f, args) => {
            let args: Vec<Expr> = args
                .iter()
                .map(|a| ack_rec(a, ctx, table, extended))
                .collect();
            let key = (*f, args.clone());
            if let Some(existing) = table.get(&key) {
                return Expr::Var(*existing);
            }
            let ret_sort = ctx.lookup_fn(*f).map(|(_, r)| r).unwrap_or(Sort::Int);
            let fresh = Name::fresh(&format!("${f}"));
            extended.push(fresh, ret_sort);
            table.insert(key, fresh);
            Expr::Var(fresh)
        }
        Expr::Forall(binders, body) => Expr::Forall(
            binders.clone(),
            Box::new(ack_rec(body, ctx, table, extended)),
        ),
        Expr::Exists(binders, body) => Expr::Exists(
            binders.clone(),
            Box::new(ack_rec(body, ctx, table, extended)),
        ),
    }
}

/// The sort of a term operand, determined from its head symbol alone
/// (recursing only through `ite` branches).
///
/// For well-sorted expressions this agrees with [`Expr::sort_of`], but it
/// costs O(1) instead of a full traversal — which matters because
/// [`normalize_comparisons`] consults the operand sort of *every* comparison
/// in the formula, and the recursive check would make normalisation
/// quadratic in the (large) hypothesis conjunctions the weakening loop
/// preprocesses on every solver session.
fn operand_sort(expr: &Expr, ctx: &SortCtx) -> Sort {
    match expr {
        Expr::Var(name) => ctx.lookup(*name).unwrap_or(Sort::Int),
        Expr::Const(Constant::Int(_)) => Sort::Int,
        Expr::Const(Constant::Bool(_)) => Sort::Bool,
        Expr::Const(Constant::Real(_)) => Sort::Real,
        Expr::UnOp(UnOp::Not, _) => Sort::Bool,
        Expr::UnOp(UnOp::Neg, _) => Sort::Int,
        Expr::BinOp(op, ..) => {
            if op.is_predicate() {
                Sort::Bool
            } else {
                Sort::Int
            }
        }
        Expr::Ite(_, then, _) => operand_sort(then, ctx),
        Expr::App(func, _) => ctx.lookup_fn(*func).map(|(_, r)| r).unwrap_or(Sort::Int),
        Expr::Forall(..) | Expr::Exists(..) => Sort::Bool,
    }
}

/// Normalises comparisons so that every integer comparison is expressed with
/// `≤` and boolean equality becomes `iff`.
pub fn normalize_comparisons(expr: &Expr, ctx: &SortCtx) -> Expr {
    match expr {
        Expr::Var(_) | Expr::Const(_) => expr.clone(),
        Expr::UnOp(op, e) => Expr::unop(*op, normalize_comparisons(e, ctx)),
        Expr::Ite(c, t, e) => Expr::ite(
            normalize_comparisons(c, ctx),
            normalize_comparisons(t, ctx),
            normalize_comparisons(e, ctx),
        ),
        Expr::App(f, args) => Expr::App(
            *f,
            args.iter().map(|a| normalize_comparisons(a, ctx)).collect(),
        ),
        Expr::Forall(binders, body) => {
            let mut inner = ctx.clone();
            for (n, s) in binders {
                inner.push(*n, *s);
            }
            Expr::Forall(
                binders.clone(),
                Box::new(normalize_comparisons(body, &inner)),
            )
        }
        Expr::Exists(binders, body) => {
            let mut inner = ctx.clone();
            for (n, s) in binders {
                inner.push(*n, *s);
            }
            Expr::Exists(
                binders.clone(),
                Box::new(normalize_comparisons(body, &inner)),
            )
        }
        Expr::BinOp(op, lhs, rhs) => {
            let l = normalize_comparisons(lhs, ctx);
            let r = normalize_comparisons(rhs, ctx);
            let operand_sort = operand_sort(lhs, ctx);
            match op {
                BinOp::Lt if operand_sort == Sort::Int => Expr::le(l + Expr::int(1), r),
                BinOp::Gt if operand_sort == Sort::Int => Expr::le(r + Expr::int(1), l),
                BinOp::Ge if operand_sort == Sort::Int => Expr::le(r, l),
                BinOp::Eq => match operand_sort {
                    Sort::Int => Expr::and(Expr::le(l.clone(), r.clone()), Expr::le(r, l)),
                    Sort::Bool => Expr::iff(l, r),
                    _ => Expr::binop(BinOp::Eq, l, r),
                },
                BinOp::Ne => match operand_sort {
                    Sort::Int => Expr::or(
                        Expr::le(l.clone() + Expr::int(1), r.clone()),
                        Expr::le(r + Expr::int(1), l),
                    ),
                    Sort::Bool => Expr::not(Expr::iff(l, r)),
                    _ => Expr::not(Expr::binop(BinOp::Eq, l, r)),
                },
                _ => Expr::binop(*op, l, r),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(s: &str) -> Expr {
        Expr::var(Name::intern(s))
    }

    fn int_ctx(vars: &[&str]) -> SortCtx {
        let mut ctx = SortCtx::new();
        for name in vars {
            ctx.push(Name::intern(name), Sort::Int);
        }
        ctx
    }

    #[test]
    fn division_by_constant_is_defined_away() {
        let mut defs = Vec::new();
        let e = Expr::le(
            eliminate_div_mod(
                &Expr::binop(BinOp::Div, v("lo") + v("hi"), Expr::int(2)),
                &mut defs,
            ),
            v("hi"),
        );
        // Three defining constraints are produced.
        assert_eq!(defs.len(), 3);
        assert!(!format!("{e}").contains('/'));
    }

    #[test]
    fn division_by_variable_is_left_alone() {
        let mut defs = Vec::new();
        let e = eliminate_div_mod(&Expr::binop(BinOp::Div, v("a"), v("b")), &mut defs);
        assert!(defs.is_empty());
        assert_eq!(e, Expr::binop(BinOp::Div, v("a"), v("b")));
    }

    #[test]
    fn modulo_by_constant_is_defined_away() {
        let mut defs = Vec::new();
        let e = eliminate_div_mod(&Expr::binop(BinOp::Mod, v("a"), Expr::int(4)), &mut defs);
        assert_eq!(defs.len(), 3);
        assert!(matches!(e, Expr::Var(_)));
    }

    #[test]
    fn boolean_ite_becomes_disjunction() {
        let e = Expr::ite(v("c"), v("p"), v("q"));
        let out = eliminate_ite(&e);
        assert!(!format!("{out:?}").contains("Ite"));
    }

    #[test]
    fn term_ite_splits_enclosing_comparison() {
        // (if c then 1 else 0) <= x
        let e = Expr::le(Expr::ite(v("c"), Expr::int(1), Expr::int(0)), v("x"));
        let out = eliminate_ite(&e);
        assert!(!format!("{out:?}").contains("Ite"));
        // The result must mention both branches.
        let s = format!("{out}");
        assert!(s.contains('1') && s.contains('0'));
    }

    #[test]
    fn ackermannization_replaces_applications() {
        let ctx = {
            let mut c = int_ctx(&["i", "j"]);
            c.push(Name::intern("arr"), Sort::Array);
            c
        };
        let e = Expr::eq(
            Expr::app("select", vec![v("arr"), v("i")]),
            Expr::app("select", vec![v("arr"), v("j")]),
        );
        let mut axioms = Vec::new();
        let (out, _ext) = ackermannize(&e, &ctx, &mut axioms);
        assert!(!format!("{out:?}").contains("App"));
        // One functional-consistency axiom for the two applications.
        assert_eq!(axioms.len(), 1);
        assert!(format!("{}", axioms[0]).contains("=>"));
    }

    #[test]
    fn identical_applications_share_a_variable() {
        let ctx = {
            let mut c = int_ctx(&["i"]);
            c.push(Name::intern("arr"), Sort::Array);
            c
        };
        let e = Expr::le(
            Expr::app("select", vec![v("arr"), v("i")]),
            Expr::app("select", vec![v("arr"), v("i")]),
        );
        let mut axioms = Vec::new();
        let (out, _) = ackermannize(&e, &ctx, &mut axioms);
        assert!(axioms.is_empty());
        if let Expr::BinOp(BinOp::Le, l, r) = out {
            assert_eq!(l, r);
        } else {
            panic!("expected comparison");
        }
    }

    #[test]
    fn lt_becomes_le_with_offset() {
        let ctx = int_ctx(&["i", "n"]);
        let out = normalize_comparisons(&Expr::lt(v("i"), v("n")), &ctx);
        assert_eq!(out, Expr::le(v("i") + Expr::int(1), v("n")));
    }

    #[test]
    fn int_equality_becomes_two_les() {
        let ctx = int_ctx(&["a", "b"]);
        let out = normalize_comparisons(&Expr::eq(v("a"), v("b")), &ctx);
        assert_eq!(
            out,
            Expr::and(Expr::le(v("a"), v("b")), Expr::le(v("b"), v("a")))
        );
    }

    #[test]
    fn bool_equality_becomes_iff() {
        let mut ctx = SortCtx::new();
        ctx.push(Name::intern("p"), Sort::Bool);
        ctx.push(Name::intern("q"), Sort::Bool);
        let out = normalize_comparisons(&Expr::eq(v("p"), v("q")), &ctx);
        assert_eq!(out, Expr::iff(v("p"), v("q")));
    }

    #[test]
    fn disequality_becomes_disjunction() {
        let ctx = int_ctx(&["a", "b"]);
        let out = normalize_comparisons(&Expr::ne(v("a"), v("b")), &ctx);
        assert!(matches!(out, Expr::BinOp(BinOp::Or, _, _)));
    }

    #[test]
    fn normalization_descends_under_quantifiers() {
        let ctx = int_ctx(&["n"]);
        let j = Name::intern("j");
        let e = Expr::forall(
            vec![(j, Sort::Int)],
            Expr::imp(
                Expr::lt(Expr::var(j), v("n")),
                Expr::ge(Expr::var(j), Expr::int(0)),
            ),
        );
        let out = normalize_comparisons(&e, &ctx);
        let printed = format!("{out}");
        assert!(
            !printed.contains('<') || printed.contains("<="),
            "still has strict comparison: {printed}"
        );
    }
}
