//! Exact rational arithmetic used by the simplex-based theory solver.
//!
//! Numerator and denominator are `i128`.  The verification conditions this
//! solver sees have tiny coefficients (indices, lengths, small literals), so
//! `i128` gives an enormous safety margin; arithmetic uses checked operations
//! and panics on overflow rather than silently producing wrong answers.

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// An exact rational number.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Rational {
    num: i128,
    den: i128, // always > 0
}

impl Default for Rational {
    fn default() -> Self {
        Rational::ZERO
    }
}

fn gcd(a: i128, b: i128) -> i128 {
    let (mut a, mut b) = (a.abs(), b.abs());
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a.max(1)
}

impl Rational {
    /// Zero.
    pub const ZERO: Rational = Rational { num: 0, den: 1 };
    /// One.
    pub const ONE: Rational = Rational { num: 1, den: 1 };

    /// Creates the rational `num / den`.
    ///
    /// # Panics
    ///
    /// Panics if `den == 0`.
    pub fn new(num: i128, den: i128) -> Rational {
        assert!(den != 0, "rational with zero denominator");
        let sign = if den < 0 { -1 } else { 1 };
        let g = gcd(num, den);
        Rational {
            num: sign * num / g,
            den: sign * den / g,
        }
    }

    /// Creates the integer rational `i/1`.
    pub fn int(i: i128) -> Rational {
        Rational { num: i, den: 1 }
    }

    /// The numerator (after normalisation).
    pub fn numer(self) -> i128 {
        self.num
    }

    /// The denominator (always positive).
    pub fn denom(self) -> i128 {
        self.den
    }

    /// True if the value is an integer.
    pub fn is_integer(self) -> bool {
        self.den == 1
    }

    /// True if the value is zero.
    pub fn is_zero(self) -> bool {
        self.num == 0
    }

    /// True if the value is strictly positive.
    pub fn is_positive(self) -> bool {
        self.num > 0
    }

    /// True if the value is strictly negative.
    pub fn is_negative(self) -> bool {
        self.num < 0
    }

    /// The greatest integer less than or equal to this rational.
    pub fn floor(self) -> i128 {
        self.num.div_euclid(self.den)
    }

    /// The least integer greater than or equal to this rational.
    pub fn ceil(self) -> i128 {
        -((-self.num).div_euclid(self.den))
    }

    /// Multiplicative inverse.
    ///
    /// # Panics
    ///
    /// Panics if the value is zero.
    pub fn recip(self) -> Rational {
        Rational::new(self.den, self.num)
    }

    /// Converts to an `f64` approximation (only used in diagnostics).
    pub fn to_f64(self) -> f64 {
        self.num as f64 / self.den as f64
    }

    fn checked_binop(
        a: Rational,
        b: Rational,
        f: impl Fn(i128, i128, i128, i128) -> (i128, i128),
    ) -> Rational {
        let (num, den) = f(a.num, a.den, b.num, b.den);
        Rational::new(num, den)
    }
}

impl Add for Rational {
    type Output = Rational;
    fn add(self, rhs: Rational) -> Rational {
        Rational::checked_binop(self, rhs, |an, ad, bn, bd| {
            (
                an.checked_mul(bd)
                    .and_then(|x| bn.checked_mul(ad).and_then(|y| x.checked_add(y)))
                    .expect("rational overflow in addition"),
                ad.checked_mul(bd).expect("rational overflow in addition"),
            )
        })
    }
}

impl Sub for Rational {
    type Output = Rational;
    fn sub(self, rhs: Rational) -> Rational {
        self + (-rhs)
    }
}

impl Mul for Rational {
    type Output = Rational;
    fn mul(self, rhs: Rational) -> Rational {
        Rational::checked_binop(self, rhs, |an, ad, bn, bd| {
            (
                an.checked_mul(bn)
                    .expect("rational overflow in multiplication"),
                ad.checked_mul(bd)
                    .expect("rational overflow in multiplication"),
            )
        })
    }
}

impl Div for Rational {
    type Output = Rational;
    #[allow(clippy::suspicious_arithmetic_impl)] // division as multiplication by the reciprocal
    fn div(self, rhs: Rational) -> Rational {
        self * rhs.recip()
    }
}

impl Neg for Rational {
    type Output = Rational;
    fn neg(self) -> Rational {
        Rational {
            num: -self.num,
            den: self.den,
        }
    }
}

impl AddAssign for Rational {
    fn add_assign(&mut self, rhs: Rational) {
        *self = *self + rhs;
    }
}

impl SubAssign for Rational {
    fn sub_assign(&mut self, rhs: Rational) {
        *self = *self - rhs;
    }
}

impl PartialOrd for Rational {
    fn partial_cmp(&self, other: &Rational) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Rational {
    fn cmp(&self, other: &Rational) -> Ordering {
        let lhs = self
            .num
            .checked_mul(other.den)
            .expect("rational overflow in comparison");
        let rhs = other
            .num
            .checked_mul(self.den)
            .expect("rational overflow in comparison");
        lhs.cmp(&rhs)
    }
}

impl From<i128> for Rational {
    fn from(i: i128) -> Rational {
        Rational::int(i)
    }
}

impl fmt::Debug for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == 1 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

impl fmt::Display for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testing::Rng;

    #[test]
    fn construction_normalises() {
        assert_eq!(Rational::new(2, 4), Rational::new(1, 2));
        assert_eq!(Rational::new(-2, -4), Rational::new(1, 2));
        assert_eq!(Rational::new(2, -4), Rational::new(-1, 2));
        assert_eq!(Rational::new(0, 5), Rational::ZERO);
    }

    #[test]
    #[should_panic(expected = "zero denominator")]
    fn zero_denominator_panics() {
        let _ = Rational::new(1, 0);
    }

    #[test]
    fn arithmetic_basics() {
        let half = Rational::new(1, 2);
        let third = Rational::new(1, 3);
        assert_eq!(half + third, Rational::new(5, 6));
        assert_eq!(half - third, Rational::new(1, 6));
        assert_eq!(half * third, Rational::new(1, 6));
        assert_eq!(half / third, Rational::new(3, 2));
        assert_eq!(-half, Rational::new(-1, 2));
    }

    #[test]
    fn ordering() {
        assert!(Rational::new(1, 3) < Rational::new(1, 2));
        assert!(Rational::new(-1, 2) < Rational::ZERO);
        assert!(Rational::int(2) > Rational::new(3, 2));
    }

    #[test]
    fn floor_and_ceil() {
        assert_eq!(Rational::new(7, 2).floor(), 3);
        assert_eq!(Rational::new(7, 2).ceil(), 4);
        assert_eq!(Rational::new(-7, 2).floor(), -4);
        assert_eq!(Rational::new(-7, 2).ceil(), -3);
        assert_eq!(Rational::int(5).floor(), 5);
        assert_eq!(Rational::int(5).ceil(), 5);
    }

    #[test]
    fn integrality() {
        assert!(Rational::int(3).is_integer());
        assert!(!Rational::new(3, 2).is_integer());
    }

    #[test]
    fn display_forms() {
        assert_eq!(Rational::new(3, 2).to_string(), "3/2");
        assert_eq!(Rational::int(-4).to_string(), "-4");
    }

    #[test]
    fn addition_commutes() {
        let mut rng = Rng::new(0x2A7_5EED);
        for _ in 0..256 {
            let x = Rational::new(rng.int_in(-1000, 999), rng.int_in(1, 99));
            let y = Rational::new(rng.int_in(-1000, 999), rng.int_in(1, 99));
            assert_eq!(x + y, y + x);
        }
    }

    #[test]
    fn floor_le_value_le_ceil() {
        let mut rng = Rng::new(0x2A7_5EEE);
        for _ in 0..256 {
            let x = Rational::new(rng.int_in(-1000, 999), rng.int_in(1, 99));
            assert!(Rational::int(x.floor()) <= x);
            assert!(x <= Rational::int(x.ceil()));
            assert!(x.ceil() - x.floor() <= 1);
        }
    }

    #[test]
    fn sub_then_add_roundtrips() {
        let mut rng = Rng::new(0x2A7_5EEF);
        for _ in 0..256 {
            let x = Rational::new(rng.int_in(-1000, 999), rng.int_in(1, 99));
            let y = Rational::new(rng.int_in(-1000, 999), rng.int_in(1, 99));
            assert_eq!(x - y + y, x);
        }
    }

    #[test]
    fn recip_is_involutive() {
        let mut rng = Rng::new(0x2A7_5EF0);
        for _ in 0..256 {
            let x = Rational::new(rng.int_in(1, 999), rng.int_in(1, 99));
            assert_eq!(x.recip().recip(), x);
        }
    }
}
