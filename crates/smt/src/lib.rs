//! A from-scratch SMT solver for the Flux reproduction.
//!
//! The original Flux implementation discharges its verification conditions
//! with Z3 (via liquid-fixpoint).  This workspace has no external solver
//! available, so this crate provides the substrate: a lazy DPLL(T) solver
//! combining
//!
//! * a CDCL SAT core ([`sat`]),
//! * a linear integer arithmetic theory solver (general simplex with
//!   branch-and-bound, [`simplex`]),
//! * Tseitin CNF conversion over theory atoms ([`cnf`]),
//! * preprocessing passes (integer division elimination, `ite` removal,
//!   Ackermann reduction of uninterpreted functions, comparison
//!   normalisation; [`preprocess`]), and
//! * bounded quantifier instantiation ([`quant`]) used only by the
//!   program-logic baseline.
//!
//! The public entry points are [`Solver::check_sat`],
//! [`Solver::check_valid_imp`] and, for callers that check many goals
//! against one set of hypotheses, the incremental [`Session`] API
//! ([`Solver::assume`] / [`Session::check`]), which preprocesses and
//! CNF-converts the shared hypothesis context once and persists learned
//! theory lemmas across goals.
//!
//! # Example
//!
//! ```
//! use flux_logic::{Expr, Name, Sort, SortCtx};
//! use flux_smt::Solver;
//!
//! let mut ctx = SortCtx::new();
//! ctx.push(Name::intern("n"), Sort::Int);
//! let n = Expr::var(Name::intern("n"));
//!
//! let mut solver = Solver::with_defaults();
//! let hyps = vec![Expr::gt(n.clone(), Expr::int(0))];
//! let goal = Expr::ge(n - Expr::int(1), Expr::int(0));
//! assert!(solver.check_valid_imp(&ctx, &hyps, &goal).is_valid());
//! ```

#![warn(missing_docs)]

pub mod atoms;
pub mod audit;
pub mod budget;
pub mod cnf;
pub mod linear;
pub mod preprocess;
pub mod quant;
pub mod rational;
pub mod sat;
mod session;
pub mod simplex;
mod solver;
pub mod testing;

pub use budget::ResourceBudget;
pub use quant::QuantConfig;
pub use sat::SatConfig;
pub use session::{
    cnf_cache_evictions, cnf_cache_len, cnf_shard_contentions, set_cnf_cache_capacity, Session,
    CNF_SHARDS,
};
pub use simplex::LiaConfig;
pub use solver::{MaxTheoryRounds, Model, SatOutcome, SmtConfig, SmtStats, Solver, Validity};

/// True when the `FLUX_LEGACY` environment variable selects the historical
/// engine paths: scan-based SAT propagation, no blocking literals, no
/// learned-clause-DB reduction, full-row simplex scans, and (in the layers
/// above) tree-based counter-model evaluation and session rebuild instead
/// of conjunct retraction.  Every default-configured solver consults this
/// once (the variable is read a single time per process), so CI can run the
/// whole suite with the legacy toggles flipped in one environment line.
/// Any non-empty value other than `0` enables legacy mode.
pub fn legacy_toggles() -> bool {
    static LEGACY: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *LEGACY.get_or_init(|| match std::env::var("FLUX_LEGACY") {
        Ok(v) => !v.is_empty() && v != "0",
        Err(_) => false,
    })
}

#[cfg(test)]
mod randtests {
    //! Randomised differential tests against the brute-force evaluator.
    //!
    //! The build environment has no access to crates.io, so instead of
    //! proptest these use a small deterministic xorshift generator: the same
    //! formulas are exercised on every run, which keeps failures
    //! reproducible by case index.

    use super::*;
    use crate::testing::Rng;
    use flux_logic::{BinOp, Expr, Name, Sort, SortCtx};

    /// A small quantifier-free formula over integer variables `a`, `b` and
    /// boolean variable `p`, mirroring the old proptest strategy.
    fn gen_expr(rng: &mut Rng, depth: usize) -> Expr {
        fn gen_term(rng: &mut Rng) -> Expr {
            match rng.below(3) {
                0 => Expr::var(Name::intern("a")),
                1 => Expr::var(Name::intern("b")),
                _ => Expr::int(rng.below(7) as i128 - 3),
            }
        }
        if depth == 0 || rng.below(3) == 0 {
            // Leaf: a comparison atom or the boolean variable.
            if rng.below(6) == 0 {
                return Expr::var(Name::intern("p"));
            }
            let l = gen_term(rng);
            let r = gen_term(rng);
            return match rng.below(5) {
                0 => Expr::lt(l, r),
                1 => Expr::le(l, r),
                2 => Expr::eq(l, r),
                3 => Expr::ge(l + Expr::int(1), r),
                _ => Expr::ne(l, r - Expr::int(1)),
            };
        }
        let l = gen_expr(rng, depth - 1);
        match rng.below(4) {
            0 => Expr::and(l, gen_expr(rng, depth - 1)),
            1 => Expr::or(l, gen_expr(rng, depth - 1)),
            2 => Expr::imp(l, gen_expr(rng, depth - 1)),
            _ => Expr::not(l),
        }
    }

    fn ctx() -> SortCtx {
        let mut ctx = SortCtx::new();
        ctx.push(Name::intern("a"), Sort::Int);
        ctx.push(Name::intern("b"), Sort::Int);
        ctx.push(Name::intern("p"), Sort::Bool);
        ctx
    }

    /// The solver and the brute-force evaluator agree on satisfiability
    /// whenever brute force over a small box finds a model, and the solver
    /// never reports UNSAT for a formula with a model in the box.
    #[test]
    fn solver_agrees_with_brute_force() {
        let mut rng = Rng::new(0x5EED_0001);
        for case in 0..96 {
            let e = gen_expr(&mut rng, 3);
            let ctx = ctx();
            let domain: Vec<i128> = (-4..=4).collect();
            let brute = testing::brute_force_sat(&ctx, &e, &domain);
            let mut solver = Solver::with_defaults();
            match solver.check_sat(&ctx, &e) {
                SatOutcome::Unsat => {
                    // Definitely no model anywhere, so certainly none in the box.
                    assert_ne!(
                        brute,
                        Some(true),
                        "case {case}: unsat but box model exists: {e}"
                    );
                }
                SatOutcome::Sat(model) => {
                    // Check the model against the original formula directly.
                    let mut env = testing::Env::new();
                    for (name, value) in &model.ints {
                        env.insert(*name, testing::Value::Int(*value));
                    }
                    for (name, value) in &model.bools {
                        env.insert(*name, testing::Value::Bool(*value));
                    }
                    // Unmentioned variables default to 0 / false.
                    for (name, sort) in ctx.iter() {
                        env.entry(name).or_insert(match sort {
                            Sort::Bool => testing::Value::Bool(false),
                            _ => testing::Value::Int(0),
                        });
                    }
                    if let Some(testing::Value::Bool(holds)) = testing::eval(&e, &env, &[]) {
                        assert!(holds, "case {case}: model does not satisfy formula {e}");
                    }
                }
                SatOutcome::Unknown => {}
            }
        }
    }

    /// Validity of `h ⟹ g` agrees with brute-force over the box: if the
    /// solver says valid, no point in the box may violate it.
    #[test]
    fn validity_is_sound_on_box() {
        let mut rng = Rng::new(0x5EED_0002);
        for case in 0..96 {
            let h = gen_expr(&mut rng, 3);
            let g = gen_expr(&mut rng, 3);
            let ctx = ctx();
            let domain: Vec<i128> = (-3..=3).collect();
            let mut solver = Solver::with_defaults();
            if solver.check_valid_imp(&ctx, &[h.clone()], &g).is_valid() {
                let negated = Expr::and(h, Expr::binop(BinOp::And, Expr::not(g), Expr::tt()));
                assert_ne!(
                    testing::brute_force_sat(&ctx, &negated, &domain),
                    Some(true),
                    "case {case}: solver claimed validity but brute force found a counterexample"
                );
            }
        }
    }

    /// The incremental session path and the one-shot path agree on every
    /// randomly generated implication (the tentpole equivalence property).
    #[test]
    fn session_agrees_with_one_shot_on_random_implications() {
        let mut rng = Rng::new(0x5EED_0003);
        for case in 0..96 {
            let h = gen_expr(&mut rng, 3);
            let g1 = gen_expr(&mut rng, 3);
            let g2 = gen_expr(&mut rng, 3);
            let ctx = ctx();
            let mut one_shot = Solver::with_defaults();
            let mut session = Session::assume(SmtConfig::default(), &ctx, &[h.clone()]);
            for goal in [&g1, &g2] {
                let reference = one_shot.check_valid_imp(&ctx, &[h.clone()], goal);
                let incremental = session.check(goal);
                assert_eq!(
                    incremental.is_valid(),
                    reference.is_valid(),
                    "case {case}: session and one-shot disagree on {h} => {goal}"
                );
            }
        }
    }

    /// Running the full audit tier — certified conflicts, validated models,
    /// Tseitin spot-checks, SAT invariant sweeps — is verdict-identical to
    /// running unaudited, on both the session and one-shot paths, and the
    /// certificate counter actually moves.  (The tier is set through the
    /// config, not the process-global `FLUX_AUDIT`, so the test is
    /// hermetic.)
    #[test]
    fn full_audit_tier_is_verdict_identical() {
        let audited_config = SmtConfig {
            audit: flux_logic::AuditTier::Full,
            ..SmtConfig::default()
        };
        let plain_config = SmtConfig {
            audit: flux_logic::AuditTier::Off,
            ..SmtConfig::default()
        };
        let mut rng = Rng::new(0x5EED_0004);
        let mut certs = 0usize;
        for case in 0..96 {
            let h = gen_expr(&mut rng, 3);
            let g = gen_expr(&mut rng, 3);
            let ctx = ctx();
            let mut plain = Solver::new(plain_config);
            let mut audited = Solver::new(audited_config);
            let reference = plain.check_valid_imp(&ctx, &[h.clone()], &g);
            let checked = audited.check_valid_imp(&ctx, &[h.clone()], &g);
            assert_eq!(
                checked.is_valid(),
                reference.is_valid(),
                "case {case}: audited and plain solvers disagree on {h} => {g}"
            );
            assert_eq!(plain.stats.certs_checked, 0);
            certs += audited.stats.certs_checked;
        }
        assert!(certs > 0, "the full tier never checked a certificate");
    }
}
