//! A from-scratch SMT solver for the Flux reproduction.
//!
//! The original Flux implementation discharges its verification conditions
//! with Z3 (via liquid-fixpoint).  This workspace has no external solver
//! available, so this crate provides the substrate: a lazy DPLL(T) solver
//! combining
//!
//! * a CDCL SAT core ([`sat`]),
//! * a linear integer arithmetic theory solver (general simplex with
//!   branch-and-bound, [`simplex`]),
//! * Tseitin CNF conversion over theory atoms ([`cnf`]),
//! * preprocessing passes (integer division elimination, `ite` removal,
//!   Ackermann reduction of uninterpreted functions, comparison
//!   normalisation; [`preprocess`]), and
//! * bounded quantifier instantiation ([`quant`]) used only by the
//!   program-logic baseline.
//!
//! The public entry points are [`Solver::check_sat`] and
//! [`Solver::check_valid_imp`].
//!
//! # Example
//!
//! ```
//! use flux_logic::{Expr, Name, Sort, SortCtx};
//! use flux_smt::Solver;
//!
//! let mut ctx = SortCtx::new();
//! ctx.push(Name::intern("n"), Sort::Int);
//! let n = Expr::var(Name::intern("n"));
//!
//! let mut solver = Solver::with_defaults();
//! let hyps = vec![Expr::gt(n.clone(), Expr::int(0))];
//! let goal = Expr::ge(n - Expr::int(1), Expr::int(0));
//! assert!(solver.check_valid_imp(&ctx, &hyps, &goal).is_valid());
//! ```

#![warn(missing_docs)]

pub mod atoms;
pub mod cnf;
pub mod linear;
pub mod preprocess;
pub mod quant;
pub mod rational;
pub mod sat;
pub mod simplex;
mod solver;
pub mod testing;

pub use quant::QuantConfig;
pub use sat::SatConfig;
pub use simplex::LiaConfig;
pub use solver::{MaxTheoryRounds, Model, SatOutcome, SmtConfig, SmtStats, Solver, Validity};

#[cfg(test)]
mod proptests {
    use super::*;
    use flux_logic::{BinOp, Expr, Name, Sort, SortCtx};
    use proptest::prelude::*;

    /// Strategy for small quantifier-free formulas over integer variables
    /// `a`, `b` and boolean variable `p`.
    fn arb_expr() -> impl Strategy<Value = Expr> {
        let term = prop_oneof![
            Just(Expr::var(Name::intern("a"))),
            Just(Expr::var(Name::intern("b"))),
            (-3i128..=3).prop_map(Expr::int),
        ];
        let atom = (term.clone(), term, 0usize..5).prop_map(|(l, r, op)| match op {
            0 => Expr::lt(l, r),
            1 => Expr::le(l, r),
            2 => Expr::eq(l, r),
            3 => Expr::ge(l + Expr::int(1), r),
            _ => Expr::ne(l, r - Expr::int(1)),
        });
        let leaf = prop_oneof![atom, Just(Expr::var(Name::intern("p")))];
        leaf.prop_recursive(3, 24, 2, |inner| {
            (inner.clone(), inner, 0usize..4).prop_map(|(l, r, op)| match op {
                0 => Expr::and(l, r),
                1 => Expr::or(l, r),
                2 => Expr::imp(l, r),
                _ => Expr::not(l),
            })
        })
    }

    fn ctx() -> SortCtx {
        let mut ctx = SortCtx::new();
        ctx.push(Name::intern("a"), Sort::Int);
        ctx.push(Name::intern("b"), Sort::Int);
        ctx.push(Name::intern("p"), Sort::Bool);
        ctx
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(96))]

        /// The solver and the brute-force evaluator agree on satisfiability
        /// whenever brute force over a small box finds a model, and the
        /// solver never reports UNSAT for a formula with a model in the box.
        #[test]
        fn solver_agrees_with_brute_force(e in arb_expr()) {
            let ctx = ctx();
            let domain: Vec<i128> = (-4..=4).collect();
            let brute = testing::brute_force_sat(&ctx, &e, &domain);
            let mut solver = Solver::with_defaults();
            match solver.check_sat(&ctx, &e) {
                SatOutcome::Unsat => {
                    // Definitely no model anywhere, so certainly none in the box.
                    prop_assert_ne!(brute, Some(true));
                }
                SatOutcome::Sat(model) => {
                    // Check the model against the original formula directly.
                    let mut env = testing::Env::new();
                    for (name, value) in &model.ints {
                        env.insert(*name, testing::Value::Int(*value));
                    }
                    for (name, value) in &model.bools {
                        env.insert(*name, testing::Value::Bool(*value));
                    }
                    // Unmentioned variables default to 0 / false.
                    for (name, sort) in ctx.iter() {
                        env.entry(name).or_insert(match sort {
                            Sort::Bool => testing::Value::Bool(false),
                            _ => testing::Value::Int(0),
                        });
                    }
                    if let Some(testing::Value::Bool(holds)) = testing::eval(&e, &env, &[]) {
                        prop_assert!(holds, "model returned by solver does not satisfy formula {e}");
                    }
                }
                SatOutcome::Unknown => {}
            }
        }

        /// Validity of `h ⟹ g` agrees with brute-force over the box: if the
        /// solver says valid, no point in the box may violate it.
        #[test]
        fn validity_is_sound_on_box(h in arb_expr(), g in arb_expr()) {
            let ctx = ctx();
            let domain: Vec<i128> = (-3..=3).collect();
            let mut solver = Solver::with_defaults();
            if solver.check_valid_imp(&ctx, &[h.clone()], &g).is_valid() {
                let negated = Expr::and(h, Expr::binop(BinOp::And, Expr::not(g), Expr::tt()));
                prop_assert_ne!(
                    testing::brute_force_sat(&ctx, &negated, &domain),
                    Some(true),
                    "solver claimed validity but brute force found a counterexample"
                );
            }
        }
    }
}
