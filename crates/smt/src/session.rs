//! Incremental solver sessions.
//!
//! The liquid-inference weakening loop asks the same question shape over and
//! over: *given this clause's hypotheses, is candidate conjunct q implied?*
//! The hypotheses stay fixed while the goal varies, yet one-shot
//! [`crate::Solver::check_valid_imp`] rebuilds the entire pipeline —
//! simplification, preprocessing, Tseitin CNF conversion, a fresh SAT solver
//! and simplex — for every goal.
//!
//! A [`Session`] splits the pipeline at the hypothesis/goal boundary:
//!
//! * [`Session::assume`] preprocesses and CNF-converts the conjunction of
//!   hypotheses **once**, interning its theory atoms into a table that
//!   persists for the session's lifetime;
//! * [`Session::check`] preprocesses only the (negated) goal, appends its
//!   clauses to the persisted hypothesis CNF, and runs the DPLL(T) loop.
//!   Theory lemmas learned from simplex conflicts are tautologies over the
//!   shared atom table, so they carry over from goal to goal and prune the
//!   SAT search of later checks.
//!
//! Splitting is only sound for the quantifier-free, application-free
//! fragment (quantifier instantiation and Ackermann expansion both need the
//! whole formula).  Flux's verification conditions live entirely in that
//! fragment — that is the point of the paper; anything outside it falls back
//! to the one-shot pipeline per goal, so a session always returns the same
//! verdicts as one-shot solving.

use crate::atoms::{AtomTable, Lit};
use crate::cnf::tseitin;
use crate::preprocess::{eliminate_div_mod, eliminate_ite, normalize_comparisons};
use crate::solver::{check_sat_impl, dpll_t, SatOutcome, SmtConfig, SmtStats, Validity};
use flux_logic::{simplify, Expr, ExprId, SortCtx};

/// How goals of this session are discharged.
enum Mode {
    /// Hypotheses are preprocessed into `hyp_clauses`; goals are converted
    /// incrementally against the shared atom table.
    Incremental,
    /// The hypotheses simplified to `false`: every implication is valid.
    Contradictory,
    /// The hypotheses fall outside the incremental fragment (quantifiers or
    /// uninterpreted applications); every check runs the one-shot pipeline
    /// on the combined formula.
    OneShot,
}

/// An incremental solving session: a fixed hypothesis context plus
/// per-session solver state reused across goal checks.
pub struct Session {
    config: SmtConfig,
    ctx: SortCtx,
    stats: SmtStats,
    mode: Mode,
    /// Original hypotheses, kept for one-shot fallbacks.
    hypotheses: Vec<Expr>,
    /// Atom table shared by the hypothesis CNF and all goal CNFs.
    atoms: AtomTable,
    /// CNF of the preprocessed hypotheses (empty when trivially true).
    hyp_clauses: Vec<Vec<Lit>>,
    /// Theory lemmas learned so far; valid across all checks.
    lemmas: Vec<Vec<Lit>>,
}

impl Session {
    /// Opens a session that assumes `hypotheses` under `ctx`.
    ///
    /// Preprocessing and CNF conversion of the hypotheses happen here,
    /// once; each subsequent [`Session::check`] only pays for its goal.
    pub fn assume(config: SmtConfig, ctx: &SortCtx, hypotheses: &[Expr]) -> Session {
        let mut session = Session {
            config,
            ctx: ctx.clone(),
            stats: SmtStats {
                sessions: 1,
                ..SmtStats::default()
            },
            mode: Mode::Incremental,
            hypotheses: hypotheses.to_vec(),
            atoms: AtomTable::new(),
            hyp_clauses: Vec::new(),
            lemmas: Vec::new(),
        };
        // Simplify through the hash-cons memo: the weakening loop re-opens
        // sessions for the same clause whenever a new goal misses the
        // validity cache, and the memo makes re-simplifying an
        // already-seen hypothesis conjunction O(1).
        let h = ExprId::intern(&Expr::and_all(hypotheses.iter().cloned()))
            .simplified()
            .expr();
        if h.is_trivially_false() {
            session.mode = Mode::Contradictory;
            return session;
        }
        if h.has_quantifier() || h.has_app() {
            session.mode = Mode::OneShot;
            return session;
        }
        match preprocess_qf(&h, &session.ctx) {
            Preprocessed::False => session.mode = Mode::Contradictory,
            Preprocessed::True => {} // no hypothesis clauses to assert
            Preprocessed::Formula(f) => match tseitin(&f, &mut session.atoms) {
                Ok(cnf) => session.hyp_clauses = cnf.clauses,
                // Defensive: the preprocessed QF fragment should always
                // convert; degrade to one-shot rather than give up.
                Err(_) => session.mode = Mode::OneShot,
            },
        }
        session
    }

    /// Checks the validity of `hypotheses ⟹ goal`.
    ///
    /// Produces the same verdict as
    /// [`crate::Solver::check_valid_imp`] on the same inputs.
    pub fn check(&mut self, goal: &Expr) -> Validity {
        self.stats.queries += 1;
        match self.mode {
            Mode::Contradictory => Validity::Valid,
            Mode::OneShot => self.check_one_shot(goal),
            Mode::Incremental => {
                if goal.has_quantifier() || goal.has_app() {
                    return self.check_one_shot(goal);
                }
                let negated = simplify(&Expr::not(goal.clone()));
                let goal_clauses = match preprocess_qf(&negated, &self.ctx) {
                    // ¬goal is false: the implication holds outright.
                    Preprocessed::False => return Validity::Valid,
                    // ¬goal is true: satisfiability reduces to the
                    // hypotheses alone, i.e. no extra clauses.
                    Preprocessed::True => Vec::new(),
                    Preprocessed::Formula(f) => match tseitin(&f, &mut self.atoms) {
                        Ok(cnf) => cnf.clauses,
                        Err(_) => return self.check_one_shot(goal),
                    },
                };
                let outcome = dpll_t(
                    &self.config,
                    &self.hyp_clauses,
                    &goal_clauses,
                    &mut self.atoms,
                    &mut self.lemmas,
                    &mut self.stats,
                );
                match outcome {
                    SatOutcome::Unsat => Validity::Valid,
                    SatOutcome::Sat(model) => Validity::Invalid(Some(model)),
                    SatOutcome::Unknown => Validity::Unknown,
                }
            }
        }
    }

    fn check_one_shot(&mut self, goal: &Expr) -> Validity {
        let negated = Expr::and(
            Expr::and_all(self.hypotheses.iter().cloned()),
            Expr::not(goal.clone()),
        );
        match check_sat_impl(&self.config, &self.ctx, &negated, &mut self.stats) {
            SatOutcome::Unsat => Validity::Valid,
            SatOutcome::Sat(model) => Validity::Invalid(Some(model)),
            SatOutcome::Unknown => Validity::Unknown,
        }
    }

    /// Statistics accumulated by this session.
    pub fn stats(&self) -> &SmtStats {
        &self.stats
    }

    /// Number of theory lemmas currently persisted across checks.
    pub fn lemma_count(&self) -> usize {
        self.lemmas.len()
    }
}

enum Preprocessed {
    True,
    False,
    Formula(Expr),
}

/// The quantifier-free, application-free slice of the one-shot pipeline
/// (steps 3, 4 and 6 of [`check_sat_impl`]); quantifier elimination and
/// Ackermannization are identities on this fragment.
fn preprocess_qf(formula: &Expr, ctx: &SortCtx) -> Preprocessed {
    let mut defs = Vec::new();
    let f = eliminate_div_mod(formula, &mut defs);
    let f = Expr::and(f, Expr::and_all(defs));
    let f = eliminate_ite(&f);
    let f = normalize_comparisons(&f, ctx);
    let f = simplify(&f);
    if f.is_trivially_true() {
        Preprocessed::True
    } else if f.is_trivially_false() {
        Preprocessed::False
    } else {
        Preprocessed::Formula(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::Solver;
    use flux_logic::{Name, Sort};

    fn v(s: &str) -> Expr {
        Expr::var(Name::intern(s))
    }

    fn int_ctx(vars: &[&str]) -> SortCtx {
        let mut ctx = SortCtx::new();
        for name in vars {
            ctx.push(Name::intern(name), Sort::Int);
        }
        ctx
    }

    /// Checks that a session and one-shot solving agree on each
    /// (hypotheses, goal) pair, reusing one session per hypothesis set.
    fn assert_matches_one_shot(ctx: &SortCtx, hyps: &[Expr], goals: &[Expr]) {
        let mut session = Session::assume(SmtConfig::default(), ctx, hyps);
        for goal in goals {
            let mut one_shot = Solver::with_defaults();
            let reference = one_shot.check_valid_imp(ctx, hyps, goal);
            let incremental = session.check(goal);
            match (&incremental, &reference) {
                (Validity::Valid, Validity::Valid)
                | (Validity::Invalid(_), Validity::Invalid(_))
                | (Validity::Unknown, Validity::Unknown) => {}
                _ => panic!(
                    "session disagreed with one-shot on {goal}: {incremental:?} vs {reference:?}"
                ),
            }
        }
    }

    #[test]
    fn verdict_matrix_matches_one_shot() {
        let ctx = int_ctx(&["i", "n"]);
        let i = v("i");
        let n = v("n");
        let hyps = vec![
            Expr::ge(i.clone(), Expr::int(0)),
            Expr::lt(i.clone(), n.clone()),
        ];
        let goals = vec![
            // Valid: i + 1 <= n.
            Expr::le(i.clone() + Expr::int(1), n.clone()),
            // Invalid: i >= 1.
            Expr::ge(i.clone(), Expr::int(1)),
            // Valid: n > 0.
            Expr::gt(n.clone(), Expr::int(0)),
            // Invalid: i = 0.
            Expr::eq(i.clone(), Expr::int(0)),
            // Trivially valid and trivially invalid goals.
            Expr::tt(),
            Expr::ff(),
        ];
        assert_matches_one_shot(&ctx, &hyps, &goals);
    }

    #[test]
    fn empty_hypotheses_match_one_shot() {
        let ctx = int_ctx(&["x"]);
        let goals = vec![
            Expr::ge(v("x"), v("x")),
            Expr::ge(v("x"), Expr::int(0)),
            Expr::tt(),
        ];
        assert_matches_one_shot(&ctx, &[], &goals);
    }

    #[test]
    fn contradictory_hypotheses_prove_everything() {
        let ctx = int_ctx(&["x"]);
        let hyps = vec![
            Expr::lt(v("x"), Expr::int(0)),
            Expr::gt(v("x"), Expr::int(0)),
        ];
        let mut session = Session::assume(SmtConfig::default(), &ctx, &hyps);
        assert!(session.check(&Expr::eq(v("x"), Expr::int(99))).is_valid());
        assert!(session.check(&Expr::ff()).is_valid());
    }

    #[test]
    fn boolean_structure_matches_one_shot() {
        let mut ctx = SortCtx::new();
        ctx.push(Name::intern("p"), Sort::Bool);
        ctx.push(Name::intern("q"), Sort::Bool);
        let hyps = vec![v("p"), Expr::imp(v("p"), v("q"))];
        let goals = vec![v("q"), v("p"), Expr::and(v("p"), v("q")), Expr::not(v("q"))];
        assert_matches_one_shot(&ctx, &hyps, &goals);
    }

    #[test]
    fn quantified_hypotheses_fall_back_to_one_shot() {
        let mut ctx = int_ctx(&["i", "lenv"]);
        ctx.push(Name::intern("a"), Sort::Array);
        let j = Name::intern("j");
        let axiom = Expr::forall(
            vec![(j, Sort::Int)],
            Expr::imp(
                Expr::and(
                    Expr::ge(Expr::var(j), Expr::int(0)),
                    Expr::lt(Expr::var(j), v("lenv")),
                ),
                Expr::ge(
                    Expr::app("select", vec![v("a"), Expr::var(j)]),
                    Expr::int(0),
                ),
            ),
        );
        let hyps = vec![
            axiom,
            Expr::ge(v("i"), Expr::int(0)),
            Expr::lt(v("i"), v("lenv")),
        ];
        let goal = Expr::ge(Expr::app("select", vec![v("a"), v("i")]), Expr::int(0));
        let mut session = Session::assume(SmtConfig::default(), &ctx, &hyps);
        assert!(session.check(&goal).is_valid());
    }

    #[test]
    fn uninterpreted_goal_falls_back_to_one_shot() {
        let mut ctx = int_ctx(&["x"]);
        ctx.declare_fn(Name::intern("f"), vec![Sort::Int], Sort::Int);
        let hyps = vec![Expr::eq(v("x"), Expr::int(3))];
        let mut session = Session::assume(SmtConfig::default(), &ctx, &hyps);
        // f(x) = f(3) needs congruence, which only the one-shot
        // Ackermannization provides.
        let goal = Expr::eq(
            Expr::app("f", vec![v("x")]),
            Expr::app("f", vec![Expr::int(3)]),
        );
        assert!(session.check(&goal).is_valid());
    }

    #[test]
    fn division_in_hypotheses_and_goals() {
        let ctx = int_ctx(&["lo", "hi", "n"]);
        let mid = Expr::binop(flux_logic::BinOp::Div, v("lo") + v("hi"), Expr::int(2));
        let hyps = vec![
            Expr::ge(v("lo"), Expr::int(0)),
            Expr::le(v("lo"), v("hi")),
            Expr::lt(v("hi"), v("n")),
        ];
        let goals = vec![
            Expr::lt(mid.clone(), v("n")),
            Expr::ge(mid.clone(), v("lo")),
            Expr::gt(mid, v("hi")),
        ];
        assert_matches_one_shot(&ctx, &hyps, &goals);
    }

    #[test]
    fn counter_models_satisfy_hypotheses() {
        let ctx = int_ctx(&["n"]);
        let hyps = vec![Expr::ge(v("n"), Expr::int(0))];
        let mut session = Session::assume(SmtConfig::default(), &ctx, &hyps);
        match session.check(&Expr::ge(v("n") - Expr::int(1), Expr::int(0))) {
            Validity::Invalid(Some(model)) => {
                let n = model.ints.get(&Name::intern("n")).copied().unwrap_or(0);
                assert!(n == 0, "counter-model should pick n = 0, got {n}");
            }
            other => panic!("expected invalid with model, got {other:?}"),
        }
    }

    #[test]
    fn theory_lemmas_persist_across_checks() {
        let ctx = int_ctx(&["i", "n"]);
        let hyps = vec![Expr::ge(v("i"), Expr::int(0)), Expr::lt(v("i"), v("n"))];
        let mut session = Session::assume(SmtConfig::default(), &ctx, &hyps);
        // Valid goals force theory conflicts, which become persisted lemmas.
        assert!(session
            .check(&Expr::le(v("i") + Expr::int(1), v("n")))
            .is_valid());
        let after_first = session.lemma_count();
        assert!(session.check(&Expr::gt(v("n"), Expr::int(0))).is_valid());
        assert!(
            session.lemma_count() >= after_first,
            "lemmas must never be dropped between checks"
        );
        assert_eq!(session.stats().queries, 2);
        assert_eq!(session.stats().sessions, 1);
    }

    #[test]
    fn session_reuse_is_cheaper_than_one_shot() {
        // The incremental path must do fewer SAT rounds in total than
        // re-solving from scratch, on a workload with shared hypotheses.
        let ctx = int_ctx(&["i", "n"]);
        let hyps = vec![Expr::ge(v("i"), Expr::int(0)), Expr::lt(v("i"), v("n"))];
        let goals: Vec<Expr> = (1..=8)
            .map(|k| Expr::lt(v("i"), v("n") + Expr::int(k)))
            .collect();

        let mut session = Session::assume(SmtConfig::default(), &ctx, &hyps);
        for goal in &goals {
            assert!(session.check(goal).is_valid());
        }
        let incremental_rounds = session.stats().sat_rounds;

        let mut one_shot = Solver::with_defaults();
        for goal in &goals {
            assert!(one_shot
                .check_valid_imp(&ctx, hyps.as_slice(), goal)
                .is_valid());
        }
        let one_shot_rounds = one_shot.stats.sat_rounds;
        assert!(
            incremental_rounds <= one_shot_rounds,
            "incremental path used more SAT rounds ({incremental_rounds}) than one-shot \
             ({one_shot_rounds})"
        );
    }
}
