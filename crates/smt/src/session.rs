//! Incremental solver sessions.
//!
//! The liquid-inference weakening loop asks the same question shape over and
//! over: *given this clause's hypotheses, is candidate conjunct q implied?*
//! The hypotheses stay fixed while the goal varies, yet one-shot
//! [`crate::Solver::check_valid_imp`] rebuilds the entire pipeline —
//! simplification, preprocessing, Tseitin CNF conversion, a fresh SAT solver
//! and simplex — for every goal.
//!
//! A [`Session`] splits the pipeline at the hypothesis/goal boundary and
//! shares work at two levels:
//!
//! * **Across sessions** (process-global): hypothesis conjunctions are built
//!   from a small vocabulary of conjuncts — qualifier instantiations and
//!   guard predicates — that recur in clause after clause, iteration after
//!   iteration.  [`Session::assume`] therefore preprocesses and
//!   CNF-converts each *conjunct* separately through the global
//!   [`CnfCache`]: one shared atom table plus memo tables keyed on
//!   hash-consed [`ExprId`]s, so a conjunct (or a repeated goal) is
//!   simplified, normalised and Tseitin-encoded once per process and every
//!   later session gets its clauses back as an `Arc` clone.
//! * **Across goals** (per-session): [`Session::check`] pushes the
//!   (negated) goal's clauses into the session's **persistent CDCL core**
//!   behind a fresh activation literal and solves under the assumption that
//!   the literal holds.  The core keeps its clause database — the
//!   hypothesis CNF, every SAT-learned clause, and every theory lemma
//!   contributed by simplex conflicts — across goal checks, so each new
//!   goal starts from all the propositional and arithmetic reasoning its
//!   predecessors already paid for.  After a check the activation literal
//!   is permanently negated, which retires that goal's clauses without
//!   invalidating anything learned from them (learned clauses are
//!   resolvents of the guarded database and hence remain valid once the
//!   guard is fixed false).
//!
//! Splitting is only sound for the quantifier-free, application-free
//! fragment (quantifier instantiation and Ackermann expansion both need the
//! whole formula).  Flux's verification conditions live entirely in that
//! fragment — that is the point of the paper; anything outside it falls back
//! to the one-shot pipeline per goal, so a session always returns the same
//! verdicts as one-shot solving.

use crate::atoms::{Atom, AtomId, AtomTable, Lit};
use crate::audit;
use crate::cnf::tseitin_literal;
use crate::preprocess::{eliminate_div_mod, eliminate_ite, normalize_comparisons};
use crate::sat::{SatLit, SatResult, SatSolver};
use crate::simplex::{IncrementalSimplex, LiaResult, Prepared, SlotId};
use crate::solver::{check_sat_impl, Model, SatOutcome, SmtConfig, SmtStats, Validity};
use flux_logic::{simplify, Expr, ExprId, Name, Sort, SortCtx};
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};

/// How goals of this session are discharged.
enum Mode {
    /// Hypotheses are preprocessed into `hyp_cnf`; goals are converted
    /// incrementally against the shared atom table.
    Incremental,
    /// The hypotheses simplified to `false`: every implication is valid.
    Contradictory,
    /// The hypotheses fall outside the incremental fragment (quantifiers or
    /// uninterpreted applications); every check runs the one-shot pipeline
    /// on the combined formula.
    OneShot,
}

/// Result of preprocessing one conjunct (memoized in [`CnfCache`]).
#[derive(Clone)]
enum PreOut {
    /// The conjunct simplified to `true`.
    True,
    /// The conjunct simplified to `false`.
    False,
    /// The preprocessed quantifier-free formula, hash-consed.
    Formula(ExprId),
}

/// The process-global CNF engine: an atom table shared by every session on
/// the same shard (see [`CNF_SHARDS`]), plus memo tables that make
/// re-encoding a repeated conjunct O(1).
///
/// Sharing the atom table across a shard's sessions is what makes the
/// per-conjunct CNF cache possible at all: cached clauses mention
/// [`AtomId`]s, so those ids must mean the same thing in every session
/// that reads them — which is guaranteed by sessions pinning a single
/// shard for their lifetime.  (Atoms are pure syntax — a linear constraint
/// or a boolean name — so interning them per shard is sound, exactly like
/// the hash-consing of expressions in `flux-logic`.)
/// Preprocessing memo key: the conjunct plus the sorts of its free
/// variables.  The sorts are part of the key because comparison
/// normalisation consults them; the same name can be bound at different
/// sorts in different clauses.
type PreprocKey = (ExprId, Box<[Option<Sort>]>);

/// A defining CNF plus its (unasserted) root literal.
type LitCnf = (Lit, Arc<Vec<Vec<Lit>>>);

/// A preprocessed hypothesis conjunct paired with its asserted-root CNF.
type ConjunctCnf = (ExprId, Arc<Vec<Vec<Lit>>>);

/// Conjunct-splitting outcome of one hypothesis expression, memoized per
/// [`PreprocKey`]: the weakening loop re-opens sessions over hypothesis
/// contexts whose individual members (guard predicates, κ-solution
/// conjunctions) recur verbatim, so the whole walk — conjunct splitting,
/// triviality checks, fragment detection, preprocessing and CNF lookup —
/// collapses to a single hash probe per hypothesis.
#[derive(Clone)]
enum HypOut {
    /// Some conjunct leaves the quantifier-free, application-free fragment
    /// (or failed to encode): the session must fall back to one-shot.
    OneShot,
    /// Some conjunct simplified to `false`.
    Contradictory,
    /// The preprocessed conjuncts in source order, paired with their CNFs.
    /// Duplicates within one hypothesis are preserved; the session-level
    /// `seen` set dedups across the whole context, as it always did.
    Conjuncts(Arc<Vec<ConjunctCnf>>),
}

#[derive(Default)]
struct CnfCache {
    /// Cap on the total entry count of the evictable memo maps (0 =
    /// unlimited).  Seeded from `FLUX_CACHE_CAP` at first use; see
    /// [`set_cnf_cache_capacity`].
    cap: usize,
    /// Total memo entries evicted so far (see [`cnf_cache_evictions`]).
    evictions: u64,
    atoms: AtomTable,
    /// Free variables of a hash-consed expression (pure, cached forever).
    free_vars: HashMap<ExprId, Arc<[Name]>>,
    /// Preprocessing output per [`PreprocKey`].
    preproc: HashMap<PreprocKey, PreOut>,
    /// Tseitin CNF (root literal asserted) per preprocessed formula.
    cnf: HashMap<ExprId, Arc<Vec<Vec<Lit>>>>,
    /// Defining Tseitin CNF plus unasserted root literal per preprocessed
    /// formula; shares definition atoms with `cnf`.
    cnf_lit: HashMap<ExprId, LitCnf>,
    /// Registration-ready form of each linear atom, analysed once
    /// process-wide instead of once per session tableau.
    prepared: HashMap<AtomId, Arc<Prepared>>,
    /// Conjunct-splitting outcome per hypothesis expression (see
    /// [`HypOut`]); keyed like `preproc` because preprocessing of the
    /// conjuncts consults the free variables' sorts.
    hyp_out: HashMap<PreprocKey, HypOut>,
    /// Distinct theory atoms mentioned by a conjunct's CNF, sorted: lets
    /// the theory-atom snapshot skip re-scanning every literal of every
    /// hypothesis clause on each session's first check.
    cnf_atoms: HashMap<ExprId, Arc<Vec<AtomId>>>,
}

/// Number of lock-striped shards of the process-global CNF cache.
///
/// Each shard is a *complete*, independent [`CnfCache`] — its own atom
/// table plus memo maps.  A [`Session`] pins one shard at creation
/// (deterministically, by hashing its hypothesis ids) and performs every
/// cache operation against that shard only, so the [`AtomId`]s baked into
/// its core's clauses always resolve against the table that issued them.
/// Cross-session sharing survives for sessions that land on the same shard
/// — which, because the shard is chosen by hypothesis context, is exactly
/// the sessions re-asking the same clause's questions.  Four shards keep
/// the common caps dividing evenly (64, 512, 1024) while bounding the
/// per-shard working-set duplication: a conjunct used by contexts on k
/// shards is encoded k times, and k ≤ 4 caps that at 4×.
pub const CNF_SHARDS: usize = 4;

/// Times a thread found a CNF-shard lock held by another thread (monotone;
/// callers read deltas).
static CNF_CONTENTIONS: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

fn cnf_shards() -> &'static Vec<Mutex<CnfCache>> {
    static SHARDS: OnceLock<Vec<Mutex<CnfCache>>> = OnceLock::new();
    SHARDS.get_or_init(|| {
        // Seed each shard with its slice of the env cap; an explicit
        // `set_cnf_cache_capacity` call still wins later.
        let cap = flux_logic::env_parse("FLUX_CACHE_CAP", 0usize);
        let per_shard = cap.div_ceil(CNF_SHARDS);
        (0..CNF_SHARDS)
            .map(|_| {
                Mutex::new(CnfCache {
                    cap: per_shard,
                    ..CnfCache::default()
                })
            })
            .collect()
    })
}

/// Locks CNF shard `shard` (modulo the shard count).  `lock_recover`
/// recovers from poisoning rather than cascading one panic (e.g. a failed
/// assertion in an unrelated test thread) into every later session in the
/// process: the cache only memoizes pure data behind `Arc`s, so no torn
/// state is observable through its API.
fn cnf_shard(shard: usize) -> MutexGuard<'static, CnfCache> {
    let mutex = &cnf_shards()[shard % CNF_SHARDS];
    let mut cache = match mutex.try_lock() {
        Ok(guard) => guard,
        Err(std::sync::TryLockError::WouldBlock) => {
            CNF_CONTENTIONS.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            flux_logic::lock_recover(mutex)
        }
        Err(std::sync::TryLockError::Poisoned(_)) => flux_logic::lock_recover(mutex),
    };
    if crate::testing::inject_fault("cnf-cache") == Some(crate::testing::Fault::Delay) {
        // Hold the lock a beat: exercises every caller's tolerance of
        // contention on the global cache (there is nothing to time out — the
        // deadline checks live in the solvers, not here).  The duration
        // comes from the installed plan (`FaultPlan::delay_ms`).
        std::thread::sleep(crate::testing::fault_delay());
    }
    cache.reclaim();
    cache
}

/// Picks the CNF shard for a session over `hyp_ids`: a deterministic
/// function of the hypothesis context, so re-opened sessions over the same
/// context always land on the shard that already holds their encodings.
fn pick_cnf_shard(hyp_ids: &[ExprId]) -> usize {
    use std::hash::{Hash, Hasher};
    let mut hasher = std::collections::hash_map::DefaultHasher::new();
    hyp_ids.hash(&mut hasher);
    (hasher.finish() as usize) % CNF_SHARDS
}

/// Caps the process-global CNF cache's memo maps (`None` = unlimited).
/// Defaults to `FLUX_CACHE_CAP` (unset or 0 = unlimited).  The cap is
/// divided across [`CNF_SHARDS`] shards (rounded up), so the effective
/// global cap is the sum of per-shard caps.  The shared atom tables are
/// exempt: cached and in-core clauses reference their ids for the life of
/// the process.
pub fn set_cnf_cache_capacity(cap: Option<usize>) {
    let per_shard = cap.map_or(0, |c| c.div_ceil(CNF_SHARDS));
    for shard in 0..CNF_SHARDS {
        cnf_shard(shard).cap = per_shard;
    }
}

/// Total entries evicted from the process-global CNF cache so far, summed
/// over all shards.
pub fn cnf_cache_evictions() -> u64 {
    (0..CNF_SHARDS).map(|s| cnf_shard(s).evictions).sum()
}

/// Current total entry count of the CNF cache's evictable memo maps,
/// summed over all shards (diagnostics and capacity tests).
pub fn cnf_cache_len() -> usize {
    (0..CNF_SHARDS).map(|s| cnf_shard(s).memo_len()).sum()
}

/// Times any session found a CNF-shard lock held by another thread, over
/// the process lifetime.  Solvers difference this around a solve to report
/// per-solve contention.
pub fn cnf_shard_contentions() -> u64 {
    CNF_CONTENTIONS.load(std::sync::atomic::Ordering::Relaxed)
}

impl CnfCache {
    /// Entry count of the evictable memo maps (the atom table is exempt).
    fn memo_len(&self) -> usize {
        self.free_vars.len()
            + self.preproc.len()
            + self.cnf.len()
            + self.cnf_lit.len()
            + self.prepared.len()
            + self.hyp_out.len()
            + self.cnf_atoms.len()
    }

    /// Flushes every memo map once their total entry count exceeds the cap
    /// — region reclaim: the maps memoize independent pure functions, so
    /// dropping them together needs no cross-map bookkeeping, and later
    /// probes simply recompute and re-cache.  Atoms are never evicted
    /// (sessions hold clauses that name them); re-encoding an evicted
    /// formula re-interns the same theory atoms and allocates fresh Tseitin
    /// definition atoms, which is equisatisfiable.
    fn reclaim(&mut self) {
        if self.cap == 0 {
            return;
        }
        let total = self.memo_len();
        if total <= self.cap {
            return;
        }
        self.evictions += total as u64;
        self.free_vars.clear();
        self.preproc.clear();
        self.cnf.clear();
        self.cnf_lit.clear();
        self.prepared.clear();
        self.hyp_out.clear();
        self.cnf_atoms.clear();
    }

    fn free_vars_of(&mut self, id: ExprId) -> Arc<[Name]> {
        if let Some(fv) = self.free_vars.get(&id) {
            return fv.clone();
        }
        let fv: Arc<[Name]> = id.expr().free_vars().into_iter().collect();
        self.free_vars.insert(id, fv.clone());
        fv
    }

    /// Preprocesses the simplified conjunct `id` under `ctx`, memoized on
    /// the sorts of its free variables.
    fn preprocess(&mut self, id: ExprId, ctx: &SortCtx) -> PreOut {
        let fv = self.free_vars_of(id);
        let key: PreprocKey = (id, fv.iter().map(|n| ctx.lookup(*n)).collect());
        if let Some(out) = self.preproc.get(&key) {
            return out.clone();
        }
        let out = match preprocess_qf(&id.expr(), ctx) {
            Preprocessed::True => PreOut::True,
            Preprocessed::False => PreOut::False,
            Preprocessed::Formula(f) => PreOut::Formula(ExprId::intern(&f)),
        };
        self.preproc.insert(key, out.clone());
        out
    }

    /// The defining Tseitin CNF and root literal of the preprocessed
    /// formula `id` (root *not* asserted), encoding it into the shared atom
    /// table on the first request.
    fn cnf_lit_of(&mut self, id: ExprId) -> Result<LitCnf, ()> {
        if let Some((root, defs)) = self.cnf_lit.get(&id) {
            return Ok((*root, defs.clone()));
        }
        let (root, cnf) = tseitin_literal(&id.expr(), &mut self.atoms).map_err(|_| ())?;
        let defs = Arc::new(cnf.clauses);
        self.cnf_lit.insert(id, (root, defs.clone()));
        Ok((root, defs))
    }

    /// The registration-ready form of atom `id`, when it is linear.
    fn prepared_lin(&mut self, id: AtomId) -> Option<Arc<Prepared>> {
        if let Some(p) = self.prepared.get(&id) {
            return Some(p.clone());
        }
        let p = match self.atoms.get(id) {
            Atom::Lin(c) => Arc::new(Prepared::of(c)),
            _ => return None,
        };
        self.prepared.insert(id, p.clone());
        Some(p)
    }

    /// The Tseitin CNF of the preprocessed formula `id` (root asserted);
    /// shares definition atoms with [`CnfCache::cnf_lit_of`].
    fn cnf_of(&mut self, id: ExprId) -> Result<Arc<Vec<Vec<Lit>>>, ()> {
        if let Some(cnf) = self.cnf.get(&id) {
            return Ok(cnf.clone());
        }
        let (root, defs) = self.cnf_lit_of(id)?;
        let mut clauses = (*defs).clone();
        clauses.push(vec![root]);
        let cnf = Arc::new(clauses);
        self.cnf.insert(id, cnf.clone());
        Ok(cnf)
    }

    /// Splits the hypothesis `hyp` into preprocessed conjuncts (see
    /// [`HypOut`]), memoized on the sorts of its free variables.  The loop
    /// body mirrors what [`Session::assume_impl`] historically did inline;
    /// the first terminal outcome (a fragment violation or a contradictory
    /// conjunct) wins, in conjunct order.
    fn hyp_out_of(&mut self, hyp: ExprId, ctx: &SortCtx) -> HypOut {
        let fv = self.free_vars_of(hyp);
        let key: PreprocKey = (hyp, fv.iter().map(|n| ctx.lookup(*n)).collect());
        if let Some(out) = self.hyp_out.get(&key) {
            return out.clone();
        }
        let tt = ExprId::intern(&Expr::tt());
        let ff = ExprId::intern(&Expr::ff());
        let mut conjuncts = Vec::new();
        let mut result = None;
        'walk: for conjunct in hyp.conjunct_ids() {
            if conjunct.has_quantifier() || conjunct.has_app() {
                result = Some(HypOut::OneShot);
                break 'walk;
            }
            let sid = conjunct.simplified();
            if sid == tt {
                continue;
            }
            if sid == ff {
                result = Some(HypOut::Contradictory);
                break 'walk;
            }
            match self.preprocess(sid, ctx) {
                PreOut::True => {}
                PreOut::False => {
                    result = Some(HypOut::Contradictory);
                    break 'walk;
                }
                PreOut::Formula(pid) => match self.cnf_of(pid) {
                    Ok(cnf) => conjuncts.push((pid, cnf)),
                    // Defensive: the preprocessed QF fragment should always
                    // convert; degrade to one-shot rather than give up.
                    Err(()) => {
                        result = Some(HypOut::OneShot);
                        break 'walk;
                    }
                },
            }
        }
        let out = result.unwrap_or_else(|| HypOut::Conjuncts(Arc::new(conjuncts)));
        self.hyp_out.insert(key, out.clone());
        out
    }

    /// The distinct theory atoms of the conjunct `pid`'s CNF, sorted;
    /// memoized forever (the CNF of a preprocessed formula never changes).
    fn atoms_of(&mut self, pid: ExprId, cnf: &[Vec<Lit>]) -> Arc<Vec<AtomId>> {
        if let Some(atoms) = self.cnf_atoms.get(&pid) {
            return atoms.clone();
        }
        let mut atoms: Vec<AtomId> = cnf.iter().flatten().map(|lit| lit.atom).collect();
        atoms.sort_unstable();
        atoms.dedup();
        let atoms = Arc::new(atoms);
        self.cnf_atoms.insert(pid, atoms.clone());
        atoms
    }
}

/// The session's persistent CDCL core: one [`SatSolver`] whose clause
/// database (hypothesis CNF, goal clauses behind activation literals,
/// SAT-learned clauses and theory lemmas) survives across goal checks.
///
/// SAT variable indices are decoupled from [`AtomId`]s: the core owns
/// activation variables that correspond to no theory atom, and the global
/// atom table contains atoms from other sessions that this one never
/// mentions.  `atom_vars` maps an atom to its SAT variable lazily, so the
/// SAT search only ever branches on atoms this session actually uses.
struct Core {
    /// The CNF shard this core's owning session is pinned to: every
    /// [`AtomId`] in the clause database was issued by (and must be
    /// resolved against) this shard's atom table.
    shard: usize,
    sat: SatSolver,
    /// SAT variable of each atom, indexed by [`AtomId`]; `UNMAPPED` for
    /// atoms this session has not touched.
    atom_vars: Vec<usize>,
    /// The session's persistent theory state: linear atoms register their
    /// constraint rows here once, and each DPLL(T) round merely asserts
    /// bounds inside a push/pop scope.  The tableau basis survives across
    /// rounds *and* goals, so theory checks after the first start from an
    /// almost-feasible state.
    theory: IncrementalSimplex,
    /// Simplex slot of each linear atom, indexed by [`AtomId`].
    atom_slots: Vec<Option<SlotId>>,
    /// Snapshot of the hypothesis clauses' theory atoms, taken once on the
    /// first check; goals only resolve their own (typically few) atoms.
    /// Cleared whenever the hypothesis conjunct set changes.
    hyp_atoms: Option<TheoryAtoms>,
}

const UNMAPPED: usize = usize::MAX;

/// Relevant theory atoms of a clause set, resolved once against the global
/// atom table: SAT variables, simplex slots (rows registered on first
/// sight) and the constraint variables that delimit counter-models.
#[derive(Default)]
struct TheoryAtoms {
    /// (atom, SAT variable, prepared constraint) of each linear atom.  The
    /// simplex row is *not* registered at snapshot time: most checks are
    /// decided propositionally (the hypothesis facts and replayed theory
    /// lemmas close them before any theory round runs), so eagerly
    /// building a tableau row per atom per session was pure overhead — the
    /// row materializes via [`Core::slot_of`] on the first theory round
    /// that asserts the atom, and is permanent from then on.
    lin: Vec<(AtomId, usize, Arc<Prepared>)>,
    /// (SAT variable, name) of each boolean atom.
    bools: Vec<(usize, Name)>,
    /// Variables mentioned by the linear constraints.
    vars: BTreeSet<Name>,
    /// Every atom id covered, for dedup against later snapshots.
    atoms: HashSet<AtomId>,
}

impl Core {
    fn new(config: &SmtConfig, shard: usize) -> Core {
        // The authoritative budget lives on the `SmtConfig`; the sub-solvers
        // receive their copy here, exactly as the one-shot pipeline does.
        Core {
            shard,
            sat: SatSolver::new(
                0,
                crate::sat::SatConfig {
                    budget: config.budget,
                    ..config.sat
                },
            ),
            atom_vars: Vec::new(),
            theory: IncrementalSimplex::new(crate::simplex::LiaConfig {
                budget: config.budget,
                ..config.lia
            }),
            atom_slots: Vec::new(),
            hyp_atoms: None,
        }
    }

    /// Resolves the relevant theory atoms of `clauses` (minus those already
    /// covered by `skip`) against the global atom table.
    fn snapshot<'a>(
        &mut self,
        clauses: impl Iterator<Item = &'a Vec<Lit>>,
        skip: Option<&TheoryAtoms>,
    ) -> TheoryAtoms {
        let mut relevant: Vec<AtomId> = clauses.flatten().map(|lit| lit.atom).collect();
        relevant.sort_unstable();
        relevant.dedup();
        self.snapshot_atoms(&relevant, skip)
    }

    /// [`Core::snapshot`] for the hypothesis CNF, via the per-conjunct atom
    /// memo: the conjuncts' distinct atoms were collected once per process,
    /// so a session's first check merges a few short sorted lists instead
    /// of re-scanning every literal of every hypothesis clause.
    fn snapshot_hyp(&mut self, hyp_cnf: &[(ExprId, Arc<Vec<Vec<Lit>>>)]) -> TheoryAtoms {
        let mut relevant: Vec<AtomId> = Vec::new();
        {
            let mut cache = cnf_shard(self.shard);
            for (pid, cnf) in hyp_cnf {
                relevant.extend(cache.atoms_of(*pid, cnf).iter().copied());
            }
        }
        relevant.sort_unstable();
        relevant.dedup();
        self.snapshot_atoms(&relevant, None)
    }

    /// Shared tail of the snapshot paths: the per-atom resolution work over
    /// a sorted, deduplicated candidate list.
    fn snapshot_atoms(&mut self, relevant: &[AtomId], skip: Option<&TheoryAtoms>) -> TheoryAtoms {
        let mut cache = cnf_shard(self.shard);
        let mut out = TheoryAtoms::default();
        for &id in relevant {
            if matches!(skip, Some(s) if s.atoms.contains(&id)) {
                continue;
            }
            // Relevant atoms occur in some added clause, so a SAT variable
            // for them always exists.
            let Some(var) = self.lookup_var(id) else {
                continue;
            };
            out.atoms.insert(id);
            if let Some(prepared) = cache.prepared_lin(id) {
                out.vars.extend(prepared.vars());
                out.lin.push((id, var, prepared));
            } else if let Atom::Bool(name) = cache.atoms.get(id) {
                if !name.as_str().starts_with('$') {
                    out.bools.push((var, *name));
                }
            }
        }
        out
    }

    /// The simplex slot of the linear atom `atom`, registering its
    /// constraint row on first use.
    fn slot_of(&mut self, atom: AtomId, prepared: &Prepared) -> SlotId {
        let idx = atom.0 as usize;
        if self.atom_slots.len() <= idx {
            self.atom_slots.resize(idx + 1, None);
        }
        match self.atom_slots[idx] {
            Some(slot) => slot,
            None => {
                let slot = self.theory.register_prepared(prepared);
                self.atom_slots[idx] = Some(slot);
                slot
            }
        }
    }

    /// The SAT variable representing `atom`, allocating one if needed.
    fn var_of(&mut self, atom: AtomId) -> usize {
        let idx = atom.0 as usize;
        if self.atom_vars.len() <= idx {
            self.atom_vars.resize(idx + 1, UNMAPPED);
        }
        if self.atom_vars[idx] == UNMAPPED {
            self.atom_vars[idx] = self.sat.new_var();
        }
        self.atom_vars[idx]
    }

    /// The SAT variable of `atom`, if this session ever added a clause
    /// mentioning it.
    fn lookup_var(&self, atom: AtomId) -> Option<usize> {
        match self.atom_vars.get(atom.0 as usize) {
            Some(&v) if v != UNMAPPED => Some(v),
            _ => None,
        }
    }

    /// Adds a theory-atom clause, optionally guarded by `¬guard ∨ …` so it
    /// only bites while `guard` is assumed.
    fn add_clause(&mut self, clause: &[Lit], guard: Option<SatLit>) {
        let mut lits: Vec<SatLit> = Vec::with_capacity(clause.len() + 1);
        if let Some(g) = guard {
            lits.push(g.negated());
        }
        for l in clause {
            let var = self.var_of(l.atom);
            lits.push(SatLit::new(var, l.positive));
        }
        self.sat.add_clause(lits);
    }
}

/// An incremental solving session: a fixed hypothesis context plus
/// per-session solver state reused across goal checks.
pub struct Session {
    config: SmtConfig,
    ctx: SortCtx,
    stats: SmtStats,
    mode: Mode,
    /// The CNF shard this session is pinned to for its whole lifetime (see
    /// [`CNF_SHARDS`]): chosen deterministically from the hypothesis ids,
    /// so re-opened sessions over the same context share encodings.
    shard: usize,
    /// Hash-consed hypotheses, as given.
    hyp_ids: Vec<ExprId>,
    /// Tree form of the hypotheses, materialized lazily — only the one-shot
    /// fallback needs it.
    hyp_trees: Option<Vec<Expr>>,
    /// CNF of each preprocessed hypothesis conjunct, keyed by its
    /// preprocessed id (shared with the global cache; empty when trivially
    /// true).  The ids drive conjunct-level diffing in
    /// [`Session::update_hypotheses`].
    hyp_cnf: Vec<ConjunctCnf>,
    /// Theory lemmas learned so far; valid across all checks (atoms are
    /// global, so lemmas would even be sound across sessions).
    lemmas: Vec<Vec<Lit>>,
    /// The persistent CDCL core, built on the first incremental check.
    core: Option<Core>,
}

impl Session {
    /// Opens a session that assumes `hypotheses` under `ctx`.
    ///
    /// Preprocessing and CNF conversion of the hypotheses happen here —
    /// conjunct by conjunct through the global cache, so a conjunct seen by
    /// any earlier session costs two hash lookups; each subsequent
    /// [`Session::check`] only pays for its goal.
    pub fn assume(config: SmtConfig, ctx: &SortCtx, hypotheses: &[Expr]) -> Session {
        let hyp_ids: Vec<ExprId> = hypotheses.iter().map(ExprId::intern).collect();
        Session::assume_impl(config, ctx, hyp_ids, Some(hypotheses.to_vec()))
    }

    /// [`Session::assume`] for pre-interned hypotheses: conjunct splitting,
    /// triviality checks and fragment detection all run over the shared DAG
    /// (each memoized per subterm globally), so assuming an
    /// already-encountered hypothesis context never re-walks a tree.
    pub fn assume_ids(config: SmtConfig, ctx: &SortCtx, hyp_ids: &[ExprId]) -> Session {
        Session::assume_impl(config, ctx, hyp_ids.to_vec(), None)
    }

    fn assume_impl(
        config: SmtConfig,
        ctx: &SortCtx,
        hyp_ids: Vec<ExprId>,
        hyp_trees: Option<Vec<Expr>>,
    ) -> Session {
        // Stamp the wall-clock deadline once per session: every check this
        // session runs shares it.  A no-op when the caller (e.g. the
        // fixpoint solver) already stamped a solve-wide deadline.
        let mut config = config;
        config.budget.stamp();
        let shard = pick_cnf_shard(&hyp_ids);
        let mut session = Session {
            config,
            ctx: ctx.clone(),
            stats: SmtStats {
                sessions: 1,
                ..SmtStats::default()
            },
            mode: Mode::Incremental,
            shard,
            hyp_ids,
            hyp_trees,
            hyp_cnf: Vec::new(),
            lemmas: Vec::new(),
            core: None,
        };
        let mut seen: HashSet<ExprId> = HashSet::new();
        let mut cache = cnf_shard(shard);
        for hyp in session.hyp_ids.clone() {
            // One memoized probe per hypothesis: splitting, simplification,
            // preprocessing and CNF conversion of its conjuncts all ran at
            // most once per process (see [`CnfCache::hyp_out_of`]).
            match cache.hyp_out_of(hyp, &session.ctx) {
                HypOut::OneShot => {
                    session.mode = Mode::OneShot;
                    session.hyp_cnf.clear();
                    return session;
                }
                HypOut::Contradictory => {
                    session.mode = Mode::Contradictory;
                    session.hyp_cnf.clear();
                    return session;
                }
                HypOut::Conjuncts(conjuncts) => {
                    for (pid, cnf) in conjuncts.iter() {
                        if seen.insert(*pid) {
                            session.hyp_cnf.push((*pid, cnf.clone()));
                        }
                    }
                }
            }
        }
        session
    }

    /// Re-points the session at a new hypothesis context **without
    /// discarding the persistent core**.  Purely additive updates assert the
    /// fresh conjuncts' cached CNF into the live clause database (existing
    /// facts and learned clauses are consequences of the larger conjunct
    /// set, so everything survives).  Updates that *retract* conjuncts
    /// rebuild the SAT clause database from the surviving conjuncts' cached
    /// CNFs plus the recorded theory lemmas — but keep the variable space
    /// (so the atom↔variable map stays valid), the simplex tableau with its
    /// warm basis, the registered atom slots, and every memoized encoding.
    /// Hypothesis facts are deliberately asserted unguarded, so they become
    /// permanent level-0 facts that the goal-retirement compaction dissolves
    /// into the assignment; the price is that retraction cannot simply
    /// unassert them.  A clause-database rebuild over cached encodings costs
    /// one pass of `add_clause` calls and none of the simplification,
    /// Tseitin or simplex-registration work a fresh session would pay.
    ///
    /// Returns `false` when the update cannot be expressed as a conjunct
    /// diff — the session is not (or the new context would not be) in the
    /// incremental mode.  The session is left unchanged in that case and
    /// the caller should open a fresh one.
    ///
    /// Verdicts after a successful update are identical to those of a fresh
    /// session over `new_hyps`: the clause database is exactly the new
    /// conjunct set's CNF plus theory lemmas (tautologies over global atoms,
    /// valid under any hypotheses), and the theory-atom snapshot is rebuilt
    /// from the new conjunct set.
    pub fn update_hypotheses(&mut self, new_hyps: &[ExprId]) -> bool {
        if !matches!(self.mode, Mode::Incremental) {
            return false;
        }
        // Recompute the conjunct set exactly as `assume_impl` does, but
        // bail out (leaving the session untouched) instead of switching
        // mode: mode changes invalidate the core wholesale.
        let mut seen: HashSet<ExprId> = HashSet::new();
        let mut new_cnf: Vec<ConjunctCnf> = Vec::new();
        {
            // The session keeps its original shard: the core's clauses name
            // that shard's atoms, so the new conjuncts must encode there too.
            let mut cache = cnf_shard(self.shard);
            for hyp in new_hyps {
                match cache.hyp_out_of(*hyp, &self.ctx) {
                    HypOut::OneShot | HypOut::Contradictory => return false,
                    HypOut::Conjuncts(conjuncts) => {
                        for (pid, cnf) in conjuncts.iter() {
                            if seen.insert(*pid) {
                                new_cnf.push((*pid, cnf.clone()));
                            }
                        }
                    }
                }
            }
        }
        if let Some(core) = self.core.as_mut() {
            let old: HashSet<ExprId> = self.hyp_cnf.iter().map(|(pid, _)| *pid).collect();
            let stale = old.iter().filter(|pid| !seen.contains(pid)).count();
            if stale > 0 {
                // Retraction: rebuild the clause database from cached
                // encodings.  The fresh solver starts over the same
                // variable range, so cached CNF literals and `atom_vars`
                // entries keep their meaning; goal clauses need no replay
                // (every prior goal was retired and compacted away), and
                // learned clauses need none either (they are resolvents the
                // search re-derives on demand).
                self.stats.conjunct_retractions += stale;
                core.sat = SatSolver::new(core.sat.num_vars(), self.config.sat);
                for (_, cnf) in &new_cnf {
                    for clause in cnf.iter() {
                        core.add_clause(clause, None);
                    }
                }
                for lemma in &self.lemmas {
                    core.add_clause(lemma, None);
                }
                core.hyp_atoms = None;
            } else {
                // Pure strengthening: assert the fresh conjuncts into the
                // live database.  Existing level-0 facts and learned
                // clauses are consequences of the enlarged conjunct set.
                let mut changed = false;
                for (pid, cnf) in &new_cnf {
                    if !old.contains(pid) {
                        for clause in cnf.iter() {
                            core.add_clause(clause, None);
                        }
                        changed = true;
                    }
                }
                if changed {
                    // The snapshot describes the old conjunct set: the
                    // fresh conjuncts' atoms must start being asserted to
                    // the theory.
                    core.hyp_atoms = None;
                }
            }
        }
        self.hyp_ids = new_hyps.to_vec();
        self.hyp_trees = None;
        self.hyp_cnf = new_cnf;
        true
    }

    /// The tree form of the hypotheses, materialized on first use (only the
    /// one-shot fallback needs it).
    fn hyp_trees(&mut self) -> &[Expr] {
        if self.hyp_trees.is_none() {
            self.hyp_trees = Some(self.hyp_ids.iter().map(|id| id.expr()).collect());
        }
        self.hyp_trees.as_deref().expect("trees were just built")
    }

    /// Checks the validity of `hypotheses ⟹ goal`.
    ///
    /// Produces the same verdict as
    /// [`crate::Solver::check_valid_imp`] on the same inputs.
    pub fn check(&mut self, goal: &Expr) -> Validity {
        self.stats.queries += 1;
        match self.mode {
            Mode::Contradictory => Validity::Valid,
            Mode::OneShot => self.check_one_shot(goal),
            Mode::Incremental => {
                if goal.has_quantifier() || goal.has_app() {
                    return self.check_one_shot(goal);
                }
                self.check_qf_goal(ExprId::intern(goal))
            }
        }
    }

    /// [`Session::check`] for a pre-interned goal: spares callers that
    /// already track hash-consed ids (the fixpoint weakening loop) the deep
    /// re-interning walk of the goal tree on every query.
    pub fn check_id(&mut self, goal: ExprId) -> Validity {
        self.stats.queries += 1;
        match self.mode {
            Mode::Contradictory => Validity::Valid,
            Mode::OneShot => self.check_one_shot(&goal.expr()),
            Mode::Incremental => {
                if goal.has_quantifier() || goal.has_app() {
                    return self.check_one_shot(&goal.expr());
                }
                self.check_qf_goal(goal)
            }
        }
    }

    /// Checks the validity of `hypotheses ⟹ goal₁ ∧ … ∧ goalₙ` as **one**
    /// query, composing each conjunct's independently cached encoding.
    ///
    /// The negated goal `¬g₁ ∨ … ∨ ¬gₙ` enters the core as the union of the
    /// conjuncts' defining CNFs plus a single disjunction of their root
    /// literals, so a conjunction over candidates the session (or any other
    /// session in the process) has already encoded costs no new
    /// preprocessing or Tseitin work at all — where encoding the conjunction
    /// as one formula would re-walk the whole tree for every distinct
    /// surviving-candidate subset.  The verdict equals checking the
    /// conjunction as a single goal (both encodings decide satisfiability of
    /// the same formula); counter-models may differ, which callers already
    /// tolerate (models are verified against the hypotheses before use).
    pub fn check_all(&mut self, goals: &[ExprId]) -> Validity {
        if let [single] = goals {
            // Delegate so the two entry points stay verdict-identical (and
            // the single-goal path keeps its slightly tighter encoding).
            return self.check_id(*single);
        }
        self.stats.queries += 1;
        let rebuild_conjunction = |goals: &[ExprId]| Expr::and_all(goals.iter().map(|g| g.expr()));
        match self.mode {
            Mode::Contradictory => Validity::Valid,
            Mode::OneShot => {
                let tree = rebuild_conjunction(goals);
                self.check_one_shot(&tree)
            }
            Mode::Incremental => {
                if goals.iter().any(|g| g.has_quantifier() || g.has_app()) {
                    let tree = rebuild_conjunction(goals);
                    return self.check_one_shot(&tree);
                }
                let tt = ExprId::intern(&Expr::tt());
                let ff = ExprId::intern(&Expr::ff());
                let mut roots: Vec<Lit> = Vec::new();
                let mut goal_clauses: Vec<Vec<Lit>> = Vec::new();
                // `true` when some conjunct's negation is trivially true:
                // the negated goal then constrains nothing, and the query
                // reduces to satisfiability of the hypotheses alone.
                let mut unconstrained = false;
                let mut encoding_failed = false;
                {
                    let mut cache = cnf_shard(self.shard);
                    for &g in goals {
                        let nid = g.negated().simplified();
                        if nid == ff {
                            continue; // conjunct is trivially valid
                        }
                        if nid == tt {
                            unconstrained = true;
                            break;
                        }
                        match cache.preprocess(nid, &self.ctx) {
                            PreOut::False => continue,
                            PreOut::True => {
                                unconstrained = true;
                                break;
                            }
                            PreOut::Formula(pid) => match cache.cnf_lit_of(pid) {
                                Ok((root, defs)) => {
                                    goal_clauses.extend(defs.iter().cloned());
                                    roots.push(root);
                                }
                                Err(()) => {
                                    encoding_failed = true;
                                    break;
                                }
                            },
                        }
                    }
                }
                if encoding_failed {
                    let tree = rebuild_conjunction(goals);
                    return self.check_one_shot(&tree);
                }
                if roots.is_empty() && !unconstrained {
                    // Every conjunct was trivially valid.
                    return Validity::Valid;
                }
                let verdict = if unconstrained {
                    self.check_on_core(&[])
                } else {
                    goal_clauses.push(roots);
                    self.check_on_core(&goal_clauses)
                };
                self.spot_check(&verdict, goals);
                verdict
            }
        }
    }

    /// The incremental path for a quantifier- and application-free goal.
    fn check_qf_goal(&mut self, goal: ExprId) -> Validity {
        let tt = ExprId::intern(&Expr::tt());
        let ff = ExprId::intern(&Expr::ff());
        let nid = goal.negated().simplified();
        // ¬goal is false: the implication holds outright.
        if nid == ff {
            return Validity::Valid;
        }
        let goal_cnf: Option<Arc<Vec<Vec<Lit>>>> = if nid == tt {
            // ¬goal is true: satisfiability reduces to the
            // hypotheses alone, i.e. no extra clauses.
            None
        } else {
            let mut cache = cnf_shard(self.shard);
            match cache.preprocess(nid, &self.ctx) {
                PreOut::False => return Validity::Valid,
                PreOut::True => None,
                PreOut::Formula(pid) => match cache.cnf_of(pid) {
                    Ok(cnf) => Some(cnf),
                    Err(()) => return self.check_one_shot(&goal.expr()),
                },
            }
        };
        let empty = Vec::new();
        let goal_clauses: &Vec<Vec<Lit>> = goal_cnf.as_deref().unwrap_or(&empty);
        let verdict = self.check_on_core(goal_clauses);
        self.spot_check(&verdict, &[goal]);
        verdict
    }

    /// Tseitin/CNF equisatisfiability spot-check on a counter-model, under
    /// the full audit tier: evaluating the *pre-CNF* hypotheses and goals
    /// under the model via the hash-consed evaluator must agree with the
    /// verdict the CNF encoding produced (no hypothesis decidably false, the
    /// goal conjunction not decidably all-true).  A disagreement means the
    /// preprocessing or Tseitin conversion changed the formula's meaning.
    fn spot_check(&mut self, verdict: &Validity, goals: &[ExprId]) {
        if !self.config.audit.certifies() {
            return;
        }
        if let Validity::Invalid(Some(model)) = verdict {
            if let Err(e) = audit::spot_check_model(model, &self.hyp_ids, goals) {
                panic!("FLUX_AUDIT: {e}");
            }
            self.stats.certs_checked += 1;
        }
    }

    /// The incremental DPLL(T) loop over the session's persistent CDCL
    /// core.  The goal clauses enter the core behind a fresh activation
    /// literal, the search runs under the assumption that the literal
    /// holds, and afterwards the literal is fixed false, retiring the goal
    /// while keeping every learned clause for the next check.
    fn check_on_core(&mut self, goal_clauses: &[Vec<Lit>]) -> Validity {
        match &mut self.core {
            Some(_) => self.stats.sat_reuse += 1,
            none => {
                let mut core = Core::new(&self.config, self.shard);
                // Hypothesis clauses are asserted outright — no activation
                // literals.  Their units become permanent level-0 facts, so
                // the first goal retirement's compaction dissolves most of
                // the hypothesis CNF into the assignment instead of every
                // later solve re-scanning and re-propagating it.  (Guarding
                // them behind per-conjunct assumptions was measured to cost
                // ~1.5× on the whole corpus: nothing ever reaches level 0,
                // so nothing ever compacts away.)  Retraction instead
                // rebuilds the clause database from cached encodings — see
                // [`Session::update_hypotheses`].
                for (_, cnf) in &self.hyp_cnf {
                    for clause in cnf.iter() {
                        core.add_clause(clause, None);
                    }
                }
                // Theory lemmas are only ever learned against an existing
                // core, so there are none to replay here.
                *none = Some(core);
            }
        }
        let core = self.core.as_mut().expect("core was just built");
        let guard = SatLit::new(core.sat.new_var(), true);
        for clause in goal_clauses {
            core.add_clause(clause, Some(guard));
        }
        // Atoms interned by *earlier* goals (or other sessions sharing the
        // global table) but absent from the current clause sets are
        // unconstrained in this query and must not be asserted to the
        // theory: they would cost per-round work that grows with session
        // age and their arbitrary SAT values could manufacture spurious
        // theory conflicts.  Only the hypothesis and goal clauses define
        // relevance — a retained theory lemma whose atoms have left the
        // query is a tautology the SAT core already honours propositionally
        // and needs no re-assertion to simplex.  The hypothesis atoms are
        // snapshotted once per session (they are the same for every check);
        // each goal only resolves its own atoms, minus that overlap.  The
        // union also delimits the counter-model: the tableau holds
        // variables from retired goals, whose stale values must not leak
        // into reported models.
        if core.hyp_atoms.is_none() {
            let snap = core.snapshot_hyp(&self.hyp_cnf);
            core.hyp_atoms = Some(snap);
        }
        let hyp_atoms = core.hyp_atoms.take().expect("hypothesis snapshot exists");
        let goal_atoms = core.snapshot(goal_clauses.iter(), Some(&hyp_atoms));
        let relevant_vars: BTreeSet<Name> = hyp_atoms
            .vars
            .iter()
            .chain(goal_atoms.vars.iter())
            .copied()
            .collect();
        let assumptions = [guard];
        let pivots_before = core.theory.pivots();
        let props_before = core.sat.propagations();
        let blocked_before = core.sat.blocked_visits();
        let reductions_before = core.sat.db_reductions();
        let col_scans_before = core.theory.col_scans();
        let stops_before = core.sat.budget_stops();
        let outcome = 'search: {
            if crate::testing::inject_fault("session") == Some(crate::testing::Fault::Unknown) {
                break 'search SatOutcome::Unknown;
            }
            for _ in 0..self.config.max_theory_rounds.0 {
                // One clock read per theory round — each round amortizes it
                // over a full SAT search plus a simplex check.
                if self.config.budget.deadline_exceeded() {
                    self.stats.budget_exhausted += 1;
                    break 'search SatOutcome::Unknown;
                }
                self.stats.sat_rounds += 1;
                let assignment = match core.sat.solve_under_assumptions(&assumptions) {
                    SatResult::Unsat => break 'search SatOutcome::Unsat,
                    SatResult::Unknown => break 'search SatOutcome::Unknown,
                    SatResult::Sat(assignment) => assignment,
                };
                self.stats.theory_checks += 1;
                // Assert the linear atoms' bounds under the SAT assignment
                // inside one backtracking scope; the scope is popped after
                // the check, but the pivoted basis is kept.
                let lin_atoms = || hyp_atoms.lin.iter().chain(goal_atoms.lin.iter());
                let mut involved = Vec::with_capacity(hyp_atoms.lin.len() + goal_atoms.lin.len());
                let mut assert_conflict: Option<Vec<usize>> = None;
                core.theory.push();
                for (k, (id, var, prepared)) in lin_atoms().enumerate() {
                    let value = assignment[*var];
                    involved.push(Lit {
                        atom: *id,
                        positive: value,
                    });
                    // Rows register lazily, on the first theory round that
                    // asserts them (memoized per atom in `atom_slots`).
                    let slot = core.slot_of(*id, prepared);
                    if let Err(core_tags) = core.theory.assert_constraint(slot, value, k) {
                        assert_conflict = Some(core_tags);
                        break;
                    }
                }
                let result = match assert_conflict {
                    Some(tags) => LiaResult::Infeasible(tags),
                    // Only the current query's variables need integrality;
                    // the tableau's stale variables (retired goals) are
                    // unconstrained here and excluded from the model.
                    None => core.theory.check_integer_over(&relevant_vars),
                };
                core.theory.pop();
                match result {
                    LiaResult::Feasible(int_model) => {
                        if self.config.audit.certifies() {
                            let value = |lit: Lit| {
                                core.lookup_var(lit.atom)
                                    .and_then(|v| assignment.get(v).copied())
                                    .map(|b| b == lit.positive)
                            };
                            let live_clauses = self
                                .hyp_cnf
                                .iter()
                                .flat_map(|(_, cnf)| cnf.iter())
                                .chain(goal_clauses.iter())
                                .chain(self.lemmas.iter());
                            let asserted: Vec<_> = {
                                let cache = cnf_shard(core.shard);
                                audit::asserted_constraints(&involved, &cache.atoms)
                                    .into_iter()
                                    .map(|c| (c, true))
                                    .collect()
                            };
                            audit::validate_clauses("session", live_clauses, value)
                                .and_then(|()| {
                                    audit::validate_theory_assignment(&asserted, &int_model)
                                })
                                .unwrap_or_else(|e| panic!("FLUX_AUDIT: {e}"));
                            self.stats.certs_checked += 1;
                        }
                        let mut model = Model {
                            ints: int_model,
                            bools: BTreeMap::new(),
                        };
                        for (var, name) in hyp_atoms.bools.iter().chain(goal_atoms.bools.iter()) {
                            model.bools.insert(*name, assignment[*var]);
                        }
                        break 'search SatOutcome::Sat(model);
                    }
                    LiaResult::Unknown => break 'search SatOutcome::Unknown,
                    LiaResult::Infeasible(conflict) => {
                        if self.config.audit.certifies() {
                            let tagged: Vec<Lit> = if conflict.is_empty() {
                                involved.clone()
                            } else {
                                conflict.iter().map(|&i| involved[i]).collect()
                            };
                            let constraints = {
                                let cache = cnf_shard(core.shard);
                                audit::asserted_constraints(&tagged, &cache.atoms)
                            };
                            if let Err(e) = audit::certify_infeasible_core(&constraints) {
                                panic!("FLUX_AUDIT: {e}");
                            }
                            self.stats.certs_checked += 1;
                        }
                        let lemma: Vec<Lit> = if conflict.is_empty() {
                            // Defensive: block the entire assignment.
                            involved.iter().map(|l| l.negated()).collect()
                        } else {
                            conflict.iter().map(|&i| involved[i].negated()).collect()
                        };
                        core.add_clause(&lemma, None);
                        self.lemmas.push(lemma);
                    }
                }
            }
            SatOutcome::Unknown
        };
        core.hyp_atoms = Some(hyp_atoms);
        // Retire this goal: the negated guard permanently satisfies its
        // clauses (and everything learned from them), and compaction drops
        // them from the database so later checks don't even scan them.
        core.sat.add_clause(vec![guard.negated()]);
        core.sat.compact();
        if self.config.audit.certifies() {
            // Sweep the CDCL core's structural invariants between searches
            // (watcher lists just rebuilt by the compaction above).
            if let Err(e) = core.sat.check_invariants() {
                panic!("FLUX_AUDIT: SAT invariant violated after session check: {e}");
            }
            self.stats.certs_checked += 1;
        }
        // The counter windows close *after* retirement so the propagation
        // work of the compacting unit clause is attributed to this check
        // rather than slipping between windows.
        self.stats.pivots += (core.theory.pivots() - pivots_before) as usize;
        self.stats.propagations += core.sat.propagations() - props_before;
        self.stats.blocked_visits += core.sat.blocked_visits() - blocked_before;
        self.stats.db_reductions += core.sat.db_reductions() - reductions_before;
        self.stats.col_scans += (core.theory.col_scans() - col_scans_before) as usize;
        self.stats.budget_exhausted += core.sat.budget_stops() - stops_before;
        match outcome {
            SatOutcome::Unsat => Validity::Valid,
            SatOutcome::Sat(model) => Validity::Invalid(Some(model)),
            SatOutcome::Unknown => Validity::Unknown,
        }
    }

    fn check_one_shot(&mut self, goal: &Expr) -> Validity {
        let hyps = Expr::and_all(self.hyp_trees().iter().cloned());
        let negated = Expr::and(hyps, Expr::not(goal.clone()));
        let outcome = check_sat_impl(&self.config, &self.ctx, &negated, &mut self.stats);
        if self.config.audit.certifies() {
            if let SatOutcome::Sat(model) = &outcome {
                // The counter-model came from the preprocessed CNF; the
                // original negated query must not decidably contradict it.
                if model.eval_bool(&negated) == Some(false) {
                    panic!(
                        "FLUX_AUDIT: one-shot counter-model decidably falsifies \
                         the negated query it was derived from"
                    );
                }
                self.stats.certs_checked += 1;
            }
        }
        match outcome {
            SatOutcome::Unsat => Validity::Valid,
            SatOutcome::Sat(model) => Validity::Invalid(Some(model)),
            SatOutcome::Unknown => Validity::Unknown,
        }
    }

    /// Statistics accumulated by this session.
    pub fn stats(&self) -> &SmtStats {
        &self.stats
    }

    /// Number of theory lemmas currently persisted across checks.
    pub fn lemma_count(&self) -> usize {
        self.lemmas.len()
    }
}

/// Sessions (and the counter-models and verdicts they produce) travel to
/// worker threads in the parallel weakening scheduler of `flux-fixpoint`,
/// so they must stay [`Send`]: per-session state is exclusively owned —
/// the CDCL core, the simplex tableau and the statistics live in the
/// session itself — and everything shared across sessions (the atom
/// tables, the CNF memos, the prepared-constraint caches) is reached only
/// through the process-global shard mutexes in [`cnf_shard`], never
/// through `Rc`/`RefCell` aliasing.  A session carries only its shard
/// *index*, so moving it across threads moves no cache state at all.
/// These assertions turn any future hidden-sharing regression into a
/// compile error instead of a data race.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<Session>();
    assert_send::<Core>();
    assert_send::<crate::solver::Solver>();
    assert_send::<crate::solver::Model>();
    assert_send::<crate::solver::Validity>();
    assert_send::<crate::solver::SmtStats>();
};

enum Preprocessed {
    True,
    False,
    Formula(Expr),
}

/// The quantifier-free, application-free slice of the one-shot pipeline
/// (steps 3, 4 and 6 of [`check_sat_impl`]); quantifier elimination and
/// Ackermannization are identities on this fragment.
fn preprocess_qf(formula: &Expr, ctx: &SortCtx) -> Preprocessed {
    let mut defs = Vec::new();
    let f = eliminate_div_mod(formula, &mut defs);
    let f = Expr::and(f, Expr::and_all(defs));
    let f = eliminate_ite(&f);
    let f = normalize_comparisons(&f, ctx);
    let f = simplify(&f);
    if f.is_trivially_true() {
        Preprocessed::True
    } else if f.is_trivially_false() {
        Preprocessed::False
    } else {
        Preprocessed::Formula(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::Solver;
    use flux_logic::{Name, Sort};

    fn v(s: &str) -> Expr {
        Expr::var(Name::intern(s))
    }

    fn int_ctx(vars: &[&str]) -> SortCtx {
        let mut ctx = SortCtx::new();
        for name in vars {
            ctx.push(Name::intern(name), Sort::Int);
        }
        ctx
    }

    /// Checks that a session and one-shot solving agree on each
    /// (hypotheses, goal) pair, reusing one session per hypothesis set.
    fn assert_matches_one_shot(ctx: &SortCtx, hyps: &[Expr], goals: &[Expr]) {
        let mut session = Session::assume(SmtConfig::default(), ctx, hyps);
        for goal in goals {
            let mut one_shot = Solver::with_defaults();
            let reference = one_shot.check_valid_imp(ctx, hyps, goal);
            let incremental = session.check(goal);
            match (&incremental, &reference) {
                (Validity::Valid, Validity::Valid)
                | (Validity::Invalid(_), Validity::Invalid(_))
                | (Validity::Unknown, Validity::Unknown) => {}
                _ => panic!(
                    "session disagreed with one-shot on {goal}: {incremental:?} vs {reference:?}"
                ),
            }
        }
    }

    #[test]
    fn verdict_matrix_matches_one_shot() {
        let ctx = int_ctx(&["i", "n"]);
        let i = v("i");
        let n = v("n");
        let hyps = vec![
            Expr::ge(i.clone(), Expr::int(0)),
            Expr::lt(i.clone(), n.clone()),
        ];
        let goals = vec![
            // Valid: i + 1 <= n.
            Expr::le(i.clone() + Expr::int(1), n.clone()),
            // Invalid: i >= 1.
            Expr::ge(i.clone(), Expr::int(1)),
            // Valid: n > 0.
            Expr::gt(n.clone(), Expr::int(0)),
            // Invalid: i = 0.
            Expr::eq(i.clone(), Expr::int(0)),
            // Trivially valid and trivially invalid goals.
            Expr::tt(),
            Expr::ff(),
        ];
        assert_matches_one_shot(&ctx, &hyps, &goals);
    }

    #[test]
    fn empty_hypotheses_match_one_shot() {
        let ctx = int_ctx(&["x"]);
        let goals = vec![
            Expr::ge(v("x"), v("x")),
            Expr::ge(v("x"), Expr::int(0)),
            Expr::tt(),
        ];
        assert_matches_one_shot(&ctx, &[], &goals);
    }

    #[test]
    fn contradictory_hypotheses_prove_everything() {
        let ctx = int_ctx(&["x"]);
        let hyps = vec![
            Expr::lt(v("x"), Expr::int(0)),
            Expr::gt(v("x"), Expr::int(0)),
        ];
        let mut session = Session::assume(SmtConfig::default(), &ctx, &hyps);
        assert!(session.check(&Expr::eq(v("x"), Expr::int(99))).is_valid());
        assert!(session.check(&Expr::ff()).is_valid());
    }

    #[test]
    fn boolean_structure_matches_one_shot() {
        let mut ctx = SortCtx::new();
        ctx.push(Name::intern("p"), Sort::Bool);
        ctx.push(Name::intern("q"), Sort::Bool);
        let hyps = vec![v("p"), Expr::imp(v("p"), v("q"))];
        let goals = vec![v("q"), v("p"), Expr::and(v("p"), v("q")), Expr::not(v("q"))];
        assert_matches_one_shot(&ctx, &hyps, &goals);
    }

    /// The same syntactic conjunct bound at different sorts in different
    /// sessions must not poison the global preprocessing cache: comparison
    /// normalisation depends on the operand sorts, which are part of the
    /// cache key.
    #[test]
    fn preproc_cache_distinguishes_sorts() {
        let shared = Expr::eq(v("cc_sorted"), v("cc_other"));
        // Int-sorted: x = y is satisfiable, goal x >= y follows from it.
        let ctx_int = int_ctx(&["cc_sorted", "cc_other"]);
        let mut s1 = Session::assume(SmtConfig::default(), &ctx_int, &[shared.clone()]);
        assert!(s1
            .check(&Expr::ge(v("cc_sorted"), v("cc_other")))
            .is_valid());
        // Bool-sorted: p = q must become iff, and p ⟹ q must hold.
        let mut ctx_bool = SortCtx::new();
        ctx_bool.push(Name::intern("cc_sorted"), Sort::Bool);
        ctx_bool.push(Name::intern("cc_other"), Sort::Bool);
        let mut s2 = Session::assume(SmtConfig::default(), &ctx_bool, &[shared, v("cc_sorted")]);
        assert!(s2.check(&v("cc_other")).is_valid());
    }

    #[test]
    fn quantified_hypotheses_fall_back_to_one_shot() {
        let mut ctx = int_ctx(&["i", "lenv"]);
        ctx.push(Name::intern("a"), Sort::Array);
        let j = Name::intern("j");
        let axiom = Expr::forall(
            vec![(j, Sort::Int)],
            Expr::imp(
                Expr::and(
                    Expr::ge(Expr::var(j), Expr::int(0)),
                    Expr::lt(Expr::var(j), v("lenv")),
                ),
                Expr::ge(
                    Expr::app("select", vec![v("a"), Expr::var(j)]),
                    Expr::int(0),
                ),
            ),
        );
        let hyps = vec![
            axiom,
            Expr::ge(v("i"), Expr::int(0)),
            Expr::lt(v("i"), v("lenv")),
        ];
        let goal = Expr::ge(Expr::app("select", vec![v("a"), v("i")]), Expr::int(0));
        let mut session = Session::assume(SmtConfig::default(), &ctx, &hyps);
        assert!(session.check(&goal).is_valid());
    }

    #[test]
    fn uninterpreted_goal_falls_back_to_one_shot() {
        let mut ctx = int_ctx(&["x"]);
        ctx.declare_fn(Name::intern("f"), vec![Sort::Int], Sort::Int);
        let hyps = vec![Expr::eq(v("x"), Expr::int(3))];
        let mut session = Session::assume(SmtConfig::default(), &ctx, &hyps);
        // f(x) = f(3) needs congruence, which only the one-shot
        // Ackermannization provides.
        let goal = Expr::eq(
            Expr::app("f", vec![v("x")]),
            Expr::app("f", vec![Expr::int(3)]),
        );
        assert!(session.check(&goal).is_valid());
    }

    #[test]
    fn division_in_hypotheses_and_goals() {
        let ctx = int_ctx(&["lo", "hi", "n"]);
        let mid = Expr::binop(flux_logic::BinOp::Div, v("lo") + v("hi"), Expr::int(2));
        let hyps = vec![
            Expr::ge(v("lo"), Expr::int(0)),
            Expr::le(v("lo"), v("hi")),
            Expr::lt(v("hi"), v("n")),
        ];
        let goals = vec![
            Expr::lt(mid.clone(), v("n")),
            Expr::ge(mid.clone(), v("lo")),
            Expr::gt(mid, v("hi")),
        ];
        assert_matches_one_shot(&ctx, &hyps, &goals);
    }

    #[test]
    fn counter_models_satisfy_hypotheses() {
        let ctx = int_ctx(&["n"]);
        let hyps = vec![Expr::ge(v("n"), Expr::int(0))];
        let mut session = Session::assume(SmtConfig::default(), &ctx, &hyps);
        match session.check(&Expr::ge(v("n") - Expr::int(1), Expr::int(0))) {
            Validity::Invalid(Some(model)) => {
                let n = model.ints.get(&Name::intern("n")).copied().unwrap_or(0);
                assert!(n == 0, "counter-model should pick n = 0, got {n}");
            }
            other => panic!("expected invalid with model, got {other:?}"),
        }
    }

    #[test]
    fn theory_lemmas_persist_across_checks() {
        let ctx = int_ctx(&["i", "n"]);
        let hyps = vec![Expr::ge(v("i"), Expr::int(0)), Expr::lt(v("i"), v("n"))];
        let mut session = Session::assume(SmtConfig::default(), &ctx, &hyps);
        // Valid goals force theory conflicts, which become persisted lemmas.
        assert!(session
            .check(&Expr::le(v("i") + Expr::int(1), v("n")))
            .is_valid());
        let after_first = session.lemma_count();
        assert!(session.check(&Expr::gt(v("n"), Expr::int(0))).is_valid());
        assert!(
            session.lemma_count() >= after_first,
            "lemmas must never be dropped between checks"
        );
        assert_eq!(session.stats().queries, 2);
        assert_eq!(session.stats().sessions, 1);
    }

    #[test]
    fn session_reuse_is_cheaper_than_one_shot() {
        // The incremental path must do fewer SAT rounds in total than
        // re-solving from scratch, on a workload with shared hypotheses.
        let ctx = int_ctx(&["i", "n"]);
        let hyps = vec![Expr::ge(v("i"), Expr::int(0)), Expr::lt(v("i"), v("n"))];
        let goals: Vec<Expr> = (1..=8)
            .map(|k| Expr::lt(v("i"), v("n") + Expr::int(k)))
            .collect();

        let mut session = Session::assume(SmtConfig::default(), &ctx, &hyps);
        for goal in &goals {
            assert!(session.check(goal).is_valid());
        }
        let incremental_rounds = session.stats().sat_rounds;

        let mut one_shot = Solver::with_defaults();
        for goal in &goals {
            assert!(one_shot
                .check_valid_imp(&ctx, hyps.as_slice(), goal)
                .is_valid());
        }
        let one_shot_rounds = one_shot.stats.sat_rounds;
        assert!(
            incremental_rounds <= one_shot_rounds,
            "incremental path used more SAT rounds ({incremental_rounds}) than one-shot \
             ({one_shot_rounds})"
        );
    }

    /// The persistent CDCL core must actually be reused across the checks
    /// of one session, and its reuse must be visible in the statistics.
    #[test]
    fn persistent_core_reuse_is_counted() {
        let ctx = int_ctx(&["i", "n"]);
        let hyps = vec![Expr::ge(v("i"), Expr::int(0)), Expr::lt(v("i"), v("n"))];
        let mut session = Session::assume(SmtConfig::default(), &ctx, &hyps);
        assert!(session
            .check(&Expr::le(v("i") + Expr::int(1), v("n")))
            .is_valid());
        assert_eq!(session.stats().sat_reuse, 0, "first check builds the core");
        assert!(session.check(&Expr::gt(v("n"), Expr::int(0))).is_valid());
        assert!(!session.check(&Expr::gt(v("i"), Expr::int(0))).is_valid());
        assert_eq!(
            session.stats().sat_reuse,
            2,
            "later checks must reuse the core"
        );
    }

    /// Retracting and re-asserting hypothesis conjuncts on a live session
    /// must flip verdicts exactly as a fresh session over the new context
    /// would, without opening a new session.
    #[test]
    fn update_hypotheses_matches_fresh_session() {
        let ctx = int_ctx(&["i", "n"]);
        let strong = vec![Expr::ge(v("i"), Expr::int(1)), Expr::lt(v("i"), v("n"))];
        let weak = vec![Expr::ge(v("i"), Expr::int(0)), Expr::lt(v("i"), v("n"))];
        let goal_pos = Expr::gt(v("i"), Expr::int(0));
        let goal_n = Expr::gt(v("n"), Expr::int(0));
        let mut session = Session::assume(SmtConfig::default(), &ctx, &strong);
        assert!(session.check(&goal_pos).is_valid());
        assert!(session.check(&goal_n).is_valid());
        let weak_ids: Vec<ExprId> = weak.iter().map(ExprId::intern).collect();
        assert!(
            session.update_hypotheses(&weak_ids),
            "quantifier-free update must succeed in place"
        );
        assert_eq!(
            session.stats().conjunct_retractions,
            1,
            "exactly the strengthened lower bound is retracted"
        );
        assert!(
            !session.check(&goal_pos).is_valid(),
            "the weakened hypotheses no longer prove i > 0"
        );
        assert!(session.check(&goal_n).is_valid());
        assert_eq!(session.stats().sessions, 1, "no session rebuild");

        // Strengthening back re-proves the goal on the same core.
        let strong_ids: Vec<ExprId> = strong.iter().map(ExprId::intern).collect();
        assert!(session.update_hypotheses(&strong_ids));
        assert!(session.check(&goal_pos).is_valid());
    }

    /// An update that leaves the incremental fragment must refuse and leave
    /// the session's verdicts untouched.
    #[test]
    fn update_hypotheses_refuses_mode_changes() {
        let ctx = int_ctx(&["i", "n"]);
        let hyps = vec![Expr::ge(v("i"), Expr::int(0)), Expr::lt(v("i"), v("n"))];
        let mut session = Session::assume(SmtConfig::default(), &ctx, &hyps);
        assert!(session.check(&Expr::gt(v("n"), Expr::int(0))).is_valid());
        let j = Name::intern("uh_j");
        let quantified = Expr::forall(
            vec![(j, Sort::Int)],
            Expr::ge(Expr::var(j) + Expr::int(1), Expr::var(j)),
        );
        let contradictory = Expr::lt(v("i"), v("i"));
        for bad in [quantified, contradictory] {
            let ids = vec![ExprId::intern(&bad)];
            assert!(
                !session.update_hypotheses(&ids),
                "update to {bad} must be refused"
            );
        }
        // The session still answers under the original hypotheses.
        assert!(session.check(&Expr::gt(v("n"), Expr::int(0))).is_valid());
        assert!(!session.check(&Expr::gt(v("i"), Expr::int(0))).is_valid());
    }
}
