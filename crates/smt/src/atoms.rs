//! Theory atoms and literals shared between the CNF converter, the SAT core
//! and the DPLL(T) driver.

use crate::linear::LinConstraint;
use flux_logic::{Expr, Name};
use std::collections::HashMap;
use std::fmt;

/// A theory atom: the positive phase of a literal.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum Atom {
    /// A boolean-sorted refinement variable treated propositionally.
    Bool(Name),
    /// A linear integer constraint `e ≤ 0`.
    Lin(LinConstraint),
    /// A predicate the linear theory cannot interpret (non-linear
    /// arithmetic, equality between non-integer sorts).  It is treated as an
    /// opaque propositional variable keyed by its syntax, which
    /// over-approximates satisfiability (sound for proving validity: the
    /// solver can only fail to prove, never prove wrongly).
    Opaque(Expr),
}

/// Identifier of an interned [`Atom`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AtomId(pub u32);

/// A literal: an atom with a phase.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Lit {
    /// The atom.
    pub atom: AtomId,
    /// `true` for the positive phase.
    pub positive: bool,
}

impl Lit {
    /// Positive literal of `atom`.
    pub fn pos(atom: AtomId) -> Lit {
        Lit {
            atom,
            positive: true,
        }
    }

    /// Negative literal of `atom`.
    pub fn neg(atom: AtomId) -> Lit {
        Lit {
            atom,
            positive: false,
        }
    }

    /// The complementary literal.
    pub fn negated(self) -> Lit {
        Lit {
            atom: self.atom,
            positive: !self.positive,
        }
    }
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.positive {
            write!(f, "a{}", self.atom.0)
        } else {
            write!(f, "¬a{}", self.atom.0)
        }
    }
}

/// Interning table for atoms.
#[derive(Default, Debug)]
pub struct AtomTable {
    atoms: Vec<Atom>,
    index: HashMap<Atom, AtomId>,
}

impl AtomTable {
    /// Creates an empty table.
    pub fn new() -> AtomTable {
        AtomTable::default()
    }

    /// Interns `atom`, returning its identifier.
    pub fn intern(&mut self, atom: Atom) -> AtomId {
        if let Some(&id) = self.index.get(&atom) {
            return id;
        }
        let id = AtomId(self.atoms.len() as u32);
        self.atoms.push(atom.clone());
        self.index.insert(atom, id);
        id
    }

    /// Looks up an atom by id.
    pub fn get(&self, id: AtomId) -> &Atom {
        &self.atoms[id.0 as usize]
    }

    /// Number of interned atoms.
    pub fn len(&self) -> usize {
        self.atoms.len()
    }

    /// True if no atoms have been interned.
    pub fn is_empty(&self) -> bool {
        self.atoms.is_empty()
    }

    /// Iterates over (id, atom) pairs.
    pub fn iter(&self) -> impl Iterator<Item = (AtomId, &Atom)> {
        self.atoms
            .iter()
            .enumerate()
            .map(|(i, a)| (AtomId(i as u32), a))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linear::LinExpr;

    #[test]
    fn interning_is_idempotent() {
        let mut table = AtomTable::new();
        let a1 = table.intern(Atom::Bool(Name::intern("p")));
        let a2 = table.intern(Atom::Bool(Name::intern("p")));
        let a3 = table.intern(Atom::Bool(Name::intern("q")));
        assert_eq!(a1, a2);
        assert_ne!(a1, a3);
        assert_eq!(table.len(), 2);
    }

    #[test]
    fn lin_atoms_with_same_constraint_are_shared() {
        let mut table = AtomTable::new();
        let c = LinConstraint::le_zero(LinExpr::var(Name::intern("x")));
        let a1 = table.intern(Atom::Lin(c.clone()));
        let a2 = table.intern(Atom::Lin(c));
        assert_eq!(a1, a2);
        assert_eq!(table.len(), 1);
    }

    #[test]
    fn literal_negation_is_involutive() {
        let l = Lit::pos(AtomId(3));
        assert_eq!(l.negated().negated(), l);
        assert_ne!(l.negated(), l);
    }

    #[test]
    fn get_returns_interned_atom() {
        let mut table = AtomTable::new();
        let id = table.intern(Atom::Bool(Name::intern("flag")));
        assert_eq!(table.get(id), &Atom::Bool(Name::intern("flag")));
    }

    #[test]
    fn iteration_matches_ids() {
        let mut table = AtomTable::new();
        let id0 = table.intern(Atom::Bool(Name::intern("b0")));
        let id1 = table.intern(Atom::Bool(Name::intern("b1")));
        let ids: Vec<AtomId> = table.iter().map(|(id, _)| id).collect();
        assert_eq!(ids, vec![id0, id1]);
    }
}
