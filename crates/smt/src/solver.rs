//! The DPLL(T) driver and the public solver interface.
//!
//! [`Solver::check_sat`] decides satisfiability of a refinement-logic
//! formula modulo linear integer arithmetic; [`Solver::check_valid_imp`]
//! decides validity of an implication, which is what the type checker and
//! the Horn-constraint solver ask for.  `check_valid_imp` is a thin wrapper
//! over a one-shot [`crate::Session`]; callers issuing many goals against
//! the same hypotheses should open a session directly (via
//! [`Solver::assume`]) so the hypothesis context is preprocessed once.
//!
//! The loop is the classical lazy SMT architecture: the formula is
//! preprocessed and converted to CNF over theory atoms; the CDCL SAT core
//! proposes boolean models; the linear-arithmetic solver checks the
//! conjunction of asserted atoms and, on conflict, contributes a blocking
//! clause built from an infeasible core.

use crate::atoms::{Atom, AtomTable, Lit};
use crate::audit;
use crate::budget::{default_timeout, ResourceBudget};
use crate::cnf::tseitin;
use crate::preprocess::{ackermannize, eliminate_div_mod, eliminate_ite, normalize_comparisons};
use crate::quant::{eliminate_quantifiers, QuantConfig};
use crate::sat::{SatConfig, SatLit, SatResult, SatSolver};
use crate::session::Session;
use crate::simplex::{IncrementalSimplex, LiaConfig, LiaResult};
use flux_logic::{evaluate, simplify, AuditTier, Expr, ExprId, Name, SortCtx, Value};
use std::collections::BTreeMap;

/// Configuration of the SMT solver.
#[derive(Clone, Copy, Debug)]
pub struct SmtConfig {
    /// SAT-core limits.
    pub sat: SatConfig,
    /// Linear-arithmetic limits.
    pub lia: LiaConfig,
    /// Quantifier-instantiation limits (only exercised by the baseline).
    pub quant: QuantConfig,
    /// Maximum number of SAT/theory iterations per query.
    pub max_theory_rounds: MaxTheoryRounds,
    /// Audit tier.  Under [`AuditTier::Full`] every theory conflict is
    /// certified (Farkas combination or independent LIA replay), every
    /// model is re-evaluated against the live clauses and asserted atoms,
    /// and the SAT core's invariants are swept after each search; a failure
    /// panics, because it is a solver bug, not a property of the input.
    pub audit: AuditTier,
    /// Resource limits (wall-clock deadline and step caps).  This is the
    /// authoritative copy: the SAT and simplex configs receive it at solver
    /// construction, so setting it here governs the whole stack.  The
    /// default is unlimited except for a `FLUX_DEADLINE_MS` timeout when
    /// that variable is set.
    pub budget: ResourceBudget,
}

impl Default for SmtConfig {
    fn default() -> Self {
        SmtConfig {
            sat: SatConfig::default(),
            lia: LiaConfig::default(),
            quant: QuantConfig::default(),
            max_theory_rounds: MaxTheoryRounds::default(),
            audit: flux_logic::audit_tier(),
            budget: ResourceBudget {
                timeout: default_timeout(),
                ..ResourceBudget::UNLIMITED
            },
        }
    }
}

/// Newtype for the theory-round limit so `SmtConfig` can derive `Default`.
#[derive(Clone, Copy, Debug)]
pub struct MaxTheoryRounds(pub usize);

impl Default for MaxTheoryRounds {
    fn default() -> Self {
        MaxTheoryRounds(2_000)
    }
}

/// Cumulative statistics of a [`Solver`] (or a [`crate::Session`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SmtStats {
    /// Number of satisfiability queries.
    pub queries: usize,
    /// Number of solver sessions opened (including the implicit one-shot
    /// session behind every `check_valid_imp` call).
    pub sessions: usize,
    /// Number of SAT-solver invocations across all queries.
    pub sat_rounds: usize,
    /// Goal checks discharged on a session's already-built persistent CDCL
    /// core (clause database and learned clauses retained from an earlier
    /// goal of the same session) instead of rebuilding SAT state.
    pub sat_reuse: usize,
    /// Number of theory (LIA) checks.
    pub theory_checks: usize,
    /// Number of simplex pivots across all theory checks.
    pub pivots: usize,
    /// Number of literals assigned by SAT unit propagation.
    pub propagations: usize,
    /// Number of quantifier instances generated.
    pub quant_instances: usize,
    /// Watcher visits answered by the cached blocking literal alone,
    /// without touching the clause.
    pub blocked_visits: usize,
    /// Learned-clause-database reductions performed by the SAT cores.
    pub db_reductions: usize,
    /// Simplex column traversals driven by the occurrence lists (or row
    /// scans in legacy mode) while hunting for violated basic variables.
    pub col_scans: usize,
    /// Hypothesis conjuncts retracted from a live session (by rebuilding
    /// the SAT clause database from the surviving conjuncts' cached CNFs,
    /// keeping the variable space and the simplex tableau) instead of
    /// discarding the session when the hypothesis context changed.
    pub conjunct_retractions: usize,
    /// Theory certificates checked under `FLUX_AUDIT=full`: one per
    /// certified conflict core, validated model, and SAT invariant sweep.
    pub certs_checked: usize,
    /// Checks that gave up because a [`ResourceBudget`] limit tripped: SAT
    /// searches stopped at a decision/conflict cap, plus deadline-driven
    /// exits from the DPLL(T) theory-round loops.  Always zero under the
    /// default unlimited budget.
    pub budget_exhausted: usize,
}

impl SmtStats {
    /// Adds `other` into `self` field-wise; used to fold the statistics of a
    /// finished session back into the owning solver.
    pub fn absorb(&mut self, other: SmtStats) {
        self.queries += other.queries;
        self.sessions += other.sessions;
        self.sat_rounds += other.sat_rounds;
        self.sat_reuse += other.sat_reuse;
        self.theory_checks += other.theory_checks;
        self.pivots += other.pivots;
        self.propagations += other.propagations;
        self.quant_instances += other.quant_instances;
        self.blocked_visits += other.blocked_visits;
        self.db_reductions += other.db_reductions;
        self.col_scans += other.col_scans;
        self.conjunct_retractions += other.conjunct_retractions;
        self.certs_checked += other.certs_checked;
        self.budget_exhausted += other.budget_exhausted;
    }

    /// Field-wise difference `self - earlier`; used to attribute a shared
    /// solver's cumulative counters to the work done since a snapshot.
    pub fn since(&self, earlier: SmtStats) -> SmtStats {
        SmtStats {
            queries: self.queries - earlier.queries,
            sessions: self.sessions - earlier.sessions,
            sat_rounds: self.sat_rounds - earlier.sat_rounds,
            sat_reuse: self.sat_reuse - earlier.sat_reuse,
            theory_checks: self.theory_checks - earlier.theory_checks,
            pivots: self.pivots - earlier.pivots,
            propagations: self.propagations - earlier.propagations,
            quant_instances: self.quant_instances - earlier.quant_instances,
            blocked_visits: self.blocked_visits - earlier.blocked_visits,
            db_reductions: self.db_reductions - earlier.db_reductions,
            col_scans: self.col_scans - earlier.col_scans,
            conjunct_retractions: self.conjunct_retractions - earlier.conjunct_retractions,
            certs_checked: self.certs_checked - earlier.certs_checked,
            budget_exhausted: self.budget_exhausted - earlier.budget_exhausted,
        }
    }
}

/// A model of a satisfiable formula.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Model {
    /// Values of integer-sorted variables.
    pub ints: BTreeMap<Name, i128>,
    /// Values of boolean-sorted variables.
    pub bools: BTreeMap<Name, bool>,
}

impl Model {
    /// The value this model assigns to `name`, if any.
    pub fn value_of(&self, name: Name) -> Option<Value> {
        if let Some(&i) = self.ints.get(&name) {
            return Some(Value::Int(i));
        }
        self.bools.get(&name).map(|&b| Value::Bool(b))
    }

    /// Evaluates `expr` under this (possibly partial) model; `None` when the
    /// value cannot be determined (unassigned variable, uninterpreted
    /// application, quantifier, division by zero — see
    /// [`flux_logic::evaluate`]).
    pub fn eval(&self, expr: &Expr) -> Option<Value> {
        evaluate(expr, &|name| self.value_of(name))
    }

    /// Evaluates a predicate to a boolean, when decidable.
    pub fn eval_bool(&self, expr: &Expr) -> Option<bool> {
        self.eval(expr).and_then(Value::as_bool)
    }

    /// True iff every predicate in `preds` decidably evaluates to `true`
    /// under this model.  The fixpoint solver uses this to confirm that a
    /// counter-model genuinely satisfies a clause's hypotheses before
    /// trusting it to prune candidates: the check makes pruning sound even
    /// when the solver produced the model through an abstraction (opaque
    /// non-linear atoms) that the evaluator interprets exactly.
    pub fn satisfies_all(&self, preds: &[Expr]) -> bool {
        preds.iter().all(|p| self.eval_bool(p) == Some(true))
    }

    /// [`Model::eval`] over a hash-consed expression: evaluates directly on
    /// the shared DAG with per-call memoization, so callers that track
    /// [`ExprId`]s (the fixpoint weakening loop) never materialize trees
    /// just to test a counter-model.
    pub fn eval_id(&self, expr: ExprId) -> Option<Value> {
        expr.evaluate(&|name| self.value_of(name))
    }

    /// [`Model::eval_bool`] over a hash-consed expression.
    pub fn eval_bool_id(&self, expr: ExprId) -> Option<bool> {
        self.eval_id(expr).and_then(Value::as_bool)
    }

    /// [`Model::satisfies_all`] over hash-consed predicates.
    pub fn satisfies_all_ids(&self, preds: &[ExprId]) -> bool {
        preds.iter().all(|&p| self.eval_bool_id(p) == Some(true))
    }
}

/// Result of a satisfiability check.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SatOutcome {
    /// The formula is satisfiable.
    Sat(Model),
    /// The formula is unsatisfiable.
    Unsat,
    /// The solver could not decide within its limits.
    Unknown,
}

/// Result of a validity check.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Validity {
    /// The implication is valid.
    Valid,
    /// The implication is invalid; a counter-model may be available.
    Invalid(Option<Model>),
    /// The solver could not decide within its limits.
    Unknown,
}

impl Validity {
    /// True if the result is [`Validity::Valid`].
    pub fn is_valid(&self) -> bool {
        matches!(self, Validity::Valid)
    }
}

/// The SMT solver.
#[derive(Debug, Default)]
pub struct Solver {
    /// Configuration limits.
    pub config: SmtConfig,
    /// Statistics accumulated across queries.
    pub stats: SmtStats,
}

impl Solver {
    /// Creates a solver with the given configuration.
    pub fn new(config: SmtConfig) -> Solver {
        Solver {
            config,
            stats: SmtStats::default(),
        }
    }

    /// Creates a solver with default configuration.
    pub fn with_defaults() -> Solver {
        Solver::new(SmtConfig::default())
    }

    /// Checks satisfiability of `formula` under `ctx`.
    pub fn check_sat(&mut self, ctx: &SortCtx, formula: &Expr) -> SatOutcome {
        self.stats.queries += 1;
        check_sat_impl(&self.config, ctx, formula, &mut self.stats)
    }

    /// Checks the validity of `hypotheses ⟹ goal` under `ctx`.
    ///
    /// This is a thin wrapper over a one-shot [`Session`]: it assumes the
    /// hypotheses, checks the single goal, and folds the session statistics
    /// back into [`Solver::stats`].
    pub fn check_valid_imp(&mut self, ctx: &SortCtx, hypotheses: &[Expr], goal: &Expr) -> Validity {
        let mut session = Session::assume(self.config, ctx, hypotheses);
        let verdict = session.check(goal);
        self.stats.absorb(*session.stats());
        verdict
    }

    /// Opens an incremental session that assumes `hypotheses` once and can
    /// then check many goals against them.  Fold the session's statistics
    /// back with [`Solver::absorb`] when done.
    pub fn assume(&mut self, ctx: &SortCtx, hypotheses: &[Expr]) -> Session {
        Session::assume(self.config, ctx, hypotheses)
    }

    /// Adds a finished session's statistics to this solver's statistics.
    pub fn absorb(&mut self, stats: SmtStats) {
        self.stats.absorb(stats);
    }
}

/// The one-shot satisfiability pipeline shared by [`Solver::check_sat`] and
/// the non-incremental fallback of [`Session`].  Does not count the query
/// itself; callers track `stats.queries`.
pub(crate) fn check_sat_impl(
    config: &SmtConfig,
    ctx: &SortCtx,
    formula: &Expr,
    stats: &mut SmtStats,
) -> SatOutcome {
    // Stamp the wall-clock deadline for this query (a no-op when already
    // stamped by an enclosing solve or when no timeout is configured).
    let config = &SmtConfig {
        budget: config.budget.stamped(),
        ..*config
    };
    // 1. Simplify.
    let f = simplify(formula);
    // 2. Quantifiers.  The budget's per-quantifier instance cap tightens
    // the configured one.
    let mut quant = config.quant;
    if let Some(cap) = config.budget.quant_instances {
        quant.max_instances_per_quantifier = quant.max_instances_per_quantifier.min(cap as usize);
    }
    let (f, ctx, qstats) = eliminate_quantifiers(&f, ctx, &quant);
    stats.quant_instances += qstats.instances;
    // 3. Integer division / remainder.
    let mut defs = Vec::new();
    let f = eliminate_div_mod(&f, &mut defs);
    let f = Expr::and(f, Expr::and_all(defs));
    // 4. If-then-else.
    let f = eliminate_ite(&f);
    // 5. Uninterpreted applications.
    let mut axioms = Vec::new();
    let (f, ctx) = ackermannize(&f, &ctx, &mut axioms);
    let f = Expr::and(f, Expr::and_all(axioms));
    // 6. Comparison normalisation + final simplification.
    let f = normalize_comparisons(&f, &ctx);
    let f = simplify(&f);

    if f.is_trivially_true() {
        return SatOutcome::Sat(Model::default());
    }
    if f.is_trivially_false() {
        return SatOutcome::Unsat;
    }

    // 7. CNF conversion.
    let mut atoms = AtomTable::new();
    let cnf = match tseitin(&f, &mut atoms) {
        Ok(cnf) => cnf,
        Err(_) => return SatOutcome::Unknown,
    };

    // 8. Lazy DPLL(T) loop.
    let mut lemmas = Vec::new();
    dpll_t(config, &cnf.clauses, &[], &mut atoms, &mut lemmas, stats)
}

/// The lazy DPLL(T) loop over `clauses ∪ extra ∪ lemmas`.
///
/// One SAT solver and one [`IncrementalSimplex`] persist across all theory
/// rounds of the query: theory conflicts are added to the live clause
/// database (keeping everything the CDCL core has learned so far), and the
/// simplex tableau keeps its pivoted basis between checks, so each round
/// only repairs the bounds that changed.  Theory conflicts are also
/// appended to `lemmas`.  Those clauses are *theory tautologies* (the
/// negation of a LIA-infeasible conjunction of literals), so they remain
/// valid for any later query sharing the same [`AtomTable`].
pub(crate) fn dpll_t(
    config: &SmtConfig,
    clauses: &[Vec<Lit>],
    extra: &[Vec<Lit>],
    atoms: &mut AtomTable,
    lemmas: &mut Vec<Vec<Lit>>,
    stats: &mut SmtStats,
) -> SatOutcome {
    // A session's atom table accumulates atoms from every goal it has
    // checked; atoms not mentioned by the *current* clause sets are
    // unconstrained in this query and must not be asserted to the theory —
    // they would cost O(table) work per round and their arbitrary SAT
    // values could manufacture spurious theory conflicts.  Lemmas learned
    // below only ever use atoms marked here, so one pass suffices.
    let mut relevant = vec![false; atoms.len()];
    for clause in clauses.iter().chain(extra.iter()).chain(lemmas.iter()) {
        for lit in clause {
            relevant[lit.atom.0 as usize] = true;
        }
    }
    // The budget is authoritative on `SmtConfig`; copy it into the
    // sub-solver configs so their hot loops see the same limits.
    let mut sat = SatSolver::new(
        atoms.len(),
        SatConfig {
            budget: config.budget,
            ..config.sat
        },
    );
    for clause in clauses.iter().chain(extra.iter()).chain(lemmas.iter()) {
        sat.add_clause(
            clause
                .iter()
                .map(|l| SatLit::new(l.atom.0 as usize, l.positive))
                .collect(),
        );
    }
    // Register the relevant linear atoms' constraint rows once.
    let mut theory = IncrementalSimplex::new(LiaConfig {
        budget: config.budget,
        ..config.lia
    });
    let mut lin_atoms = Vec::new();
    for (id, atom) in atoms.iter() {
        if !relevant[id.0 as usize] {
            continue;
        }
        if let Atom::Lin(c) = atom {
            lin_atoms.push((id, theory.register(c)));
        }
    }
    let outcome = 'search: {
        for _ in 0..config.max_theory_rounds.0 {
            // The theory-round loop is the coarse deadline check of the
            // one-shot path; the SAT core checks (amortized) inside a round.
            if config.budget.deadline_exceeded() {
                stats.budget_exhausted += 1;
                break 'search SatOutcome::Unknown;
            }
            stats.sat_rounds += 1;
            match sat.solve() {
                SatResult::Unsat => break 'search SatOutcome::Unsat,
                SatResult::Unknown => break 'search SatOutcome::Unknown,
                SatResult::Sat(assignment) => {
                    stats.theory_checks += 1;
                    // Assert the linear atoms' bounds under the SAT
                    // assignment inside one backtracking scope.
                    let mut involved = Vec::with_capacity(lin_atoms.len());
                    let mut assert_conflict: Option<Vec<usize>> = None;
                    theory.push();
                    for (k, (id, slot)) in lin_atoms.iter().enumerate() {
                        let value = assignment[id.0 as usize];
                        involved.push(Lit {
                            atom: *id,
                            positive: value,
                        });
                        if let Err(core) = theory.assert_constraint(*slot, value, k) {
                            assert_conflict = Some(core);
                            break;
                        }
                    }
                    let result = match assert_conflict {
                        Some(core) => LiaResult::Infeasible(core),
                        None => theory.check_integer(),
                    };
                    theory.pop();
                    match result {
                        LiaResult::Feasible(int_model) => {
                            if config.audit.certifies() {
                                let value = |lit: Lit| {
                                    Some(assignment[lit.atom.0 as usize] == lit.positive)
                                };
                                let asserted: Vec<_> =
                                    audit::asserted_constraints(&involved, atoms)
                                        .into_iter()
                                        .map(|c| (c, true))
                                        .collect();
                                audit::validate_clauses(
                                    "query",
                                    clauses.iter().chain(extra.iter()).chain(lemmas.iter()),
                                    value,
                                )
                                .and_then(|()| {
                                    audit::validate_theory_assignment(&asserted, &int_model)
                                })
                                .unwrap_or_else(|e| panic!("FLUX_AUDIT: {e}"));
                                stats.certs_checked += 1;
                            }
                            break 'search SatOutcome::Sat(build_model(
                                &assignment,
                                atoms,
                                int_model,
                            ));
                        }
                        LiaResult::Unknown => break 'search SatOutcome::Unknown,
                        LiaResult::Infeasible(core) => {
                            if config.audit.certifies() {
                                let conflict: Vec<Lit> = if core.is_empty() {
                                    involved.clone()
                                } else {
                                    core.iter().map(|&i| involved[i]).collect()
                                };
                                let constraints = audit::asserted_constraints(&conflict, atoms);
                                if let Err(e) = audit::certify_infeasible_core(&constraints) {
                                    panic!("FLUX_AUDIT: {e}");
                                }
                                stats.certs_checked += 1;
                            }
                            let clause: Vec<Lit> = if core.is_empty() {
                                // Defensive: block the entire assignment.
                                involved.iter().map(|l| l.negated()).collect()
                            } else {
                                core.iter().map(|&i| involved[i].negated()).collect()
                            };
                            sat.add_clause(
                                clause
                                    .iter()
                                    .map(|l| SatLit::new(l.atom.0 as usize, l.positive))
                                    .collect(),
                            );
                            lemmas.push(clause);
                        }
                    }
                }
            }
        }
        SatOutcome::Unknown
    };
    if config.audit.certifies() {
        if let Err(e) = sat.check_invariants() {
            panic!("FLUX_AUDIT: SAT invariant violated after search: {e}");
        }
        stats.certs_checked += 1;
    }
    stats.pivots += theory.pivots() as usize;
    stats.propagations += sat.propagations();
    stats.blocked_visits += sat.blocked_visits();
    stats.db_reductions += sat.db_reductions();
    stats.col_scans += theory.col_scans() as usize;
    stats.budget_exhausted += sat.budget_stops();
    outcome
}

pub(crate) fn build_model(
    assignment: &[bool],
    atoms: &AtomTable,
    int_model: BTreeMap<Name, i128>,
) -> Model {
    let mut model = Model {
        ints: int_model,
        bools: BTreeMap::new(),
    };
    for (id, atom) in atoms.iter() {
        if let Atom::Bool(name) = atom {
            if !name.as_str().starts_with('$') {
                model.bools.insert(*name, assignment[id.0 as usize]);
            }
        }
    }
    model
}

#[cfg(test)]
mod tests {
    use super::*;
    use flux_logic::Sort;

    fn v(s: &str) -> Expr {
        Expr::var(Name::intern(s))
    }

    fn int_ctx(vars: &[&str]) -> SortCtx {
        let mut ctx = SortCtx::new();
        for name in vars {
            ctx.push(Name::intern(name), Sort::Int);
        }
        ctx
    }

    #[test]
    fn trivial_validity() {
        let mut solver = Solver::with_defaults();
        let ctx = int_ctx(&["x"]);
        assert!(solver
            .check_valid_imp(&ctx, &[], &Expr::ge(v("x"), v("x")))
            .is_valid());
    }

    #[test]
    fn decr_verification_condition_is_valid() {
        // n >= 0 ∧ n > 0 ⟹ n - 1 >= 0   (the VC from the paper's `decr`)
        let mut solver = Solver::with_defaults();
        let ctx = int_ctx(&["n"]);
        let hyps = vec![
            Expr::ge(v("n"), Expr::int(0)),
            Expr::gt(v("n"), Expr::int(0)),
        ];
        let goal = Expr::ge(v("n") - Expr::int(1), Expr::int(0));
        assert!(solver.check_valid_imp(&ctx, &hyps, &goal).is_valid());
    }

    #[test]
    fn invalid_implication_produces_counter_model() {
        // n >= 0 ⟹ n - 1 >= 0 is invalid (n = 0).
        let mut solver = Solver::with_defaults();
        let ctx = int_ctx(&["n"]);
        let hyps = vec![Expr::ge(v("n"), Expr::int(0))];
        let goal = Expr::ge(v("n") - Expr::int(1), Expr::int(0));
        match solver.check_valid_imp(&ctx, &hyps, &goal) {
            Validity::Invalid(Some(model)) => {
                let n = model.ints.get(&Name::intern("n")).copied().unwrap_or(0);
                assert!(n == 0, "counter-model should pick n = 0, got {n}");
            }
            other => panic!("expected invalid with model, got {other:?}"),
        }
    }

    #[test]
    fn list_append_verification_condition() {
        // The VC from §2.3 of the paper:
        // (0 = n ⟹ m = n + m) ∧ (v + 1 = n ⟹ v + m + 1 = n + m)
        let mut solver = Solver::with_defaults();
        let ctx = int_ctx(&["n", "m", "v"]);
        let goal = Expr::and(
            Expr::imp(
                Expr::eq(Expr::int(0), v("n")),
                Expr::eq(v("m"), v("n") + v("m")),
            ),
            Expr::imp(
                Expr::eq(v("v") + Expr::int(1), v("n")),
                Expr::eq(v("v") + v("m") + Expr::int(1), v("n") + v("m")),
            ),
        );
        assert!(solver.check_valid_imp(&ctx, &[], &goal).is_valid());
    }

    #[test]
    fn binary_search_midpoint_bound() {
        // lo <= hi ∧ hi < n ∧ mid = (lo + hi) / 2 ⟹ mid < n  ∧ mid >= lo
        let mut solver = Solver::with_defaults();
        let ctx = int_ctx(&["lo", "hi", "n"]);
        let mid = Expr::binop(flux_logic::BinOp::Div, v("lo") + v("hi"), Expr::int(2));
        let hyps = vec![
            Expr::ge(v("lo"), Expr::int(0)),
            Expr::le(v("lo"), v("hi")),
            Expr::lt(v("hi"), v("n")),
        ];
        let goal = Expr::and(Expr::lt(mid.clone(), v("n")), Expr::ge(mid, v("lo")));
        assert!(solver.check_valid_imp(&ctx, &hyps, &goal).is_valid());
    }

    #[test]
    fn boolean_reasoning() {
        // p ∧ (p => q) ⟹ q
        let mut solver = Solver::with_defaults();
        let mut ctx = SortCtx::new();
        ctx.push(Name::intern("p"), Sort::Bool);
        ctx.push(Name::intern("q"), Sort::Bool);
        let hyps = vec![v("p"), Expr::imp(v("p"), v("q"))];
        assert!(solver.check_valid_imp(&ctx, &hyps, &v("q")).is_valid());
        // p ∨ q ⟹ q is invalid.
        let hyps = vec![Expr::or(v("p"), v("q"))];
        assert!(!solver.check_valid_imp(&ctx, &hyps, &v("q")).is_valid());
    }

    #[test]
    fn mixed_boolean_and_arithmetic() {
        // b = (x > 0) ∧ b ⟹ x >= 1
        let mut solver = Solver::with_defaults();
        let mut ctx = int_ctx(&["x"]);
        ctx.push(Name::intern("b"), Sort::Bool);
        let hyps = vec![Expr::eq(v("b"), Expr::gt(v("x"), Expr::int(0))), v("b")];
        let goal = Expr::ge(v("x"), Expr::int(1));
        assert!(solver.check_valid_imp(&ctx, &hyps, &goal).is_valid());
    }

    #[test]
    fn unsat_conjunction_of_bounds() {
        let mut solver = Solver::with_defaults();
        let ctx = int_ctx(&["i", "n"]);
        let f = Expr::and_all([Expr::lt(v("i"), v("n")), Expr::ge(v("i"), v("n"))]);
        assert_eq!(solver.check_sat(&ctx, &f), SatOutcome::Unsat);
    }

    #[test]
    fn sat_formula_produces_satisfying_model() {
        let mut solver = Solver::with_defaults();
        let ctx = int_ctx(&["i", "n"]);
        let f = Expr::and_all([
            Expr::ge(v("i"), Expr::int(0)),
            Expr::lt(v("i"), v("n")),
            Expr::le(v("n"), Expr::int(10)),
        ]);
        match solver.check_sat(&ctx, &f) {
            SatOutcome::Sat(model) => {
                let i = model.ints[&Name::intern("i")];
                let n = model.ints[&Name::intern("n")];
                assert!(i >= 0 && i < n && n <= 10);
            }
            other => panic!("expected sat, got {other:?}"),
        }
    }

    #[test]
    fn quantified_hypothesis_is_used() {
        // (forall j. 0 <= j && j < len ⟹ select(a, j) >= 0) ∧ 0 <= i < len
        //   ⟹ select(a, i) >= 0
        let mut solver = Solver::with_defaults();
        let mut ctx = int_ctx(&["i", "lenv"]);
        ctx.push(Name::intern("a"), Sort::Array);
        let j = Name::intern("j");
        let axiom = Expr::forall(
            vec![(j, Sort::Int)],
            Expr::imp(
                Expr::and(
                    Expr::ge(Expr::var(j), Expr::int(0)),
                    Expr::lt(Expr::var(j), v("lenv")),
                ),
                Expr::ge(
                    Expr::app("select", vec![v("a"), Expr::var(j)]),
                    Expr::int(0),
                ),
            ),
        );
        let hyps = vec![
            axiom,
            Expr::ge(v("i"), Expr::int(0)),
            Expr::lt(v("i"), v("lenv")),
        ];
        let goal = Expr::ge(Expr::app("select", vec![v("a"), v("i")]), Expr::int(0));
        assert!(solver.check_valid_imp(&ctx, &hyps, &goal).is_valid());
    }

    #[test]
    fn statistics_accumulate() {
        let mut solver = Solver::with_defaults();
        let ctx = int_ctx(&["x"]);
        let _ = solver.check_valid_imp(&ctx, &[], &Expr::ge(v("x"), v("x")));
        let _ = solver.check_valid_imp(&ctx, &[], &Expr::ge(v("x"), Expr::int(0)));
        assert_eq!(solver.stats.queries, 2);
        assert!(solver.stats.sat_rounds >= 1);
    }

    #[test]
    fn overflow_check_shape() {
        // x <= 2147483647 - 1 ⟹ x + 1 <= 2147483647
        let mut solver = Solver::with_defaults();
        let ctx = int_ctx(&["x"]);
        let max = 2_147_483_647i128;
        let hyps = vec![Expr::le(v("x"), Expr::int(max - 1))];
        let goal = Expr::le(v("x") + Expr::int(1), Expr::int(max));
        assert!(solver.check_valid_imp(&ctx, &hyps, &goal).is_valid());
    }
}
