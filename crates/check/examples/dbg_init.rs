// Debug binary: dump constraint clauses for init_zeros
fn main() {
    let src = r#"
#[flux::sig(fn(usize[@n]) -> RVec<f32>[n])]
fn init_zeros(n: usize) -> RVec<f32> {
    let mut vec: RVec<f32> = RVec::new();
    let mut i = 0;
    while i < n {
        vec.push(0.0);
        i += 1;
    }
    vec
}
"#;
    let program = flux_syntax::parse_program(src).unwrap();
    let resolved = flux_ir::ResolvedProgram::resolve(&program).unwrap();
    let generator = flux_check::checker::Generator::new(&resolved);
    let gen = generator.gen_function("init_zeros").unwrap();
    for clause in gen.constraint.flatten() {
        let binders: Vec<String> = clause
            .binders
            .iter()
            .map(|(n, s)| format!("{n}:{s}"))
            .collect();
        let guards: Vec<String> = clause
            .guards
            .iter()
            .map(|g| match g {
                flux_fixpoint::Guard::Pred(p) => format!("{p}"),
                flux_fixpoint::Guard::KVar(app) => format!("{app}"),
            })
            .collect();
        let head = match &clause.head {
            flux_fixpoint::Head::Pred(p, tag) => {
                format!("{p}   [tag {tag}: {}]", gen.tags[*tag].message)
            }
            flux_fixpoint::Head::KVar(app) => format!("{app}"),
        };
        println!(
            "forall {:?}\n  {} \n  => {}\n",
            binders,
            guards.join(" /\\ "),
            head
        );
    }
}
