//! Constraint generation: the algorithmic type checker.
//!
//! The checker walks the (structured) surface AST of each function keeping a
//! *type environment* that maps every local variable to an **opened** refined
//! type — an indexed type whose indices are refinement expressions over
//! variables bound in the logical scope, exactly like the Γ/T contexts of
//! λ_LR.  Ownership drives the update discipline:
//!
//! * assignments to owned locals and writes through `&strg` references are
//!   *strong updates* (the type changes),
//! * writes through `&mut` references are *weak updates* (the written value
//!   must re-establish the referent's type),
//! * reads through `&` and `&mut` reuse the referent's type.
//!
//! Loops are handled by *generalising* the environment at the loop head into
//! κ-templated types (one fresh κ per mutable location, whose arguments are
//! the location's indices plus everything else in scope) and emitting the
//! entry, preservation and exit constraints of §4.2; the κs are later solved
//! by liquid inference in `flux-fixpoint`.

use flux_fixpoint::{Constraint, Guard, KVarApp, KVarStore, Tag};
use flux_ir::{BaseTy, FnSig, RTy, RefKind, Refine, ResolvedProgram};
use flux_logic::{Expr, Name, Sort, Subst};
use flux_syntax::ast;
use flux_syntax::span::{Diagnostic, Span};

/// Information associated with a constraint tag, used to build diagnostics
/// when the fixpoint solver blames a tag.
#[derive(Clone, Debug)]
pub struct TagInfo {
    /// The source location of the failed check.
    pub span: Span,
    /// A human-readable description of the obligation.
    pub message: String,
}

/// The output of constraint generation for one function.
pub struct GenResult {
    /// The generated constraint.
    pub constraint: Constraint,
    /// The κ declarations created while checking.
    pub kvars: KVarStore,
    /// Tag metadata for blame.
    pub tags: Vec<TagInfo>,
}

/// Items wrapped around the *rest* of a block after a statement: logical
/// binders and assumptions introduced by opening types or branching.
#[derive(Clone, Debug)]
enum PrefixItem {
    Bind(Name, Sort, Expr),
    Guard(Guard),
}

fn wrap(prefix: Vec<PrefixItem>, inner: Constraint) -> Constraint {
    let mut out = inner;
    for item in prefix.into_iter().rev() {
        out = match item {
            PrefixItem::Bind(name, sort, guard) => Constraint::forall(name, sort, guard, out),
            PrefixItem::Guard(guard) => Constraint::implies(guard, out),
        };
    }
    out
}

/// The type environment: locals in declaration order.
#[derive(Clone, Debug, Default)]
struct Env {
    locals: Vec<(String, RTy)>,
}

impl Env {
    fn get(&self, name: &str) -> Option<&RTy> {
        self.locals
            .iter()
            .rev()
            .find(|(n, _)| n == name)
            .map(|(_, t)| t)
    }

    fn set(&mut self, name: &str, ty: RTy) {
        if let Some(entry) = self.locals.iter_mut().rev().find(|(n, _)| n == name) {
            entry.1 = ty;
        } else {
            self.locals.push((name.to_owned(), ty));
        }
    }
}

/// Per-function context: the signature, return type and scope of refinement
/// parameters.
struct FnCtx {
    sig: FnSig,
    /// Scope variables (refinement parameters and opened binders of the
    /// function's own parameters) available as κ arguments.
    scope: Vec<(Name, Sort)>,
}

/// The constraint generator.
pub struct Generator<'a> {
    program: &'a ResolvedProgram,
    kvars: KVarStore,
    tags: Vec<TagInfo>,
}

impl<'a> Generator<'a> {
    /// Creates a generator for `program`.
    pub fn new(program: &'a ResolvedProgram) -> Generator<'a> {
        Generator {
            program,
            kvars: KVarStore::new(),
            tags: Vec::new(),
        }
    }

    fn tag(&mut self, span: Span, message: impl Into<String>) -> Tag {
        self.tags.push(TagInfo {
            span,
            message: message.into(),
        });
        self.tags.len() - 1
    }

    /// Generates the constraint for one function.
    pub fn gen_function(mut self, name: &str) -> Result<GenResult, Diagnostic> {
        let func = self.program.function(name).ok_or_else(|| {
            Diagnostic::error(format!("unknown function `{name}`"), Span::dummy())
        })?;
        let def = func.def.clone();
        let sig = func.sig.clone();

        let mut prefix = Vec::new();
        let mut scope = Vec::new();
        // Refinement parameters.
        for (param, sort) in &sig.refine_params {
            prefix.push(PrefixItem::Bind(*param, *sort, Expr::tt()));
            scope.push((*param, *sort));
        }
        // Open the function parameters into the environment.
        let mut env = Env::default();
        for (pname, pty) in sig.param_names.iter().zip(&sig.params) {
            let opened = self.open_into(pty.clone(), &mut prefix, &mut scope);
            env.set(pname, opened);
        }
        let fn_ctx = FnCtx { sig, scope };

        let tail = def.body.tail.clone();
        let body = self.check_stmts(&mut env, &def.body.stmts, &fn_ctx, |g, env| {
            let span = tail.as_ref().map_or_else(Span::dummy, |e| e.span());
            g.check_fn_exit(env, tail.as_deref(), &fn_ctx, span)
        })?;
        let constraint = wrap(prefix, body);
        Ok(GenResult {
            constraint,
            kvars: self.kvars,
            tags: self.tags,
        })
    }

    // -----------------------------------------------------------------
    // Types: opening, templates, subtyping
    // -----------------------------------------------------------------

    /// Opens a type: existentials get fresh binders added to `prefix` (with
    /// their refinement as an assumption) so the resulting type is an
    /// indexed type over in-scope names.  References open their referent
    /// only when strong.
    fn open_into(
        &mut self,
        ty: RTy,
        prefix: &mut Vec<PrefixItem>,
        scope: &mut Vec<(Name, Sort)>,
    ) -> RTy {
        match ty {
            RTy::Exists {
                base,
                binders,
                refine,
            } => {
                let sorts = base.index_sorts();
                let fresh: Vec<Name> = binders.iter().map(|b| Name::fresh(b.as_str())).collect();
                let subst: Subst = binders
                    .iter()
                    .zip(&fresh)
                    .map(|(old, new)| (*old, Expr::Var(*new)))
                    .collect();
                for (name, sort) in fresh.iter().zip(&sorts) {
                    let nonneg = if base.indices_nonneg() && *sort == Sort::Int {
                        Expr::ge(Expr::Var(*name), Expr::int(0))
                    } else {
                        Expr::tt()
                    };
                    prefix.push(PrefixItem::Bind(*name, *sort, nonneg));
                    scope.push((*name, *sort));
                }
                match refine {
                    Refine::Pred(p) => {
                        let p = subst.apply(&p);
                        if !p.is_trivially_true() {
                            prefix.push(PrefixItem::Guard(Guard::Pred(p)));
                        }
                    }
                    Refine::KVar(app) => {
                        let args = app.args.iter().map(|a| subst.apply(a)).collect();
                        prefix.push(PrefixItem::Guard(Guard::KVar(KVarApp::new(app.kvid, args))));
                    }
                }
                RTy::Indexed {
                    base,
                    indices: fresh.iter().map(|n| Expr::Var(*n)).collect(),
                }
            }
            RTy::Indexed { base, indices } => {
                // Add the implicit non-negativity facts for unsigned / size
                // indices.
                if base.indices_nonneg() {
                    for idx in &indices {
                        prefix.push(PrefixItem::Guard(Guard::Pred(Expr::ge(
                            idx.clone(),
                            Expr::int(0),
                        ))));
                    }
                }
                RTy::Indexed { base, indices }
            }
            RTy::Ref {
                kind: RefKind::Strg,
                inner,
            } => {
                let opened = self.open_into(*inner, prefix, scope);
                RTy::ref_strg(opened)
            }
            RTy::Ref {
                kind: kind @ (RefKind::Mut | RefKind::Shared),
                inner,
            } => {
                // Weak references are not opened, but the referent's indices
                // still denote runtime sizes: record their non-negativity so
                // refine params such as the `n` of `&mut RVec<T>[@n]` carry
                // the same implicit facts as by-value indexed types.
                push_nonneg_index_facts(&inner, prefix);
                RTy::Ref { kind, inner }
            }
            other => other,
        }
    }

    /// Generalises an environment into κ templates.  Every templated local's
    /// κ sees the binders of *every* local (not just earlier ones), so
    /// relational invariants between any pair of mutated locations are
    /// expressible.
    fn template_env(&mut self, env: &Env, fn_scope: &[(Name, Sort)]) -> Env {
        // Pass 1: allocate binder names per local.
        type BinderInfo = (String, Option<(BaseTy, Vec<Name>, bool)>);
        let mut binder_info: Vec<BinderInfo> = Vec::new();
        let mut all_binders: Vec<(Name, Sort)> = Vec::new();
        for (name, ty) in &env.locals {
            let target = match ty {
                RTy::Ref {
                    kind: RefKind::Strg,
                    inner,
                } => Some((inner.as_ref(), true)),
                RTy::Indexed { .. } | RTy::Exists { .. } => Some((ty, false)),
                _ => None,
            };
            match target {
                Some((t, is_strg)) => match t.base() {
                    Some(base) if !base.index_sorts().is_empty() => {
                        let sorts = base.index_sorts();
                        let binders: Vec<Name> = (0..sorts.len())
                            .map(|i| Name::fresh(&format!("t{i}")))
                            .collect();
                        for (b, s) in binders.iter().zip(&sorts) {
                            all_binders.push((*b, *s));
                        }
                        binder_info.push((name.clone(), Some((base.clone(), binders, is_strg))));
                    }
                    _ => binder_info.push((name.clone(), None)),
                },
                None => binder_info.push((name.clone(), None)),
            }
        }
        // Pass 2: build the κ-templated types; each κ takes its own binders
        // followed by every other binder and the function-level scope.
        let mut template = Env::default();
        for ((name, info), (_, orig_ty)) in binder_info.iter().zip(&env.locals) {
            match info {
                None => template.set(name, orig_ty.clone()),
                Some((base, binders, is_strg)) => {
                    let mut kv_sorts: Vec<Sort> = base.index_sorts();
                    let mut scope_args: Vec<Expr> = Vec::new();
                    for (b, s) in &all_binders {
                        if !binders.contains(b) {
                            kv_sorts.push(*s);
                            scope_args.push(Expr::Var(*b));
                        }
                    }
                    for (n, s) in fn_scope {
                        kv_sorts.push(*s);
                        scope_args.push(Expr::Var(*n));
                    }
                    let kvid = self.kvars.fresh(kv_sorts);
                    let ty = RTy::exists_kvar(base.clone(), binders.clone(), kvid, scope_args);
                    let ty = if *is_strg { RTy::ref_strg(ty) } else { ty };
                    template.set(name, ty);
                }
            }
        }
        template
    }

    /// Creates a κ-templated existential with the same shape as `ty`, whose
    /// κ arguments are the type's own indices followed by `scope`.
    fn template_like(&mut self, ty: &RTy, scope: &[(Name, Sort)]) -> RTy {
        match ty {
            RTy::Indexed { base, .. } | RTy::Exists { base, .. } => {
                let sorts = base.index_sorts();
                if sorts.is_empty() {
                    // No indices (floats): nothing to infer.
                    return RTy::Indexed {
                        base: base.clone(),
                        indices: vec![],
                    };
                }
                let binders: Vec<Name> = (0..sorts.len())
                    .map(|i| Name::fresh(&format!("t{i}")))
                    .collect();
                let mut kv_sorts = sorts.clone();
                kv_sorts.extend(scope.iter().map(|(_, s)| *s));
                let kvid = self.kvars.fresh(kv_sorts);
                let scope_args: Vec<Expr> = scope.iter().map(|(n, _)| Expr::Var(*n)).collect();
                RTy::exists_kvar(base.clone(), binders, kvid, scope_args)
            }
            RTy::Ref {
                kind: RefKind::Strg,
                inner,
            } => RTy::ref_strg(self.template_like(inner, scope)),
            other => other.clone(),
        }
    }

    /// Subtyping `actual ≼ expected`, producing a constraint.
    fn subtype(&mut self, actual: &RTy, expected: &RTy, span: Span, what: &str) -> Constraint {
        match (actual, expected) {
            (RTy::Unit, RTy::Unit) | (RTy::Uninit, RTy::Uninit) => Constraint::True,
            (
                RTy::Indexed {
                    base: ab,
                    indices: ai,
                },
                expected,
            ) => match expected {
                RTy::Indexed {
                    base: eb,
                    indices: ei,
                } => {
                    if !bases_compatible(ab, eb) {
                        let tag =
                            self.tag(span, format!("{what}: type shape mismatch ({ab} vs {eb})"));
                        return Constraint::pred(Expr::ff(), tag);
                    }
                    let tag = self.tag(span, format!("{what}: indices must match"));
                    let eqs = ai
                        .iter()
                        .zip(ei)
                        .map(|(a, e)| Expr::eq(a.clone(), e.clone()));
                    let head = Constraint::pred(Expr::and_all(eqs), tag);
                    Constraint::conj(vec![head, self.element_compat(ab, eb, span, what)])
                }
                RTy::Exists {
                    base: eb,
                    binders,
                    refine,
                } => {
                    if !bases_compatible(ab, eb) {
                        let tag =
                            self.tag(span, format!("{what}: type shape mismatch ({ab} vs {eb})"));
                        return Constraint::pred(Expr::ff(), tag);
                    }
                    let subst: Subst = binders
                        .iter()
                        .zip(ai)
                        .map(|(b, a)| (*b, a.clone()))
                        .collect();
                    let head = match refine {
                        Refine::Pred(p) => {
                            let tag = self.tag(span, format!("{what}: refinement must hold"));
                            Constraint::pred(subst.apply(p), tag)
                        }
                        Refine::KVar(app) => Constraint::kvar(KVarApp::new(
                            app.kvid,
                            app.args.iter().map(|a| subst.apply(a)).collect(),
                        )),
                    };
                    Constraint::conj(vec![head, self.element_compat(ab, eb, span, what)])
                }
                _ => {
                    let tag =
                        self.tag(span, format!("{what}: expected {expected}, found {actual}"));
                    Constraint::pred(Expr::ff(), tag)
                }
            },
            (
                RTy::Exists {
                    base,
                    binders,
                    refine,
                },
                expected,
            ) => {
                // Open the actual existential universally and recurse.
                let sorts = base.index_sorts();
                let fresh: Vec<Name> = binders.iter().map(|b| Name::fresh(b.as_str())).collect();
                let subst: Subst = binders
                    .iter()
                    .zip(&fresh)
                    .map(|(old, new)| (*old, Expr::Var(*new)))
                    .collect();
                let opened = RTy::Indexed {
                    base: base.clone(),
                    indices: fresh.iter().map(|n| Expr::Var(*n)).collect(),
                };
                let inner = self.subtype(&opened, expected, span, what);
                let guard = match refine {
                    Refine::Pred(p) => Guard::Pred(subst.apply(p)),
                    Refine::KVar(app) => Guard::KVar(KVarApp::new(
                        app.kvid,
                        app.args.iter().map(|a| subst.apply(a)).collect(),
                    )),
                };
                let mut out = Constraint::implies(guard, inner);
                for (name, sort) in fresh.iter().zip(sorts).rev() {
                    out = Constraint::forall(*name, sort, Expr::tt(), out);
                }
                out
            }
            (
                RTy::Ref {
                    kind: ak,
                    inner: ai,
                },
                RTy::Ref {
                    kind: ek,
                    inner: ei,
                },
            ) => match (ak, ek) {
                (RefKind::Shared, RefKind::Shared) => self.subtype(ai, ei, span, what),
                (RefKind::Mut | RefKind::Strg, RefKind::Mut) => Constraint::conj(vec![
                    self.subtype(ai, ei, span, what),
                    self.subtype(ei, ai, span, what),
                ]),
                (RefKind::Mut | RefKind::Strg, RefKind::Shared) => self.subtype(ai, ei, span, what),
                _ => {
                    let tag = self.tag(span, format!("{what}: reference kind mismatch"));
                    Constraint::pred(Expr::ff(), tag)
                }
            },
            _ => {
                let tag = self.tag(span, format!("{what}: expected {expected}, found {actual}"));
                Constraint::pred(Expr::ff(), tag)
            }
        }
    }

    /// For container types, require the element types to be compatible in
    /// both directions (mutation through the container must preserve them).
    fn element_compat(&mut self, a: &BaseTy, b: &BaseTy, span: Span, what: &str) -> Constraint {
        match (a.element(), b.element()) {
            (Some(ae), Some(be)) => Constraint::conj(vec![
                self.subtype(ae, be, span, &format!("{what} (element)")),
                self.subtype(be, ae, span, &format!("{what} (element)")),
            ]),
            _ => Constraint::True,
        }
    }

    // -----------------------------------------------------------------
    // Statements
    // -----------------------------------------------------------------

    /// Checks a statement sequence; once every statement has been processed
    /// the `exit` continuation runs on the final environment **inside** the
    /// logical scope of all binders and guards introduced along the way.
    ///
    /// Constraints that depend on the post-block environment (the function's
    /// return obligation, a loop's back-edge, the join after an `if`) must be
    /// emitted through `exit`: statements such as nested `if`s and loops push
    /// fresh binders whose scope is exactly "the rest of the block", so a
    /// constraint generated after this function returns would mention those
    /// binders free — unbound and stripped of their κ assumptions.
    fn check_stmts<F>(
        &mut self,
        env: &mut Env,
        stmts: &[ast::Stmt],
        fn_ctx: &FnCtx,
        exit: F,
    ) -> Result<Constraint, Diagnostic>
    where
        F: FnOnce(&mut Generator<'a>, &mut Env) -> Result<Constraint, Diagnostic>,
    {
        match stmts.split_first() {
            None => exit(self, env),
            Some((stmt, rest)) => {
                let mut prefix = Vec::new();
                let mut post = Vec::new();
                let own = self.check_stmt(env, stmt, &mut prefix, &mut post, fn_ctx)?;
                let rest_c = self.check_stmts(env, rest, fn_ctx, exit)?;
                Ok(wrap(
                    prefix,
                    Constraint::conj(vec![own, wrap(post, rest_c)]),
                ))
            }
        }
    }

    /// Checks the value returned at a function exit (explicit `return` or the
    /// body's tail expression) plus all `ensures` obligations.
    fn check_fn_exit(
        &mut self,
        env: &mut Env,
        value: Option<&ast::Expr>,
        fn_ctx: &FnCtx,
        span: Span,
    ) -> Result<Constraint, Diagnostic> {
        let mut prefix = Vec::new();
        let mut parts = Vec::new();
        let ret_ty = fn_ctx.sig.ret.clone();
        match value {
            Some(ast::Expr::If {
                cond, then, els, ..
            }) => {
                // Check each branch against the return type directly so that
                // path-sensitive facts flow into the obligation.
                let c =
                    self.check_if_against(env, cond, then, els.as_ref(), &ret_ty, fn_ctx, span)?;
                parts.push(c);
            }
            Some(expr) => {
                let (ty, c) = self.synth(env, expr, &mut prefix, fn_ctx)?;
                parts.push(c);
                parts.push(self.subtype(&ty, &ret_ty, expr.span(), "return value"));
            }
            None => {
                if !matches!(ret_ty, RTy::Unit) {
                    parts.push(self.subtype(&RTy::Unit, &ret_ty, span, "return value"));
                }
            }
        }
        // ensures clauses for strong references.
        for (param_idx, out_ty) in fn_ctx.sig.ensures.clone() {
            let pname = &fn_ctx.sig.param_names[param_idx];
            let actual = env.get(pname).cloned().unwrap_or(RTy::Uninit);
            if let RTy::Ref {
                kind: RefKind::Strg,
                inner,
            } = actual
            {
                parts.push(self.subtype(&inner, &out_ty, span, "ensures clause"));
            } else {
                let tag = self.tag(
                    span,
                    format!("ensures clause refers to `{pname}` which is not a strong reference"),
                );
                parts.push(Constraint::pred(Expr::ff(), tag));
            }
        }
        Ok(wrap(prefix, Constraint::conj(parts)))
    }

    fn check_stmt(
        &mut self,
        env: &mut Env,
        stmt: &ast::Stmt,
        prefix: &mut Vec<PrefixItem>,
        post: &mut Vec<PrefixItem>,
        fn_ctx: &FnCtx,
    ) -> Result<Constraint, Diagnostic> {
        match stmt {
            ast::Stmt::Let {
                name,
                init,
                ty,
                span,
                ..
            } => {
                // A `let v: RVec<T> = RVec::new()` gets a polymorphic κ
                // template for its element type (§4.3).
                if let ast::Expr::Call { func, args, .. } = init {
                    if func == "RVec::new" && args.is_empty() {
                        let elem = self.new_vec_elem_template(ty.as_ref(), fn_ctx);
                        env.set(
                            name,
                            RTy::Indexed {
                                base: BaseTy::Vec(Box::new(elem)),
                                indices: vec![Expr::int(0)],
                            },
                        );
                        return Ok(Constraint::True);
                    }
                }
                if let ast::Expr::If {
                    cond, then, els, ..
                } = init
                {
                    let (ty, c) =
                        self.synth_if(env, cond, then, els.as_ref(), prefix, fn_ctx, *span)?;
                    env.set(name, ty);
                    return Ok(c);
                }
                let mut scope = fn_ctx.scope.clone();
                let (ty, c) = self.synth(env, init, prefix, fn_ctx)?;
                let opened = self.open_into(ty, prefix, &mut scope);
                env.set(name, opened);
                Ok(c)
            }
            ast::Stmt::Assign {
                place,
                op,
                value,
                span,
            } => self.check_assign(env, place, *op, value, prefix, fn_ctx, *span),
            ast::Stmt::While {
                cond, body, span, ..
            } => self.check_while(env, cond, body, post, fn_ctx, *span),
            ast::Stmt::Return { value, span } => {
                self.check_fn_exit(env, value.as_ref(), fn_ctx, *span)
            }
            ast::Stmt::Assert { cond, span } => {
                let (ty, c) = self.synth(env, cond, prefix, fn_ctx)?;
                let idx = self.bool_index(&ty, *span)?;
                let tag = self.tag(*span, "assertion might not hold");
                // The asserted fact is available to the continuation only.
                post.push(PrefixItem::Guard(Guard::Pred(idx.clone())));
                Ok(Constraint::conj(vec![c, Constraint::pred(idx, tag)]))
            }
            ast::Stmt::Expr { expr, span } => match expr {
                ast::Expr::If {
                    cond, then, els, ..
                } => {
                    let (_, c) =
                        self.synth_if(env, cond, then, els.as_ref(), prefix, fn_ctx, *span)?;
                    Ok(c)
                }
                _ => {
                    let (_, c) = self.synth(env, expr, prefix, fn_ctx)?;
                    Ok(c)
                }
            },
        }
    }

    fn new_vec_elem_template(&mut self, ascription: Option<&ast::RustTy>, fn_ctx: &FnCtx) -> RTy {
        let default_elem = match ascription {
            Some(ast::RustTy::RVec(elem)) => flux_ir::default_rty_of_rust_ty(elem),
            _ => RTy::exists_top(BaseTy::Float),
        };
        self.template_like(&default_elem, &fn_ctx.scope)
    }

    #[allow(clippy::too_many_arguments)]
    fn check_assign(
        &mut self,
        env: &mut Env,
        place: &ast::Expr,
        op: ast::AssignOp,
        value: &ast::Expr,
        prefix: &mut Vec<PrefixItem>,
        fn_ctx: &FnCtx,
        span: Span,
    ) -> Result<Constraint, Diagnostic> {
        // Desugar compound assignment into a read-modify-write.
        let rhs: ast::Expr = match op {
            ast::AssignOp::Assign => value.clone(),
            other => {
                let binop = match other {
                    ast::AssignOp::AddAssign => ast::BinOpKind::Add,
                    ast::AssignOp::SubAssign => ast::BinOpKind::Sub,
                    ast::AssignOp::MulAssign => ast::BinOpKind::Mul,
                    ast::AssignOp::DivAssign => ast::BinOpKind::Div,
                    ast::AssignOp::Assign => unreachable!(),
                };
                ast::Expr::Binary(
                    binop,
                    Box::new(place.clone()),
                    Box::new(value.clone()),
                    span,
                )
            }
        };
        match place {
            ast::Expr::Var(name, _) => {
                let (ty, c) = if let ast::Expr::If {
                    cond, then, els, ..
                } = &rhs
                {
                    self.synth_if(env, cond, then, els.as_ref(), prefix, fn_ctx, span)?
                } else {
                    self.synth(env, &rhs, prefix, fn_ctx)?
                };
                let mut scope = fn_ctx.scope.clone();
                let opened = self.open_into(ty, prefix, &mut scope);
                env.set(name, opened);
                Ok(c)
            }
            ast::Expr::Deref(inner, _) => {
                let ast::Expr::Var(rname, _) = inner.as_ref() else {
                    return Err(Diagnostic::error("unsupported assignment target", span));
                };
                let (vty, c) = self.synth(env, &rhs, prefix, fn_ctx)?;
                let rty = env.get(rname).cloned().ok_or_else(|| {
                    Diagnostic::error(format!("unknown variable `{rname}`"), span)
                })?;
                match rty {
                    RTy::Ref {
                        kind: RefKind::Mut,
                        inner,
                    } => {
                        let sub = self.subtype(&vty, &inner, span, "write through `&mut`");
                        Ok(Constraint::conj(vec![c, sub]))
                    }
                    RTy::Ref {
                        kind: RefKind::Strg,
                        ..
                    } => {
                        let mut scope = fn_ctx.scope.clone();
                        let opened = self.open_into(vty, prefix, &mut scope);
                        env.set(rname, RTy::ref_strg(opened));
                        Ok(c)
                    }
                    other => Err(Diagnostic::error(
                        format!("cannot assign through `{rname}` of type {other}"),
                        span,
                    )),
                }
            }
            ast::Expr::Index { recv, index, .. } => {
                // v[i] = e  desugars to a bounds-checked store.
                let (elem_ty, len_idx, recv_c) =
                    self.vec_receiver(env, recv, prefix, fn_ctx, span)?;
                let (ity, ic) = self.synth(env, index, prefix, fn_ctx)?;
                let iidx = self.int_index(&ity, index.span())?;
                let bounds = self.bounds_obligation(&iidx, &len_idx, index.span());
                let (vty, vc) = self.synth(env, &rhs, prefix, fn_ctx)?;
                let store = self.subtype(&vty, &elem_ty, span, "stored element");
                Ok(Constraint::conj(vec![recv_c, ic, bounds, vc, store]))
            }
            _ => Err(Diagnostic::error("unsupported assignment target", span)),
        }
    }

    fn check_while(
        &mut self,
        env: &mut Env,
        cond: &ast::Expr,
        body: &ast::Block,
        post: &mut Vec<PrefixItem>,
        fn_ctx: &FnCtx,
        span: Span,
    ) -> Result<Constraint, Diagnostic> {
        // 1. Generalise the environment into κ templates.
        let template = self.template_env(env, &fn_ctx.scope);
        // 2. Entry: current env must satisfy the templates.
        let entry = self.env_subtype(env, &template, span, "loop invariant on entry");

        // 3. Body: check under a freshly opened copy of the template.
        let mut body_prefix = Vec::new();
        let mut body_scope = fn_ctx.scope.clone();
        let mut body_env = self.open_env(&template, &mut body_prefix, &mut body_scope);
        let (cond_ty, cond_c) = self.synth(&mut body_env, cond, &mut body_prefix, fn_ctx)?;
        let cond_idx = self.bool_index(&cond_ty, cond.span())?;
        body_prefix.push(PrefixItem::Guard(Guard::Pred(cond_idx.clone())));
        // The back-edge check runs through the `exit` continuation so that it
        // sits inside the scope of every binder the body introduced (nested
        // joins would otherwise leak free variables into the κ head clause).
        let body_c = self.check_stmts(&mut body_env, &body.stmts, fn_ctx, |g, env| {
            Ok(g.env_subtype(env, &template, span, "loop invariant preservation"))
        })?;
        let body_constraint = wrap(body_prefix, Constraint::conj(vec![cond_c, body_c]));

        // 4. Continuation: the environment after the loop is the template
        //    plus the negated condition.  These facts scope over the rest of
        //    the enclosing block only (`post`), not over the loop's own
        //    obligations.
        let mut cont_scope = fn_ctx.scope.clone();
        let mut cont_env = self.open_env(&template, post, &mut cont_scope);
        let (cond_ty2, cond_c2) = self.synth(&mut cont_env, cond, post, fn_ctx)?;
        let cond_idx2 = self.bool_index(&cond_ty2, cond.span())?;
        post.push(PrefixItem::Guard(Guard::Pred(Expr::not(cond_idx2))));
        *env = cont_env;

        let cond_c2 = wrap(post.clone(), cond_c2);
        Ok(Constraint::conj(vec![entry, body_constraint, cond_c2]))
    }

    /// `env ≼ template`: every local's actual type must satisfy its
    /// template, where template binders are simultaneously replaced by the
    /// actual indices.
    fn env_subtype(&mut self, env: &Env, template: &Env, span: Span, what: &str) -> Constraint {
        // Build the global substitution template-binder ↦ actual index.
        let mut subst = Subst::new();
        for (name, tty) in &template.locals {
            let Some(aty) = env.get(name) else { continue };
            bind_template_indices(tty, aty, &mut subst);
        }
        let mut parts = Vec::new();
        for (name, tty) in &template.locals {
            let Some(aty) = env.get(name) else { continue };
            let expected = tty.subst(&subst);
            parts.push(self.subtype(aty, &expected, span, what));
        }
        Constraint::conj(parts)
    }

    /// Opens every local of a template environment, pushing binders and κ
    /// assumptions onto `prefix`.
    ///
    /// Template κ applications refer to the template binders of *other*
    /// locals (that is how relational invariants such as `i = len(vec)` are
    /// expressed), so opening proceeds in two passes: first every binder of
    /// every local gets a fresh name, then the refinements are emitted under
    /// the resulting global renaming.
    fn open_env(
        &mut self,
        template: &Env,
        prefix: &mut Vec<PrefixItem>,
        scope: &mut Vec<(Name, Sort)>,
    ) -> Env {
        // Pass 1: fresh names for every binder of every local.
        let mut renaming = Subst::new();
        let mut freshened: Vec<(String, RTy)> = Vec::new();
        for (name, ty) in &template.locals {
            let ty = freshen_binders(ty, &mut renaming, prefix, scope);
            freshened.push((name.clone(), ty));
        }
        // Pass 2: emit the refinements under the global renaming and build
        // the opened environment.
        let mut out = Env::default();
        for (name, ty) in freshened {
            let opened = self.emit_refinements(ty, &renaming, prefix);
            out.set(&name, opened);
        }
        out
    }

    /// Emits the (renamed) refinement guards of a freshened type and returns
    /// its indexed form.
    fn emit_refinements(&mut self, ty: RTy, renaming: &Subst, prefix: &mut Vec<PrefixItem>) -> RTy {
        match ty {
            RTy::Exists {
                base,
                binders,
                refine,
            } => {
                match refine {
                    Refine::Pred(p) => {
                        let p = renaming.apply(&p);
                        if !p.is_trivially_true() {
                            prefix.push(PrefixItem::Guard(Guard::Pred(p)));
                        }
                    }
                    Refine::KVar(app) => {
                        let args = app.args.iter().map(|a| renaming.apply(a)).collect();
                        prefix.push(PrefixItem::Guard(Guard::KVar(KVarApp::new(app.kvid, args))));
                    }
                }
                RTy::Indexed {
                    base,
                    indices: binders.iter().map(|b| Expr::Var(*b)).collect(),
                }
            }
            RTy::Ref {
                kind: RefKind::Strg,
                inner,
            } => {
                let inner = self.emit_refinements(*inner, renaming, prefix);
                RTy::ref_strg(inner)
            }
            other => other,
        }
    }

    // -----------------------------------------------------------------
    // Branches
    // -----------------------------------------------------------------

    /// Checks an `if` whose result must have type `expected` (used for
    /// function tails so that path conditions flow into the obligation).
    #[allow(clippy::too_many_arguments)]
    fn check_if_against(
        &mut self,
        env: &mut Env,
        cond: &ast::Expr,
        then: &ast::Block,
        els: Option<&ast::Block>,
        expected: &RTy,
        fn_ctx: &FnCtx,
        span: Span,
    ) -> Result<Constraint, Diagnostic> {
        let mut prefix = Vec::new();
        let (cond_ty, cond_c) = self.synth(env, cond, &mut prefix, fn_ctx)?;
        let cond_idx = self.bool_index(&cond_ty, cond.span())?;

        let mut then_env = env.clone();
        let then_c = self.check_branch_against(&mut then_env, then, expected, fn_ctx, span)?;
        let then_c = Constraint::implies(Guard::Pred(cond_idx.clone()), then_c);

        let els_c = match els {
            Some(block) => {
                let mut els_env = env.clone();
                let c = self.check_branch_against(&mut els_env, block, expected, fn_ctx, span)?;
                Constraint::implies(Guard::Pred(Expr::not(cond_idx)), c)
            }
            None => {
                let c = self.subtype(&RTy::Unit, expected, span, "missing else branch");
                Constraint::implies(Guard::Pred(Expr::not(cond_idx)), c)
            }
        };
        Ok(wrap(prefix, Constraint::conj(vec![cond_c, then_c, els_c])))
    }

    fn check_branch_against(
        &mut self,
        env: &mut Env,
        block: &ast::Block,
        expected: &RTy,
        fn_ctx: &FnCtx,
        span: Span,
    ) -> Result<Constraint, Diagnostic> {
        self.check_stmts(env, &block.stmts, fn_ctx, |g, env| {
            let mut prefix = Vec::new();
            let tail_c = match block.tail.as_deref() {
                Some(ast::Expr::If {
                    cond, then, els, ..
                }) => g.check_if_against(env, cond, then, els.as_ref(), expected, fn_ctx, span)?,
                Some(expr) => {
                    let (ty, c) = g.synth(env, expr, &mut prefix, fn_ctx)?;
                    let sub = g.subtype(&ty, expected, expr.span(), "branch value");
                    Constraint::conj(vec![c, sub])
                }
                None => g.subtype(&RTy::Unit, expected, span, "branch value"),
            };
            Ok(wrap(prefix, tail_c))
        })
    }

    /// Synthesises the value of an `if` expression by joining the branches
    /// (and their environment effects) through fresh κ templates.
    #[allow(clippy::too_many_arguments)]
    fn synth_if(
        &mut self,
        env: &mut Env,
        cond: &ast::Expr,
        then: &ast::Block,
        els: Option<&ast::Block>,
        prefix: &mut Vec<PrefixItem>,
        fn_ctx: &FnCtx,
        span: Span,
    ) -> Result<(RTy, Constraint), Diagnostic> {
        let (cond_ty, cond_c) = self.synth(env, cond, prefix, fn_ctx)?;
        let cond_idx = self.bool_index(&cond_ty, cond.span())?;

        // The join template is built from the pre-branch environment; each
        // branch is then checked against it *inside* its own scope (via the
        // `check_stmts` exit continuation) so that binders introduced by
        // nested statements stay bound in the join constraints.
        let template = self.template_env(env, &fn_ctx.scope);
        // The `if` yields a value only when both branches end in a tail
        // expression (syntactically known up front); only then is a joined
        // value template created — by the then branch, reused by the else
        // branch.  Tail expressions of a value-less `if` are still
        // synthesised for their own obligations.
        let join_values = then.tail.is_some() && els.is_some_and(|block| block.tail.is_some());
        let mut joined: Option<RTy> = None;

        let mut then_env = env.clone();
        let then_c = self.check_stmts(&mut then_env, &then.stmts, fn_ctx, |g, env| {
            let mut p = Vec::new();
            let val_c = match then.tail.as_deref() {
                Some(e) => {
                    let (tt, tc) = g.synth(env, e, &mut p, fn_ctx)?;
                    if join_values {
                        let j = joined.insert(g.template_like(&tt, &fn_ctx.scope));
                        let sub = g.subtype(&tt, j, span, "join of if values");
                        Constraint::conj(vec![tc, sub])
                    } else {
                        tc
                    }
                }
                None => Constraint::True,
            };
            let join = g.env_subtype(env, &template, span, "join after if");
            Ok(wrap(p, Constraint::conj(vec![val_c, join])))
        })?;
        let then_c = Constraint::implies(Guard::Pred(cond_idx.clone()), then_c);

        let els_c = match els {
            Some(block) => {
                let mut els_env = env.clone();
                self.check_stmts(&mut els_env, &block.stmts, fn_ctx, |g, env| {
                    let mut p = Vec::new();
                    let val_c = match block.tail.as_deref() {
                        Some(e) => {
                            let (et, ec) = g.synth(env, e, &mut p, fn_ctx)?;
                            match &joined {
                                Some(j) => {
                                    let sub = g.subtype(&et, j, span, "join of if values");
                                    Constraint::conj(vec![ec, sub])
                                }
                                None => ec,
                            }
                        }
                        None => Constraint::True,
                    };
                    let join = g.env_subtype(env, &template, span, "join after if");
                    Ok(wrap(p, Constraint::conj(vec![val_c, join])))
                })?
            }
            // No else branch: the pre-branch environment flows to the join
            // unchanged.
            None => self.env_subtype(env, &template, span, "join after if"),
        };
        let els_c = Constraint::implies(Guard::Pred(Expr::not(cond_idx)), els_c);

        let result_ty = joined.unwrap_or(RTy::Unit);

        // The continuation sees the opened template environment and the
        // opened result type.
        let mut scope = fn_ctx.scope.clone();
        *env = self.open_env(&template, prefix, &mut scope);
        let opened_result = self.open_into(result_ty, prefix, &mut scope);

        Ok((opened_result, Constraint::conj(vec![cond_c, then_c, els_c])))
    }

    // -----------------------------------------------------------------
    // Expressions
    // -----------------------------------------------------------------

    /// Synthesises the type of an expression, opening scalar existentials so
    /// callers always see indexed scalar types.
    fn synth(
        &mut self,
        env: &mut Env,
        expr: &ast::Expr,
        prefix: &mut Vec<PrefixItem>,
        fn_ctx: &FnCtx,
    ) -> Result<(RTy, Constraint), Diagnostic> {
        let (ty, c) = self.synth_inner(env, expr, prefix, fn_ctx)?;
        let ty = if matches!(
            &ty,
            RTy::Exists {
                base: BaseTy::Int | BaseTy::Uint | BaseTy::Bool,
                ..
            }
        ) {
            let mut scope = Vec::new();
            self.open_into(ty, prefix, &mut scope)
        } else {
            ty
        };
        Ok((ty, c))
    }

    fn synth_inner(
        &mut self,
        env: &mut Env,
        expr: &ast::Expr,
        prefix: &mut Vec<PrefixItem>,
        fn_ctx: &FnCtx,
    ) -> Result<(RTy, Constraint), Diagnostic> {
        match expr {
            ast::Expr::Int(i, _) => {
                Ok((RTy::indexed(BaseTy::Int, Expr::int(*i)), Constraint::True))
            }
            ast::Expr::Float(_, _) => Ok((
                RTy::Indexed {
                    base: BaseTy::Float,
                    indices: vec![],
                },
                Constraint::True,
            )),
            ast::Expr::Bool(b, _) => {
                Ok((RTy::indexed(BaseTy::Bool, Expr::bool(*b)), Constraint::True))
            }
            ast::Expr::Var(name, span) => {
                let ty = env.get(name).cloned().ok_or_else(|| {
                    Diagnostic::error(format!("unknown variable `{name}`"), *span)
                })?;
                Ok((ty, Constraint::True))
            }
            ast::Expr::Unary(op, inner, span) => {
                let (ty, c) = self.synth(env, inner, prefix, fn_ctx)?;
                match op {
                    ast::UnOpKind::Neg => {
                        if matches!(ty.base(), Some(BaseTy::Float)) {
                            return Ok((ty, c));
                        }
                        let idx = self.int_index(&ty, *span)?;
                        Ok((RTy::indexed(BaseTy::Int, Expr::neg(idx)), c))
                    }
                    ast::UnOpKind::Not => {
                        let idx = self.bool_index(&ty, *span)?;
                        Ok((RTy::indexed(BaseTy::Bool, Expr::not(idx)), c))
                    }
                }
            }
            ast::Expr::Binary(op, lhs, rhs, span) => {
                let (lt, lc) = self.synth(env, lhs, prefix, fn_ctx)?;
                let (rt, rc) = self.synth(env, rhs, prefix, fn_ctx)?;
                let c = Constraint::conj(vec![lc, rc]);
                // Float arithmetic carries no refinement.
                if matches!(lt.base(), Some(BaseTy::Float))
                    || matches!(rt.base(), Some(BaseTy::Float))
                {
                    let ty = match op {
                        ast::BinOpKind::Lt
                        | ast::BinOpKind::Le
                        | ast::BinOpKind::Gt
                        | ast::BinOpKind::Ge
                        | ast::BinOpKind::Eq
                        | ast::BinOpKind::Ne => RTy::exists_top(BaseTy::Bool),
                        _ => RTy::Indexed {
                            base: BaseTy::Float,
                            indices: vec![],
                        },
                    };
                    return Ok((ty, c));
                }
                use ast::BinOpKind as B;
                let ty = match op {
                    B::Add | B::Sub | B::Mul | B::Div | B::Rem => {
                        let l = self.int_index(&lt, *span)?;
                        let r = self.int_index(&rt, *span)?;
                        let lop = match op {
                            B::Add => flux_logic::BinOp::Add,
                            B::Sub => flux_logic::BinOp::Sub,
                            B::Mul => flux_logic::BinOp::Mul,
                            B::Div => flux_logic::BinOp::Div,
                            _ => flux_logic::BinOp::Mod,
                        };
                        let base = match (lt.base(), rt.base()) {
                            (Some(BaseTy::Uint), Some(BaseTy::Uint)) => BaseTy::Uint,
                            _ => BaseTy::Int,
                        };
                        RTy::indexed(base, Expr::binop(lop, l, r))
                    }
                    B::Lt | B::Le | B::Gt | B::Ge | B::Eq | B::Ne => {
                        let (l, r) = if matches!(lt.base(), Some(BaseTy::Bool)) {
                            (self.bool_index(&lt, *span)?, self.bool_index(&rt, *span)?)
                        } else {
                            (self.int_index(&lt, *span)?, self.int_index(&rt, *span)?)
                        };
                        let lop = match op {
                            B::Lt => flux_logic::BinOp::Lt,
                            B::Le => flux_logic::BinOp::Le,
                            B::Gt => flux_logic::BinOp::Gt,
                            B::Ge => flux_logic::BinOp::Ge,
                            B::Eq => flux_logic::BinOp::Eq,
                            _ => flux_logic::BinOp::Ne,
                        };
                        RTy::indexed(BaseTy::Bool, Expr::binop(lop, l, r))
                    }
                    B::And | B::Or => {
                        let l = self.bool_index(&lt, *span)?;
                        let r = self.bool_index(&rt, *span)?;
                        let e = if matches!(op, B::And) {
                            Expr::and(l, r)
                        } else {
                            Expr::or(l, r)
                        };
                        RTy::indexed(BaseTy::Bool, e)
                    }
                };
                Ok((ty, c))
            }
            ast::Expr::Deref(inner, span) => {
                let ast::Expr::Var(name, _) = inner.as_ref() else {
                    return Err(Diagnostic::error("unsupported dereference", *span));
                };
                let ty = env.get(name).cloned().ok_or_else(|| {
                    Diagnostic::error(format!("unknown variable `{name}`"), *span)
                })?;
                match ty {
                    RTy::Ref { inner, .. } => Ok(((*inner).clone(), Constraint::True)),
                    other => Err(Diagnostic::error(
                        format!("cannot dereference value of type {other}"),
                        *span,
                    )),
                }
            }
            ast::Expr::Borrow { place, span, .. } => {
                // Bare borrows only make sense as call arguments (handled in
                // `check_call`); elsewhere produce a reference to the
                // referent's current type without weakening.
                let ast::Expr::Var(name, _) = place.as_ref() else {
                    return Err(Diagnostic::error("unsupported borrow expression", *span));
                };
                let ty = env.get(name).cloned().ok_or_else(|| {
                    Diagnostic::error(format!("unknown variable `{name}`"), *span)
                })?;
                Ok((RTy::ref_mut(ty), Constraint::True))
            }
            ast::Expr::Index { recv, index, span } => {
                let (elem_ty, len_idx, recv_c) =
                    self.vec_receiver(env, recv, prefix, fn_ctx, *span)?;
                let (ity, ic) = self.synth(env, index, prefix, fn_ctx)?;
                let iidx = self.int_index(&ity, index.span())?;
                let bounds = self.bounds_obligation(&iidx, &len_idx, index.span());
                Ok((elem_ty, Constraint::conj(vec![recv_c, ic, bounds])))
            }
            ast::Expr::MethodCall {
                recv,
                method,
                args,
                span,
            } => self.synth_method(env, recv, method, args, prefix, fn_ctx, *span),
            ast::Expr::Call { func, args, span } => {
                self.check_call(env, func, args, prefix, fn_ctx, *span)
            }
            ast::Expr::If {
                cond,
                then,
                els,
                span,
            } => self.synth_if(env, cond, then, els.as_ref(), prefix, fn_ctx, *span),
        }
    }

    fn bounds_obligation(&mut self, index: &Expr, len: &Expr, span: Span) -> Constraint {
        let tag = self.tag(span, "vector index may be out of bounds");
        Constraint::pred(
            Expr::and(
                Expr::ge(index.clone(), Expr::int(0)),
                Expr::lt(index.clone(), len.clone()),
            ),
            tag,
        )
    }

    /// Resolves a vector receiver expression (a variable, possibly behind a
    /// reference) to its element type and length index.
    fn vec_receiver(
        &mut self,
        env: &mut Env,
        recv: &ast::Expr,
        _prefix: &mut Vec<PrefixItem>,
        _fn_ctx: &FnCtx,
        span: Span,
    ) -> Result<(RTy, Expr, Constraint), Diagnostic> {
        let name = match recv {
            ast::Expr::Var(name, _) => name.clone(),
            ast::Expr::Deref(inner, _) => match inner.as_ref() {
                ast::Expr::Var(name, _) => name.clone(),
                _ => return Err(Diagnostic::error("unsupported vector receiver", span)),
            },
            _ => return Err(Diagnostic::error("unsupported vector receiver", span)),
        };
        let ty = env
            .get(&name)
            .cloned()
            .ok_or_else(|| Diagnostic::error(format!("unknown variable `{name}`"), span))?;
        let vec_ty = match &ty {
            RTy::Ref { inner, .. } => (**inner).clone(),
            other => other.clone(),
        };
        match vec_ty {
            RTy::Indexed {
                base: BaseTy::Vec(elem),
                indices,
            } => Ok(((*elem).clone(), indices[0].clone(), Constraint::True)),
            RTy::Exists {
                base: BaseTy::Vec(elem),
                binders,
                refine,
            } => {
                // A vector behind a weak reference: open a fresh copy of its
                // existential length for this access.
                let fresh = Name::fresh("len");
                let subst = Subst::single(binders[0], Expr::Var(fresh));
                let guard = match refine {
                    Refine::Pred(p) => Guard::Pred(subst.apply(&p)),
                    Refine::KVar(app) => Guard::KVar(KVarApp::new(
                        app.kvid,
                        app.args.iter().map(|a| subst.apply(a)).collect(),
                    )),
                };
                _prefix.push(PrefixItem::Bind(
                    fresh,
                    Sort::Int,
                    Expr::ge(Expr::Var(fresh), Expr::int(0)),
                ));
                _prefix.push(PrefixItem::Guard(guard));
                Ok(((*elem).clone(), Expr::Var(fresh), Constraint::True))
            }
            other => Err(Diagnostic::error(
                format!("`{name}` is not a vector (has type {other})"),
                span,
            )),
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn synth_method(
        &mut self,
        env: &mut Env,
        recv: &ast::Expr,
        method: &str,
        args: &[ast::Expr],
        prefix: &mut Vec<PrefixItem>,
        fn_ctx: &FnCtx,
        span: Span,
    ) -> Result<(RTy, Constraint), Diagnostic> {
        let recv_name = match recv {
            ast::Expr::Var(name, _) => name.clone(),
            ast::Expr::Deref(inner, _) => match inner.as_ref() {
                ast::Expr::Var(name, _) => name.clone(),
                _ => return Err(Diagnostic::error("unsupported method receiver", span)),
            },
            _ => return Err(Diagnostic::error("unsupported method receiver", span)),
        };
        match method {
            "len" => {
                let (_, len_idx, c) = self.vec_receiver(env, recv, prefix, fn_ctx, span)?;
                Ok((RTy::indexed(BaseTy::Uint, len_idx), c))
            }
            "get" | "get_mut" => {
                let (elem, len_idx, rc) = self.vec_receiver(env, recv, prefix, fn_ctx, span)?;
                let (ity, ic) = self.synth(env, &args[0], prefix, fn_ctx)?;
                let iidx = self.int_index(&ity, span)?;
                let bounds = self.bounds_obligation(&iidx, &len_idx, span);
                let result = if method == "get" {
                    elem
                } else {
                    RTy::ref_mut(elem)
                };
                Ok((result, Constraint::conj(vec![rc, ic, bounds])))
            }
            "push" => {
                let (elem, len_idx, rc) = self.vec_receiver(env, recv, prefix, fn_ctx, span)?;
                let (vty, vc) = self.synth(env, &args[0], prefix, fn_ctx)?;
                let store = self.subtype(&vty, &elem, span, "pushed element");
                let update =
                    self.strong_vec_update(env, &recv_name, len_idx.clone() + Expr::int(1), span)?;
                Ok((RTy::Unit, Constraint::conj(vec![rc, vc, store, update])))
            }
            "pop" => {
                let (elem, len_idx, rc) = self.vec_receiver(env, recv, prefix, fn_ctx, span)?;
                let tag = self.tag(span, "pop from a possibly-empty vector");
                let nonempty = Constraint::pred(Expr::ge(len_idx.clone(), Expr::int(1)), tag);
                let update =
                    self.strong_vec_update(env, &recv_name, len_idx - Expr::int(1), span)?;
                Ok((elem, Constraint::conj(vec![rc, nonempty, update])))
            }
            "swap" => {
                let (_, len_idx, rc) = self.vec_receiver(env, recv, prefix, fn_ctx, span)?;
                let (it1, c1) = self.synth(env, &args[0], prefix, fn_ctx)?;
                let (it2, c2) = self.synth(env, &args[1], prefix, fn_ctx)?;
                let i1 = self.int_index(&it1, span)?;
                let i2 = self.int_index(&it2, span)?;
                let b1 = self.bounds_obligation(&i1, &len_idx, span);
                let b2 = self.bounds_obligation(&i2, &len_idx, span);
                Ok((RTy::Unit, Constraint::conj(vec![rc, c1, c2, b1, b2])))
            }
            "rows" | "cols" => {
                let (mat_base, indices, c) = self.mat_receiver(env, &recv_name, span)?;
                let _ = mat_base;
                let idx = if method == "rows" {
                    indices[0].clone()
                } else {
                    indices[1].clone()
                };
                Ok((RTy::indexed(BaseTy::Uint, idx), c))
            }
            "mget" | "mset" => {
                let (elem, indices, rc) = self.mat_receiver(env, &recv_name, span)?;
                let (it1, c1) = self.synth(env, &args[0], prefix, fn_ctx)?;
                let (it2, c2) = self.synth(env, &args[1], prefix, fn_ctx)?;
                let i1 = self.int_index(&it1, span)?;
                let i2 = self.int_index(&it2, span)?;
                let b1 = self.bounds_obligation(&i1, &indices[0], span);
                let b2 = self.bounds_obligation(&i2, &indices[1], span);
                let mut parts = vec![rc, c1, c2, b1, b2];
                let result = if method == "mget" {
                    elem
                } else {
                    let (vty, vc) = self.synth(env, &args[2], prefix, fn_ctx)?;
                    parts.push(vc);
                    parts.push(self.subtype(&vty, &elem, span, "stored matrix element"));
                    RTy::Unit
                };
                Ok((result, Constraint::conj(parts)))
            }
            other => Err(Diagnostic::error(format!("unknown method `{other}`"), span)),
        }
    }

    fn mat_receiver(
        &mut self,
        env: &Env,
        name: &str,
        span: Span,
    ) -> Result<(RTy, Vec<Expr>, Constraint), Diagnostic> {
        let ty = env
            .get(name)
            .cloned()
            .ok_or_else(|| Diagnostic::error(format!("unknown variable `{name}`"), span))?;
        let mat_ty = match &ty {
            RTy::Ref { inner, .. } => (**inner).clone(),
            other => other.clone(),
        };
        match mat_ty {
            RTy::Indexed {
                base: BaseTy::Mat(elem),
                indices,
            } => Ok(((*elem).clone(), indices, Constraint::True)),
            other => Err(Diagnostic::error(
                format!("`{name}` is not a matrix (has type {other})"),
                span,
            )),
        }
    }

    /// Strong update of an owned vector's length (for `push`/`pop`).
    fn strong_vec_update(
        &mut self,
        env: &mut Env,
        name: &str,
        new_len: Expr,
        span: Span,
    ) -> Result<Constraint, Diagnostic> {
        let ty = env
            .get(name)
            .cloned()
            .ok_or_else(|| Diagnostic::error(format!("unknown variable `{name}`"), span))?;
        match ty {
            RTy::Indexed { base: BaseTy::Vec(elem), .. } => {
                env.set(
                    name,
                    RTy::Indexed {
                        base: BaseTy::Vec(elem),
                        indices: vec![new_len],
                    },
                );
                Ok(Constraint::True)
            }
            RTy::Ref { kind: RefKind::Strg, inner } => match *inner {
                RTy::Indexed { base: BaseTy::Vec(elem), .. } => {
                    env.set(
                        name,
                        RTy::ref_strg(RTy::Indexed {
                            base: BaseTy::Vec(elem),
                            indices: vec![new_len],
                        }),
                    );
                    Ok(Constraint::True)
                }
                other => Err(Diagnostic::error(
                    format!("cannot grow `{name}` of type {other}"),
                    span,
                )),
            },
            RTy::Ref { kind: RefKind::Mut, .. } | RTy::Ref { kind: RefKind::Shared, .. } => {
                Err(Diagnostic::error(
                    format!("`{name}` is borrowed with `&mut`; growing it requires a strong reference (`&strg`)"),
                    span,
                ))
            }
            other => Err(Diagnostic::error(
                format!("cannot grow `{name}` of type {other}"),
                span,
            )),
        }
    }

    // -----------------------------------------------------------------
    // Calls to user-defined functions
    // -----------------------------------------------------------------

    #[allow(clippy::too_many_arguments)]
    fn check_call(
        &mut self,
        env: &mut Env,
        func: &str,
        args: &[ast::Expr],
        prefix: &mut Vec<PrefixItem>,
        fn_ctx: &FnCtx,
        span: Span,
    ) -> Result<(RTy, Constraint), Diagnostic> {
        if func == "RVec::new" {
            // Unannotated `RVec::new()` in expression position: a fresh
            // polymorphic template with unconstrained (float) elements.
            let elem = self.new_vec_elem_template(None, fn_ctx);
            return Ok((
                RTy::Indexed {
                    base: BaseTy::Vec(Box::new(elem)),
                    indices: vec![Expr::int(0)],
                },
                Constraint::True,
            ));
        }
        if func == "RMat::new" {
            // RMat::new(rows, cols, fill) — a rows×cols matrix.
            let (rt, rc) = self.synth(env, &args[0], prefix, fn_ctx)?;
            let (ct, cc) = self.synth(env, &args[1], prefix, fn_ctx)?;
            let (ft, fc) = self.synth(env, &args[2], prefix, fn_ctx)?;
            let rows = self.int_index(&rt, span)?;
            let cols = self.int_index(&ct, span)?;
            let elem = self.template_like(&ft, &fn_ctx.scope);
            let fill = self.subtype(&ft, &elem, span, "matrix fill element");
            return Ok((
                RTy::Indexed {
                    base: BaseTy::Mat(Box::new(elem)),
                    indices: vec![rows, cols],
                },
                Constraint::conj(vec![rc, cc, fc, fill]),
            ));
        }
        let callee = self
            .program
            .function(func)
            .ok_or_else(|| Diagnostic::error(format!("unknown function `{func}`"), span))?;
        let callee_sig = callee.sig.clone();
        if callee_sig.params.len() != args.len() {
            return Err(Diagnostic::error(
                format!(
                    "`{func}` expects {} arguments but {} were given",
                    callee_sig.params.len(),
                    args.len()
                ),
                span,
            ));
        }

        // Synthesise argument information: for borrow arguments we look at
        // the referent, for value arguments at the value.
        let mut parts = Vec::new();
        let mut arg_info: Vec<ArgInfo> = Vec::new();
        for arg in args {
            match arg {
                ast::Expr::Borrow { place, .. } => {
                    let ast::Expr::Var(name, _) = place.as_ref() else {
                        return Err(Diagnostic::error("unsupported borrow argument", span));
                    };
                    let ty = env.get(name).cloned().ok_or_else(|| {
                        Diagnostic::error(format!("unknown variable `{name}`"), span)
                    })?;
                    arg_info.push(ArgInfo::BorrowedLocal(name.clone(), ty));
                }
                ast::Expr::MethodCall {
                    recv,
                    method,
                    args: margs,
                    ..
                } if method == "get_mut" => {
                    let (elem, len_idx, rc) = self.vec_receiver(env, recv, prefix, fn_ctx, span)?;
                    let (ity, ic) = self.synth(env, &margs[0], prefix, fn_ctx)?;
                    let iidx = self.int_index(&ity, span)?;
                    parts.push(rc);
                    parts.push(ic);
                    parts.push(self.bounds_obligation(&iidx, &len_idx, span));
                    arg_info.push(ArgInfo::Element(elem));
                }
                ast::Expr::Var(name, _) if matches!(env.get(name), Some(RTy::Ref { .. })) => {
                    let ty = env.get(name).cloned().expect("checked above");
                    arg_info.push(ArgInfo::ReferenceLocal(ty));
                }
                other => {
                    let (ty, c) = self.synth(env, other, prefix, fn_ctx)?;
                    parts.push(c);
                    arg_info.push(ArgInfo::Value(ty));
                }
            }
        }

        // Instantiate the callee's refinement parameters by unification.
        let mut subst = Subst::new();
        for (formal, info) in callee_sig.params.iter().zip(&arg_info) {
            unify_refine_params(formal, &info.referent_type(), &callee_sig, &mut subst);
        }

        // Check argument subtyping and apply reference effects.
        for (param_index, ((formal, info), arg)) in callee_sig
            .params
            .iter()
            .zip(&arg_info)
            .zip(args)
            .enumerate()
        {
            let formal = formal.subst(&subst);
            match (&formal, info) {
                (
                    RTy::Ref {
                        kind: RefKind::Strg,
                        inner: want,
                    },
                    ArgInfo::BorrowedLocal(name, actual),
                ) => {
                    let referent = strip_ref(actual);
                    parts.push(self.subtype(
                        &referent,
                        want,
                        arg.span(),
                        "strong reference argument",
                    ));
                    // Apply the ensures clause (or keep the input type).
                    let updated = callee_sig
                        .ensures
                        .iter()
                        .find(|(idx, _)| *idx == param_index)
                        .map(|(_, t)| t.subst(&subst))
                        .unwrap_or_else(|| (**want).clone());
                    let mut scope = fn_ctx.scope.clone();
                    let opened = self.open_into(updated, prefix, &mut scope);
                    env.set(name, opened);
                }
                (
                    RTy::Ref {
                        kind: RefKind::Mut,
                        inner: want,
                    },
                    ArgInfo::BorrowedLocal(name, actual),
                ) => {
                    let referent = strip_ref(actual);
                    parts.push(self.subtype(
                        &referent,
                        want,
                        arg.span(),
                        "mutable reference argument",
                    ));
                    // Weak borrow: the local is weakened to the callee's view.
                    let mut scope = fn_ctx.scope.clone();
                    let opened = self.open_into((**want).clone(), prefix, &mut scope);
                    env.set(name, opened);
                }
                (
                    RTy::Ref {
                        kind: RefKind::Shared,
                        inner: want,
                    },
                    ArgInfo::BorrowedLocal(_, actual),
                ) => {
                    let referent = strip_ref(actual);
                    parts.push(self.subtype(
                        &referent,
                        want,
                        arg.span(),
                        "shared reference argument",
                    ));
                }
                (RTy::Ref { kind, inner: want }, ArgInfo::ReferenceLocal(actual)) => {
                    let referent = strip_ref(actual);
                    match kind {
                        RefKind::Shared => {
                            parts.push(self.subtype(
                                &referent,
                                want,
                                arg.span(),
                                "shared reference argument",
                            ));
                        }
                        _ => {
                            parts.push(self.subtype(
                                &referent,
                                want,
                                arg.span(),
                                "mutable reference argument",
                            ));
                            parts.push(self.subtype(
                                want,
                                &referent,
                                arg.span(),
                                "mutable reference argument",
                            ));
                        }
                    }
                }
                (RTy::Ref { kind, inner: want }, ArgInfo::Element(elem)) => match kind {
                    RefKind::Shared => {
                        parts.push(self.subtype(
                            elem,
                            want,
                            arg.span(),
                            "borrowed element argument",
                        ));
                    }
                    _ => {
                        parts.push(self.subtype(
                            elem,
                            want,
                            arg.span(),
                            "borrowed element argument",
                        ));
                        parts.push(self.subtype(
                            want,
                            elem,
                            arg.span(),
                            "borrowed element argument",
                        ));
                    }
                },
                (_, ArgInfo::Value(actual)) => {
                    parts.push(self.subtype(actual, &formal, arg.span(), "argument"));
                }
                (_, info) => {
                    parts.push(self.subtype(
                        &info.referent_type(),
                        &formal,
                        arg.span(),
                        "argument",
                    ));
                }
            }
        }

        let ret = callee_sig.ret.subst(&subst);
        Ok((ret, Constraint::conj(parts)))
    }

    // -----------------------------------------------------------------
    // Index helpers
    // -----------------------------------------------------------------

    fn int_index(&mut self, ty: &RTy, span: Span) -> Result<Expr, Diagnostic> {
        match ty {
            RTy::Indexed {
                base: BaseTy::Int | BaseTy::Uint,
                indices,
            } => Ok(indices[0].clone()),
            other => Err(Diagnostic::error(
                format!("expected an integer value, found {other}"),
                span,
            )),
        }
    }

    fn bool_index(&mut self, ty: &RTy, span: Span) -> Result<Expr, Diagnostic> {
        match ty {
            RTy::Indexed {
                base: BaseTy::Bool,
                indices,
            } => Ok(indices[0].clone()),
            RTy::Exists {
                base: BaseTy::Bool, ..
            } => Ok(Expr::var(Name::fresh("unknown_bool"))),
            other => Err(Diagnostic::error(
                format!("expected a boolean value, found {other}"),
                span,
            )),
        }
    }
}

/// How a call argument is passed.
enum ArgInfo {
    /// `&x` / `&mut x` of a local: the local's current (possibly reference)
    /// type.
    BorrowedLocal(String, RTy),
    /// A local that is already a reference, passed as-is.
    ReferenceLocal(RTy),
    /// `v.get_mut(i)`: a borrowed element of a container.
    Element(RTy),
    /// Passed by value.
    Value(RTy),
}

impl ArgInfo {
    fn referent_type(&self) -> RTy {
        match self {
            ArgInfo::BorrowedLocal(_, t) | ArgInfo::ReferenceLocal(t) => strip_ref(t),
            ArgInfo::Element(t) => t.clone(),
            ArgInfo::Value(t) => t.clone(),
        }
    }
}

/// Pushes `idx ≥ 0` guards for the indices of an indexed type whose base has
/// non-negative indices (sizes and unsigned values).  Used for referents of
/// weak references, which are never opened by [`Generator::open_into`].
fn push_nonneg_index_facts(ty: &RTy, prefix: &mut Vec<PrefixItem>) {
    if let RTy::Indexed { base, indices } = ty {
        if base.indices_nonneg() {
            for idx in indices {
                prefix.push(PrefixItem::Guard(Guard::Pred(Expr::ge(
                    idx.clone(),
                    Expr::int(0),
                ))));
            }
        }
    }
}

fn strip_ref(ty: &RTy) -> RTy {
    match ty {
        RTy::Ref { inner, .. } => (**inner).clone(),
        other => other.clone(),
    }
}

fn bases_compatible(a: &BaseTy, b: &BaseTy) -> bool {
    matches!(
        (a, b),
        (BaseTy::Int | BaseTy::Uint, BaseTy::Int | BaseTy::Uint)
            | (BaseTy::Bool, BaseTy::Bool)
            | (BaseTy::Float, BaseTy::Float)
            | (BaseTy::Vec(_), BaseTy::Vec(_))
            | (BaseTy::Mat(_), BaseTy::Mat(_))
    )
}

/// Renames every existential binder of `ty` to a fresh name, recording the
/// renaming, pushing the binders (with implicit non-negativity facts) onto
/// `prefix` and extending `scope`.  The refinement itself is *not* emitted —
/// [`Generator::emit_refinements`] does that after all binders are known.
fn freshen_binders(
    ty: &RTy,
    renaming: &mut Subst,
    prefix: &mut Vec<PrefixItem>,
    scope: &mut Vec<(Name, Sort)>,
) -> RTy {
    match ty {
        RTy::Exists {
            base,
            binders,
            refine,
        } => {
            let sorts = base.index_sorts();
            let fresh: Vec<Name> = binders.iter().map(|b| Name::fresh(b.as_str())).collect();
            for ((old, new), sort) in binders.iter().zip(&fresh).zip(&sorts) {
                renaming.insert(*old, Expr::Var(*new));
                let nonneg = if base.indices_nonneg() && *sort == Sort::Int {
                    Expr::ge(Expr::Var(*new), Expr::int(0))
                } else {
                    Expr::tt()
                };
                prefix.push(PrefixItem::Bind(*new, *sort, nonneg));
                scope.push((*new, *sort));
            }
            RTy::Exists {
                base: base.clone(),
                binders: fresh,
                refine: refine.clone(),
            }
        }
        RTy::Ref {
            kind: RefKind::Strg,
            inner,
        } => RTy::ref_strg(freshen_binders(inner, renaming, prefix, scope)),
        other => other.clone(),
    }
}

/// Maps each binder of a template type to the corresponding index of the
/// actual type.
fn bind_template_indices(template: &RTy, actual: &RTy, subst: &mut Subst) {
    match (template, actual) {
        (RTy::Exists { binders, .. }, RTy::Indexed { indices, .. }) => {
            for (b, idx) in binders.iter().zip(indices) {
                subst.insert(*b, idx.clone());
            }
        }
        (RTy::Ref { inner: ti, .. }, RTy::Ref { inner: ai, .. }) => {
            bind_template_indices(ti, ai, subst);
        }
        _ => {}
    }
}

/// Unifies unbound refinement parameters of the callee against the actual
/// argument's indices (the `@n` instantiation heuristic of §4.1).
fn unify_refine_params(formal: &RTy, actual: &RTy, sig: &FnSig, subst: &mut Subst) {
    match (formal, actual) {
        (
            RTy::Indexed {
                indices: fi,
                base: fb,
            },
            RTy::Indexed {
                indices: ai,
                base: ab,
            },
        ) => {
            for (f, a) in fi.iter().zip(ai) {
                if let Expr::Var(p) = f {
                    if sig.refine_params.iter().any(|(n, _)| n == p) && subst.get(*p).is_none() {
                        subst.insert(*p, a.clone());
                    }
                }
            }
            if let (Some(fe), Some(ae)) = (fb.element(), ab.element()) {
                unify_refine_params(fe, ae, sig, subst);
            }
        }
        (RTy::Ref { inner: fi, .. }, actual) => {
            unify_refine_params(fi, &strip_ref(actual), sig, subst);
        }
        (RTy::Indexed { .. }, RTy::Ref { inner, .. }) => {
            unify_refine_params(formal, inner, sig, subst);
        }
        _ => {}
    }
}
