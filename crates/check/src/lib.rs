//! The Flux refinement type checker — the paper's primary contribution.
//!
//! Checking a function proceeds in the three phases of §4:
//!
//! 1. **Spatial phase** (here: signature desugaring in `flux-ir` plus
//!    opening parameters into the type environment),
//! 2. **Checking phase**: [`checker::Generator`] walks the function body and
//!    emits a Horn constraint whose unknowns (κ variables) stand for the
//!    refinements of loop invariants, join points and polymorphic
//!    instantiations,
//! 3. **Inference phase**: the constraint is handed to the liquid fixpoint
//!    solver in `flux-fixpoint`; failures are mapped back to source
//!    diagnostics through constraint tags.
//!
//! # Example
//!
//! ```
//! let src = r#"
//!     #[flux::sig(fn(usize[@n]) -> usize[n])]
//!     fn count_up(n: usize) -> usize {
//!         let mut i = 0;
//!         while i < n {
//!             i += 1;
//!         }
//!         i
//!     }
//! "#;
//! let report = flux_check::check_source(src, &flux_check::CheckConfig::default()).unwrap();
//! assert!(report.is_safe());
//! ```

#![warn(missing_docs)]

pub mod checker;

use checker::Generator;
use flux_fixpoint::{FixConfig, FixResult, FixpointSolver};
use flux_ir::ResolvedProgram;
use flux_logic::{lock_recover, SortCtx};
use flux_syntax::span::Diagnostic;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Configuration of the checker.
#[derive(Clone, Debug)]
pub struct CheckConfig {
    /// Configuration forwarded to the fixpoint solver (and through it to the
    /// SMT solver).
    pub fixpoint: FixConfig,
    /// Worker threads for the *function-level* fan-out in [`check_program`]:
    /// whole per-function solves run concurrently, each worker owning its
    /// own [`FixpointSolver`].  Orthogonal to the clause-level pool inside
    /// each solve ([`FixConfig::threads`]); both default to
    /// [`flux_fixpoint::default_threads`] (the `FLUX_THREADS` environment
    /// variable, else the machine's parallelism).  `1` reproduces the
    /// historical shared-solver sequential loop exactly.  Verdicts,
    /// solutions and report order are thread-count-invariant.
    pub fn_threads: usize,
}

impl Default for CheckConfig {
    fn default() -> Self {
        CheckConfig {
            fixpoint: FixConfig::default(),
            fn_threads: flux_fixpoint::default_threads(),
        }
    }
}

/// The result of checking one function.
#[derive(Debug)]
pub struct FnReport {
    /// The function's name.
    pub name: String,
    /// Diagnostics produced (empty when the function is safe).
    pub errors: Vec<Diagnostic>,
    /// Time spent checking this function (constraint generation + solving).
    pub time: Duration,
    /// Statistics from the fixpoint solver.
    pub fixpoint_stats: flux_fixpoint::FixStats,
    /// SMT queries issued per worker slot of the fixpoint solve (a single
    /// slot for sequential solves; see
    /// [`flux_fixpoint::FixpointSolver::worker_queries`]).
    pub worker_queries: Vec<usize>,
    /// Cumulative statistics of the underlying SMT engine (sessions, SAT
    /// rounds, theory checks).
    pub smt_stats: flux_smt::SmtStats,
    /// Reasons the solve degraded to an inconclusive result (deadline hit,
    /// step budget exhausted, a parallel worker panicked).  Empty for
    /// conclusive (safe or unsafe) results.
    pub unknowns: Vec<flux_fixpoint::UnknownReason>,
}

impl FnReport {
    /// True if the function verified.  A function that degraded to an
    /// inconclusive result is *not* safe: resource exhaustion must never be
    /// reported as a successful verification.
    pub fn is_safe(&self) -> bool {
        self.errors.is_empty() && self.unknowns.is_empty()
    }

    /// True if the solve was inconclusive (no counterexample found, but the
    /// result cannot be trusted as a proof either).
    pub fn is_unknown(&self) -> bool {
        self.errors.is_empty() && !self.unknowns.is_empty()
    }
}

/// The result of checking a whole program.
#[derive(Debug, Default)]
pub struct Report {
    /// Per-function results, in source order.
    pub functions: Vec<FnReport>,
    /// Width of the function-level worker pool that produced the report
    /// (`1` for the sequential loop); see [`CheckConfig::fn_threads`].
    pub fn_threads: usize,
    /// Wall-clock time of the whole [`check_program`] run.  Equals (modulo
    /// scheduling noise) the sum of per-function times when sequential;
    /// under the function-level fan-out it is what a caller actually waits,
    /// so speedups show up here while [`Report::total_time`] stays the
    /// comparable total-work figure.
    pub wall_time: Duration,
}

impl Report {
    /// True if every function verified.
    pub fn is_safe(&self) -> bool {
        self.functions.iter().all(FnReport::is_safe)
    }

    /// Total verification time summed over functions (total work, not
    /// wall-clock; see [`Report::wall_time`]).
    pub fn total_time(&self) -> Duration {
        self.functions.iter().map(|f| f.time).sum()
    }

    /// Per-function check times in source order (the `fn_parallel` bench
    /// column: where the wall-clock went under the fan-out).
    pub fn fn_times(&self) -> Vec<Duration> {
        self.functions.iter().map(|f| f.time).collect()
    }

    /// All diagnostics.
    pub fn errors(&self) -> Vec<&Diagnostic> {
        self.functions
            .iter()
            .flat_map(|f| f.errors.iter())
            .collect()
    }

    /// Fixpoint statistics summed over all checked functions.
    pub fn total_fixpoint_stats(&self) -> flux_fixpoint::FixStats {
        let mut total = flux_fixpoint::FixStats::default();
        for f in &self.functions {
            total.absorb(&f.fixpoint_stats);
        }
        total
    }

    /// SMT engine statistics summed over all checked functions.
    pub fn total_smt_stats(&self) -> flux_smt::SmtStats {
        let mut total = flux_smt::SmtStats::default();
        for f in &self.functions {
            total.absorb(f.smt_stats);
        }
        total
    }

    /// Per-worker-slot SMT query counts summed element-wise over all
    /// checked functions (slot `w` aggregates the queries issued by clause
    /// worker `w` across every function's solve).  The per-function vectors
    /// being merged are *namespaced*: each lives in its own [`FnReport`],
    /// written by that function's own solver after its solve — so even when
    /// per-function solves run concurrently (the [`check_program`] fan-out)
    /// and each runs its own clause pool, slot counts from different
    /// functions can never interleave; they only meet here, in this
    /// deterministic source-order sum.
    pub fn total_worker_queries(&self) -> Vec<usize> {
        let mut total: Vec<usize> = Vec::new();
        for f in &self.functions {
            if total.len() < f.worker_queries.len() {
                total.resize(f.worker_queries.len(), 0);
            }
            for (slot, queries) in f.worker_queries.iter().enumerate() {
                total[slot] += queries;
            }
        }
        total
    }
}

/// Checks every (non-trusted) function of a resolved program.
///
/// With [`CheckConfig::fn_threads`] `== 1` (or a single function), one
/// fixpoint solver — and therefore one validity cache — is shared across
/// all functions in source order: VC fragments repeated between functions
/// (identical loop shapes, common bounds obligations) are answered from the
/// cache, and the per-function reports record how often that cross-function
/// sharing paid off ([`flux_fixpoint::FixStats::cross_fn_hits`]).
///
/// With more threads, whole per-function solves fan out over a scoped
/// worker pool.  Functions are claimed from a shared queue; each worker
/// owns its own solver (reused across the functions it claims), and
/// cross-function sharing flows through the process-global sharded validity
/// cache instead of a shared solver.  Each result lands in a slot indexed
/// by the function's source position and the slots are drained in order, so
/// the report — function order, blame order, every rendered table — is
/// bit-identical to the sequential run's.  A panicking per-function solve
/// is contained to that function: its slot reports
/// [`flux_fixpoint::UnknownReason::WorkerPanic`] (inconclusive, never
/// "safe"), the worker replaces its possibly-torn solver, and every other
/// function completes normally — the PR 8 isolation pattern, one level up.
pub fn check_program(program: &ResolvedProgram, config: &CheckConfig) -> Report {
    let start = Instant::now();
    let names: Vec<&str> = program
        .iter()
        .filter(|func| !func.def.trusted)
        .map(|func| func.def.name.as_str())
        .collect();
    let fn_threads = config.fn_threads.max(1).min(names.len().max(1));
    let mut report = if fn_threads == 1 {
        let mut report = Report::default();
        let mut solver = FixpointSolver::new(config.fixpoint.clone());
        for name in &names {
            report
                .functions
                .push(check_function_with(program, name, &mut solver));
        }
        report
    } else {
        check_program_parallel(program, config, &names, fn_threads)
    };
    report.fn_threads = fn_threads;
    report.wall_time = start.elapsed();
    report
}

/// The function-level fan-out of [`check_program`]: `threads` scoped
/// workers claim function indices from an atomic queue and write each
/// [`FnReport`] into the slot of the function's source position.
fn check_program_parallel(
    program: &ResolvedProgram,
    config: &CheckConfig,
    names: &[&str],
    threads: usize,
) -> Report {
    let slots: Vec<Mutex<Option<FnReport>>> = names.iter().map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                let mut solver = FixpointSolver::new(config.fixpoint.clone());
                loop {
                    let idx = next.fetch_add(1, Ordering::Relaxed);
                    let Some(name) = names.get(idx) else { break };
                    let fn_start = Instant::now();
                    // `AssertUnwindSafe`: on a panic the claimed function's
                    // report is synthesized below and the solver — whose
                    // internal state the unwind may have torn mid-solve — is
                    // replaced before the worker claims its next function.
                    // Nothing else crosses the unwind boundary.
                    let outcome = catch_unwind(AssertUnwindSafe(|| {
                        check_function_with(program, name, &mut solver)
                    }));
                    let fn_report = match outcome {
                        Ok(report) => report,
                        Err(payload) => {
                            solver = FixpointSolver::new(config.fixpoint.clone());
                            FnReport {
                                name: (*name).to_owned(),
                                errors: Vec::new(),
                                time: fn_start.elapsed(),
                                fixpoint_stats: flux_fixpoint::FixStats::default(),
                                worker_queries: Vec::new(),
                                smt_stats: flux_smt::SmtStats::default(),
                                unknowns: vec![flux_fixpoint::UnknownReason::WorkerPanic {
                                    component: usize::MAX,
                                    clauses: Vec::new(),
                                    message: flux_fixpoint::panic_message(payload.as_ref()),
                                }],
                            }
                        }
                    };
                    *lock_recover(&slots[idx]) = Some(fn_report);
                }
            });
        }
    });
    Report {
        functions: slots
            .into_iter()
            .map(|slot| {
                lock_recover(&slot)
                    .take()
                    .expect("every claimed slot was filled before the scope joined")
            })
            .collect(),
        ..Report::default()
    }
}

/// Checks a single function by name with a fresh solver.
pub fn check_function(program: &ResolvedProgram, name: &str, config: &CheckConfig) -> FnReport {
    let mut solver = FixpointSolver::new(config.fixpoint.clone());
    check_function_with(program, name, &mut solver)
}

/// Checks a single function by name on a caller-provided solver, so several
/// functions can share its validity cache.
pub fn check_function_with(
    program: &ResolvedProgram,
    name: &str,
    solver: &mut FixpointSolver,
) -> FnReport {
    let start = Instant::now();
    let generator = Generator::new(program);
    match generator.gen_function(name) {
        Err(diag) => FnReport {
            name: name.to_owned(),
            errors: vec![diag],
            time: start.elapsed(),
            fixpoint_stats: flux_fixpoint::FixStats::default(),
            worker_queries: Vec::new(),
            smt_stats: flux_smt::SmtStats::default(),
            unknowns: Vec::new(),
        },
        Ok(gen) => {
            let smt_before = solver.smt_stats();
            let result = solver.solve(&gen.constraint, &gen.kvars, &SortCtx::new());
            let (errors, unknowns) = match result {
                FixResult::Safe(_) => (Vec::new(), Vec::new()),
                FixResult::Unsafe { failed, .. } => (
                    failed
                        .into_iter()
                        .map(|tag| {
                            let info = &gen.tags[tag];
                            Diagnostic::error(info.message.clone(), info.span)
                        })
                        .collect(),
                    Vec::new(),
                ),
                FixResult::Unknown { reasons, .. } => (Vec::new(), reasons),
            };
            FnReport {
                name: name.to_owned(),
                errors,
                time: start.elapsed(),
                fixpoint_stats: solver.stats,
                worker_queries: solver.worker_queries.clone(),
                smt_stats: solver.smt_stats().since(smt_before),
                unknowns,
            }
        }
    }
}

/// Convenience entry point: parse, resolve and check a source string.
pub fn check_source(source: &str, config: &CheckConfig) -> Result<Report, Vec<Diagnostic>> {
    let program = flux_syntax::parse_program(source).map_err(|d| vec![d])?;
    let resolved = ResolvedProgram::resolve(&program)?;
    Ok(check_program(&resolved, config))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(src: &str) -> Report {
        check_source(src, &CheckConfig::default()).expect("program should resolve")
    }

    fn assert_safe(src: &str) {
        let report = check(src);
        assert!(
            report.is_safe(),
            "expected safe, got errors: {:?}",
            report.errors()
        );
    }

    fn assert_unsafe(src: &str) {
        let report = check(src);
        assert!(!report.is_safe(), "expected verification errors, got none");
    }

    #[test]
    fn is_pos_from_fig1_verifies() {
        assert_safe(
            r#"
            #[flux::sig(fn(i32[@n]) -> bool[n > 0])]
            fn is_pos(n: i32) -> bool {
                if n > 0 { true } else { false }
            }
            "#,
        );
    }

    #[test]
    fn abs_from_fig1_verifies() {
        assert_safe(
            r#"
            #[flux::sig(fn(i32[@x]) -> i32{v: v >= x && v >= 0})]
            fn abs(x: i32) -> i32 {
                if x < 0 { -x } else { x }
            }
            "#,
        );
    }

    #[test]
    fn abs_with_wrong_spec_is_rejected() {
        assert_unsafe(
            r#"
            #[flux::sig(fn(i32[@x]) -> i32{v: v > x})]
            fn abs(x: i32) -> i32 {
                if x < 0 { -x } else { x }
            }
            "#,
        );
    }

    #[test]
    fn decr_from_fig2_verifies() {
        assert_safe(
            r#"
            #[flux::sig(fn(x: &mut nat))]
            fn decr(x: &mut i32) {
                let y = *x;
                if y > 0 {
                    *x = y - 1;
                }
            }
            "#,
        );
    }

    #[test]
    fn decr_without_guard_is_rejected() {
        // Removing the branch makes the weak update violate the `nat`
        // invariant.
        assert_unsafe(
            r#"
            #[flux::sig(fn(x: &mut nat))]
            fn decr(x: &mut i32) {
                let y = *x;
                *x = y - 1;
            }
            "#,
        );
    }

    #[test]
    fn incr_with_strong_reference_verifies() {
        assert_safe(
            r#"
            #[flux::sig(fn(x: &strg i32[@n]) ensures *x: i32[n + 1])]
            fn incr(x: &mut i32) {
                *x += 1;
            }

            #[flux::sig(fn() -> i32[2])]
            fn use_incr() -> i32 {
                let mut x = 1;
                incr(&mut x);
                x
            }
            "#,
        );
    }

    #[test]
    fn wrong_ensures_is_rejected() {
        assert_unsafe(
            r#"
            #[flux::sig(fn(x: &strg i32[@n]) ensures *x: i32[n + 2])]
            fn incr(x: &mut i32) {
                *x += 1;
            }
            "#,
        );
    }

    #[test]
    fn loop_counter_invariant_is_inferred() {
        assert_safe(
            r#"
            #[flux::sig(fn(usize[@n]) -> usize[n])]
            fn count_up(n: usize) -> usize {
                let mut i = 0;
                while i < n {
                    i += 1;
                }
                i
            }
            "#,
        );
    }

    #[test]
    fn init_zeros_from_fig4_verifies() {
        assert_safe(
            r#"
            #[flux::sig(fn(usize[@n]) -> RVec<f32>[n])]
            fn init_zeros(n: usize) -> RVec<f32> {
                let mut vec: RVec<f32> = RVec::new();
                let mut i = 0;
                while i < n {
                    vec.push(0.0);
                    i += 1;
                }
                vec
            }
            "#,
        );
    }

    #[test]
    fn vector_bounds_are_checked() {
        assert_safe(
            r#"
            #[flux::sig(fn(v: &RVec<f32>[@n], usize{i: i < n}) -> f32)]
            fn read_at(v: &RVec<f32>, i: usize) -> f32 {
                v.get(i)
            }
            "#,
        );
        assert_unsafe(
            r#"
            #[flux::sig(fn(v: &RVec<f32>[@n], usize) -> f32)]
            fn read_at(v: &RVec<f32>, i: usize) -> f32 {
                v.get(i)
            }
            "#,
        );
    }

    #[test]
    fn summing_a_vector_with_a_loop_verifies() {
        assert_safe(
            r#"
            #[flux::sig(fn(v: &RVec<i32>[@n]) -> i32)]
            fn sum(v: &RVec<i32>) -> i32 {
                let mut total = 0;
                let mut i = 0;
                while i < v.len() {
                    total = total + v.get(i);
                    i += 1;
                }
                total
            }
            "#,
        );
    }

    #[test]
    fn off_by_one_loop_is_rejected() {
        assert_unsafe(
            r#"
            #[flux::sig(fn(v: &RVec<i32>[@n]) -> i32)]
            fn sum(v: &RVec<i32>) -> i32 {
                let mut total = 0;
                let mut i = 0;
                while i <= v.len() {
                    total = total + v.get(i);
                    i += 1;
                }
                total
            }
            "#,
        );
    }

    #[test]
    fn push_through_mut_reference_is_rejected() {
        // Growing a vector changes its length index, which a weak `&mut`
        // borrow cannot do — the ablation of §2.2's strong references.
        let report = check_source(
            r#"
            #[flux::sig(fn(v: &mut RVec<i32>[@n], i32)]
            fn push_it(v: &mut RVec<i32>, x: i32) {
                v.push(x);
            }
            "#,
            &CheckConfig::default(),
        );
        // Either a resolve error (malformed sig) or a check error is fine; use
        // the well-formed variant below for the real assertion.
        drop(report);
        let src = r#"
            #[flux::sig(fn(v: &mut RVec<i32>[@n], i32))]
            fn push_it(v: &mut RVec<i32>, x: i32) {
                v.push(x);
            }
        "#;
        match check_source(src, &CheckConfig::default()) {
            Ok(report) => assert!(!report.is_safe()),
            Err(_) => {}
        }
    }

    #[test]
    fn strong_reference_push_with_ensures_verifies() {
        assert_safe(
            r#"
            #[flux::sig(fn(v: &strg RVec<i32>[@n], i32) ensures *v: RVec<i32>[n + 1])]
            fn push_it(v: &mut RVec<i32>, x: i32) {
                v.push(x);
            }
            "#,
        );
    }

    #[test]
    fn assertions_are_verified() {
        assert_safe(
            r#"
            #[flux::sig(fn(i32{v: v > 0}))]
            fn check_positive(x: i32) {
                assert!(x > 0);
            }
            "#,
        );
        assert_unsafe(
            r#"
            #[flux::sig(fn(i32))]
            fn check_positive(x: i32) {
                assert!(x > 0);
            }
            "#,
        );
    }

    #[test]
    fn interprocedural_refinements_flow_through_calls() {
        assert_safe(
            r#"
            #[flux::sig(fn(i32[@a], i32[@b]) -> i32[a + b])]
            fn add(a: i32, b: i32) -> i32 {
                a + b
            }

            #[flux::sig(fn() -> i32[5])]
            fn five() -> i32 {
                add(2, 3)
            }
            "#,
        );
        assert_unsafe(
            r#"
            #[flux::sig(fn(i32[@a], i32[@b]) -> i32[a + b])]
            fn add(a: i32, b: i32) -> i32 {
                a + b
            }

            #[flux::sig(fn() -> i32[6])]
            fn five() -> i32 {
                add(2, 3)
            }
            "#,
        );
    }

    /// End-to-end over the whole stack: checking under the full audit tier
    /// (constraint lint, SMT theory certificates, independent solution
    /// re-validation) is verdict-identical to checking unaudited, and every
    /// audit counter actually moves.  (The tier is set through the config,
    /// not the process-global `FLUX_AUDIT`, so the test is hermetic.)
    #[test]
    fn full_audit_tier_checks_identically() {
        let src = r#"
            #[flux::sig(fn(usize[@n]) -> RVec<f32>[n])]
            fn init_zeros(n: usize) -> RVec<f32> {
                let mut vec: RVec<f32> = RVec::new();
                let mut i = 0;
                while i < n {
                    vec.push(0.0);
                    i += 1;
                }
                vec
            }
            "#;
        let audited_config = CheckConfig {
            fixpoint: FixConfig {
                smt: flux_smt::SmtConfig {
                    audit: flux_logic::AuditTier::Full,
                    ..flux_smt::SmtConfig::default()
                },
                // Hermetic caching: a verdict replayed from the process
                // global cache skips the solver and with it the certificate
                // counters this test pins.
                global_cache: false,
                ..FixConfig::default()
            },
            ..CheckConfig::default()
        };
        let plain_config = CheckConfig {
            fixpoint: FixConfig {
                smt: flux_smt::SmtConfig {
                    audit: flux_logic::AuditTier::Off,
                    ..flux_smt::SmtConfig::default()
                },
                global_cache: false,
                ..FixConfig::default()
            },
            ..CheckConfig::default()
        };
        let audited = check_source(src, &audited_config).expect("resolves");
        let plain = check_source(src, &plain_config).expect("resolves");
        assert!(audited.is_safe() && plain.is_safe());
        let astats = audited.total_fixpoint_stats();
        assert!(astats.lint_checks > 0, "constraint lint never ran");
        assert!(astats.revalidations > 0, "solution re-validation never ran");
        assert!(
            audited.total_smt_stats().certs_checked > 0,
            "no theory certificate was checked"
        );
        let pstats = plain.total_fixpoint_stats();
        assert_eq!(pstats.lint_checks, 0);
        assert_eq!(pstats.revalidations, 0);
        assert_eq!(plain.total_smt_stats().certs_checked, 0);
    }

    /// The function-level fan-out returns the same report — verdicts,
    /// function order, per-function error lists — as the sequential loop,
    /// even with more workers than functions.
    #[test]
    fn function_fanout_matches_sequential_report() {
        let src = r#"
            #[flux::sig(fn(i32[@n]) -> bool[n > 0])]
            fn is_pos(n: i32) -> bool {
                if n > 0 { true } else { false }
            }

            #[flux::sig(fn(i32[@x]) -> i32{v: v >= x && v >= 0})]
            fn abs(x: i32) -> i32 {
                if x < 0 { -x } else { x }
            }

            #[flux::sig(fn(i32[@a], i32[@b]) -> i32[a + b + 1])]
            fn add_wrong(a: i32, b: i32) -> i32 {
                a + b
            }

            #[flux::sig(fn(usize[@n]) -> usize[n])]
            fn count_up(n: usize) -> usize {
                let mut i = 0;
                while i < n {
                    i += 1;
                }
                i
            }
            "#;
        let with_fn_threads = |fn_threads: usize| CheckConfig {
            fn_threads,
            ..CheckConfig::default()
        };
        let sequential = check_source(src, &with_fn_threads(1)).expect("resolves");
        assert_eq!(sequential.fn_threads, 1);
        for threads in [2, 8] {
            let parallel = check_source(src, &with_fn_threads(threads)).expect("resolves");
            // The pool never opens wider than there are functions to claim.
            assert_eq!(parallel.fn_threads, threads.min(4));
            assert_eq!(parallel.functions.len(), sequential.functions.len());
            for (seq, par) in sequential.functions.iter().zip(&parallel.functions) {
                assert_eq!(seq.name, par.name, "source order must be preserved");
                assert_eq!(seq.is_safe(), par.is_safe(), "verdict flip in {}", seq.name);
                assert_eq!(
                    seq.errors.len(),
                    par.errors.len(),
                    "blame cardinality changed in {}",
                    seq.name
                );
                assert!(par.unknowns.is_empty(), "spurious unknown in {}", seq.name);
            }
            assert!(
                !parallel.functions[2].is_safe(),
                "add_wrong must still fail"
            );
            assert!(parallel.wall_time > Duration::ZERO);
        }
    }

    #[test]
    fn report_collects_timing_and_stats() {
        let report = check(
            r#"
            #[flux::sig(fn(usize[@n]) -> usize[n])]
            fn id(n: usize) -> usize { n }
            "#,
        );
        assert_eq!(report.functions.len(), 1);
        assert!(report.functions[0].fixpoint_stats.clauses >= 1);
        assert!(report.total_time() > Duration::ZERO);
    }

    #[test]
    fn trusted_functions_are_skipped() {
        let report = check(
            r#"
            #[flux::trusted]
            #[flux::sig(fn(i32[@n]) -> i32[n + 1])]
            fn magic(n: i32) -> i32 { n }

            #[flux::sig(fn() -> i32[3])]
            fn uses_magic() -> i32 {
                magic(2)
            }
            "#,
        );
        assert!(report.is_safe());
        assert_eq!(report.functions.len(), 1);
    }
}
