//! Expressions (terms and predicates) of the refinement logic.

use crate::{Name, Sort};
use std::collections::BTreeSet;
use std::ops;

/// A literal constant of the refinement logic.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Constant {
    /// An integer literal.  We use `i128` so that arithmetic on indices of
    /// any of Rust's primitive integer types never overflows inside the
    /// logic.
    Int(i128),
    /// A boolean literal.
    Bool(bool),
    /// A real literal, stored as its bit pattern; refinements never compute
    /// with reals, they only compare them for syntactic equality.
    Real(u64),
}

/// Binary operators of the refinement logic.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum BinOp {
    /// Integer addition.
    Add,
    /// Integer subtraction.
    Sub,
    /// Integer multiplication (the solver only handles it when at least one
    /// side simplifies to a constant; this matches liquid-type practice).
    Mul,
    /// Integer division (euclidean); treated like `Mul`.
    Div,
    /// Integer remainder; treated like `Mul`.
    Mod,
    /// Equality (polymorphic over sorts).
    Eq,
    /// Disequality.
    Ne,
    /// Strictly less than.
    Lt,
    /// Less than or equal.
    Le,
    /// Strictly greater than.
    Gt,
    /// Greater than or equal.
    Ge,
    /// Boolean conjunction.
    And,
    /// Boolean disjunction.
    Or,
    /// Boolean implication.
    Imp,
    /// Boolean bi-implication.
    Iff,
}

impl BinOp {
    /// True for operators whose result sort is `bool`.
    pub fn is_predicate(self) -> bool {
        !matches!(
            self,
            BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Mod
        )
    }
}

/// Unary operators of the refinement logic.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum UnOp {
    /// Boolean negation.
    Not,
    /// Integer negation.
    Neg,
}

/// A refinement expression.
///
/// Expressions of sort `bool` are *predicates* and can be used as
/// refinements; expressions of sort `int`, `real` or `loc` are *indices*.
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Expr {
    /// A refinement variable.
    Var(Name),
    /// A constant.
    Const(Constant),
    /// A unary operation.
    UnOp(UnOp, Box<Expr>),
    /// A binary operation.
    BinOp(BinOp, Box<Expr>, Box<Expr>),
    /// `if c { t } else { e }` at the term level.
    Ite(Box<Expr>, Box<Expr>, Box<Expr>),
    /// Application of an uninterpreted function symbol.
    App(Name, Vec<Expr>),
    /// Universal quantification (baseline verifier only).
    Forall(Vec<(Name, Sort)>, Box<Expr>),
    /// Existential quantification (baseline verifier only).
    Exists(Vec<(Name, Sort)>, Box<Expr>),
}

impl Expr {
    /// The literal `true`.
    pub fn tt() -> Expr {
        Expr::Const(Constant::Bool(true))
    }

    /// The literal `false`.
    pub fn ff() -> Expr {
        Expr::Const(Constant::Bool(false))
    }

    /// An integer literal.
    pub fn int(i: i128) -> Expr {
        Expr::Const(Constant::Int(i))
    }

    /// A boolean literal.
    pub fn bool(b: bool) -> Expr {
        Expr::Const(Constant::Bool(b))
    }

    /// A real literal built from an `f64`.
    pub fn real(x: f64) -> Expr {
        Expr::Const(Constant::Real(x.to_bits()))
    }

    /// A variable.
    pub fn var(name: impl Into<Name>) -> Expr {
        Expr::Var(name.into())
    }

    /// An uninterpreted function application.
    pub fn app(func: impl Into<Name>, args: Vec<Expr>) -> Expr {
        Expr::App(func.into(), args)
    }

    /// `if c { t } else { e }`.
    pub fn ite(c: Expr, t: Expr, e: Expr) -> Expr {
        Expr::Ite(Box::new(c), Box::new(t), Box::new(e))
    }

    /// Universal quantification.  Returns the body unchanged if `binders`
    /// is empty.
    pub fn forall(binders: Vec<(Name, Sort)>, body: Expr) -> Expr {
        if binders.is_empty() {
            body
        } else {
            Expr::Forall(binders, Box::new(body))
        }
    }

    /// Existential quantification.  Returns the body unchanged if `binders`
    /// is empty.
    pub fn exists(binders: Vec<(Name, Sort)>, body: Expr) -> Expr {
        if binders.is_empty() {
            body
        } else {
            Expr::Exists(binders, Box::new(body))
        }
    }

    /// Builds a binary operation.
    pub fn binop(op: BinOp, lhs: Expr, rhs: Expr) -> Expr {
        Expr::BinOp(op, Box::new(lhs), Box::new(rhs))
    }

    /// Builds a unary operation.
    pub fn unop(op: UnOp, arg: Expr) -> Expr {
        Expr::UnOp(op, Box::new(arg))
    }

    /// Logical conjunction with constant folding of trivial cases.
    pub fn and(lhs: Expr, rhs: Expr) -> Expr {
        match (&lhs, &rhs) {
            (Expr::Const(Constant::Bool(true)), _) => rhs,
            (_, Expr::Const(Constant::Bool(true))) => lhs,
            (Expr::Const(Constant::Bool(false)), _) | (_, Expr::Const(Constant::Bool(false))) => {
                Expr::ff()
            }
            _ => Expr::binop(BinOp::And, lhs, rhs),
        }
    }

    /// Conjunction of an arbitrary number of predicates.
    pub fn and_all(preds: impl IntoIterator<Item = Expr>) -> Expr {
        preds.into_iter().fold(Expr::tt(), Expr::and)
    }

    /// Logical disjunction with constant folding of trivial cases.
    pub fn or(lhs: Expr, rhs: Expr) -> Expr {
        match (&lhs, &rhs) {
            (Expr::Const(Constant::Bool(false)), _) => rhs,
            (_, Expr::Const(Constant::Bool(false))) => lhs,
            (Expr::Const(Constant::Bool(true)), _) | (_, Expr::Const(Constant::Bool(true))) => {
                Expr::tt()
            }
            _ => Expr::binop(BinOp::Or, lhs, rhs),
        }
    }

    /// Logical implication with constant folding of trivial cases.
    pub fn imp(lhs: Expr, rhs: Expr) -> Expr {
        match (&lhs, &rhs) {
            (Expr::Const(Constant::Bool(true)), _) => rhs,
            (Expr::Const(Constant::Bool(false)), _) => Expr::tt(),
            (_, Expr::Const(Constant::Bool(true))) => Expr::tt(),
            _ => Expr::binop(BinOp::Imp, lhs, rhs),
        }
    }

    /// Logical bi-implication.
    pub fn iff(lhs: Expr, rhs: Expr) -> Expr {
        Expr::binop(BinOp::Iff, lhs, rhs)
    }

    /// Logical negation with double-negation and constant folding.
    #[allow(clippy::should_implement_trait)] // takes `Expr` by value as a smart constructor, not a trait impl
    pub fn not(arg: Expr) -> Expr {
        match arg {
            Expr::Const(Constant::Bool(b)) => Expr::bool(!b),
            Expr::UnOp(UnOp::Not, inner) => *inner,
            _ => Expr::unop(UnOp::Not, arg),
        }
    }

    /// Arithmetic negation.
    #[allow(clippy::should_implement_trait)]
    pub fn neg(arg: Expr) -> Expr {
        match arg {
            Expr::Const(Constant::Int(i)) => Expr::int(-i),
            _ => Expr::unop(UnOp::Neg, arg),
        }
    }

    /// `lhs = rhs`.
    pub fn eq(lhs: Expr, rhs: Expr) -> Expr {
        Expr::binop(BinOp::Eq, lhs, rhs)
    }

    /// `lhs != rhs`.
    pub fn ne(lhs: Expr, rhs: Expr) -> Expr {
        Expr::binop(BinOp::Ne, lhs, rhs)
    }

    /// `lhs < rhs`.
    pub fn lt(lhs: Expr, rhs: Expr) -> Expr {
        Expr::binop(BinOp::Lt, lhs, rhs)
    }

    /// `lhs <= rhs`.
    pub fn le(lhs: Expr, rhs: Expr) -> Expr {
        Expr::binop(BinOp::Le, lhs, rhs)
    }

    /// `lhs > rhs`.
    pub fn gt(lhs: Expr, rhs: Expr) -> Expr {
        Expr::binop(BinOp::Gt, lhs, rhs)
    }

    /// `lhs >= rhs`.
    pub fn ge(lhs: Expr, rhs: Expr) -> Expr {
        Expr::binop(BinOp::Ge, lhs, rhs)
    }

    /// True if this expression is literally `true`.
    pub fn is_trivially_true(&self) -> bool {
        matches!(self, Expr::Const(Constant::Bool(true)))
    }

    /// True if this expression is literally `false`.
    pub fn is_trivially_false(&self) -> bool {
        matches!(self, Expr::Const(Constant::Bool(false)))
    }

    /// True if the expression contains a quantifier anywhere.
    pub fn has_quantifier(&self) -> bool {
        match self {
            Expr::Forall(..) | Expr::Exists(..) => true,
            Expr::Var(_) | Expr::Const(_) => false,
            Expr::UnOp(_, e) => e.has_quantifier(),
            Expr::BinOp(_, l, r) => l.has_quantifier() || r.has_quantifier(),
            Expr::Ite(c, t, e) => c.has_quantifier() || t.has_quantifier() || e.has_quantifier(),
            Expr::App(_, args) => args.iter().any(Expr::has_quantifier),
        }
    }

    /// True if the expression contains an uninterpreted application anywhere.
    pub fn has_app(&self) -> bool {
        match self {
            Expr::App(..) => true,
            Expr::Var(_) | Expr::Const(_) => false,
            Expr::UnOp(_, e) => e.has_app(),
            Expr::BinOp(_, l, r) => l.has_app() || r.has_app(),
            Expr::Ite(c, t, e) => c.has_app() || t.has_app() || e.has_app(),
            Expr::Forall(_, body) | Expr::Exists(_, body) => body.has_app(),
        }
    }

    /// Collects the free variables of this expression into `out`.
    pub fn collect_free_vars(&self, out: &mut BTreeSet<Name>) {
        fn go(expr: &Expr, bound: &mut Vec<Name>, out: &mut BTreeSet<Name>) {
            match expr {
                Expr::Var(name) => {
                    if !bound.contains(name) {
                        out.insert(*name);
                    }
                }
                Expr::Const(_) => {}
                Expr::UnOp(_, e) => go(e, bound, out),
                Expr::BinOp(_, l, r) => {
                    go(l, bound, out);
                    go(r, bound, out);
                }
                Expr::Ite(c, t, e) => {
                    go(c, bound, out);
                    go(t, bound, out);
                    go(e, bound, out);
                }
                Expr::App(_, args) => {
                    for arg in args {
                        go(arg, bound, out);
                    }
                }
                Expr::Forall(binders, body) | Expr::Exists(binders, body) => {
                    let before = bound.len();
                    bound.extend(binders.iter().map(|(n, _)| *n));
                    go(body, bound, out);
                    bound.truncate(before);
                }
            }
        }
        go(self, &mut Vec::new(), out);
    }

    /// Returns the set of free variables of this expression.
    pub fn free_vars(&self) -> BTreeSet<Name> {
        let mut out = BTreeSet::new();
        self.collect_free_vars(&mut out);
        out
    }

    /// Splits a (possibly nested) conjunction into its conjuncts.
    pub fn conjuncts(&self) -> Vec<&Expr> {
        let mut out = Vec::new();
        fn go<'a>(e: &'a Expr, out: &mut Vec<&'a Expr>) {
            match e {
                Expr::BinOp(BinOp::And, l, r) => {
                    go(l, out);
                    go(r, out);
                }
                _ => out.push(e),
            }
        }
        go(self, &mut out);
        out
    }

    /// Number of AST nodes; used by tests and as a heuristic size metric.
    pub fn size(&self) -> usize {
        match self {
            Expr::Var(_) | Expr::Const(_) => 1,
            Expr::UnOp(_, e) => 1 + e.size(),
            Expr::BinOp(_, l, r) => 1 + l.size() + r.size(),
            Expr::Ite(c, t, e) => 1 + c.size() + t.size() + e.size(),
            Expr::App(_, args) => 1 + args.iter().map(Expr::size).sum::<usize>(),
            Expr::Forall(_, body) | Expr::Exists(_, body) => 1 + body.size(),
        }
    }
}

impl ops::Add for Expr {
    type Output = Expr;
    fn add(self, rhs: Expr) -> Expr {
        Expr::binop(BinOp::Add, self, rhs)
    }
}

impl ops::Sub for Expr {
    type Output = Expr;
    fn sub(self, rhs: Expr) -> Expr {
        Expr::binop(BinOp::Sub, self, rhs)
    }
}

impl ops::Mul for Expr {
    type Output = Expr;
    fn mul(self, rhs: Expr) -> Expr {
        Expr::binop(BinOp::Mul, self, rhs)
    }
}

impl From<i128> for Expr {
    fn from(i: i128) -> Expr {
        Expr::int(i)
    }
}

impl From<bool> for Expr {
    fn from(b: bool) -> Expr {
        Expr::bool(b)
    }
}

impl From<Name> for Expr {
    fn from(name: Name) -> Expr {
        Expr::Var(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(s: &str) -> Expr {
        Expr::var(Name::intern(s))
    }

    #[test]
    fn constant_folding_in_and() {
        assert_eq!(Expr::and(Expr::tt(), v("p")), v("p"));
        assert_eq!(Expr::and(v("p"), Expr::tt()), v("p"));
        assert!(Expr::and(Expr::ff(), v("p")).is_trivially_false());
    }

    #[test]
    fn constant_folding_in_or() {
        assert_eq!(Expr::or(Expr::ff(), v("p")), v("p"));
        assert!(Expr::or(v("p"), Expr::tt()).is_trivially_true());
    }

    #[test]
    fn constant_folding_in_imp() {
        assert_eq!(Expr::imp(Expr::tt(), v("p")), v("p"));
        assert!(Expr::imp(Expr::ff(), v("p")).is_trivially_true());
        assert!(Expr::imp(v("p"), Expr::tt()).is_trivially_true());
    }

    #[test]
    fn double_negation_is_removed() {
        assert_eq!(Expr::not(Expr::not(v("p"))), v("p"));
        assert!(Expr::not(Expr::tt()).is_trivially_false());
    }

    #[test]
    fn and_all_of_empty_is_true() {
        assert!(Expr::and_all([]).is_trivially_true());
        assert_eq!(Expr::and_all([v("p")]), v("p"));
    }

    #[test]
    fn free_vars_of_open_expression() {
        let e = Expr::lt(v("i"), v("n")) + Expr::int(0); // not well-sorted but fine for fv
        let fvs = e.free_vars();
        assert!(fvs.contains(&Name::intern("i")));
        assert!(fvs.contains(&Name::intern("n")));
        assert_eq!(fvs.len(), 2);
    }

    #[test]
    fn quantifier_binds_variables_for_fv() {
        let i = Name::intern("i");
        let n = Name::intern("n");
        let e = Expr::forall(
            vec![(i, Sort::Int)],
            Expr::imp(
                Expr::lt(Expr::var(i), Expr::var(n)),
                Expr::ge(Expr::var(i), Expr::int(0)),
            ),
        );
        let fvs = e.free_vars();
        assert!(!fvs.contains(&i));
        assert!(fvs.contains(&n));
    }

    #[test]
    fn conjuncts_flattens_nested_ands() {
        let e = Expr::and(Expr::and(v("a"), v("b")), v("c"));
        let cs = e.conjuncts();
        assert_eq!(cs.len(), 3);
    }

    #[test]
    fn empty_binder_list_returns_body() {
        assert_eq!(Expr::forall(vec![], v("p")), v("p"));
        assert_eq!(Expr::exists(vec![], v("p")), v("p"));
    }

    #[test]
    fn has_app_detects_nesting() {
        let e = Expr::and(
            v("p"),
            Expr::ge(Expr::app("len", vec![v("xs")]), Expr::int(0)),
        );
        assert!(e.has_app());
        assert!(!v("p").has_app());
    }

    #[test]
    fn has_quantifier_detects_nesting() {
        let i = Name::intern("i");
        let inner = Expr::forall(vec![(i, Sort::Int)], Expr::tt());
        let e = Expr::and(v("p"), inner);
        assert!(e.has_quantifier());
        assert!(!v("p").has_quantifier());
    }

    #[test]
    fn operator_overloads_build_binops() {
        let e = v("x") + Expr::int(1);
        assert!(matches!(e, Expr::BinOp(BinOp::Add, _, _)));
        let e = v("x") - v("y");
        assert!(matches!(e, Expr::BinOp(BinOp::Sub, _, _)));
        let e = v("x") * Expr::int(2);
        assert!(matches!(e, Expr::BinOp(BinOp::Mul, _, _)));
    }

    #[test]
    fn size_counts_nodes() {
        assert_eq!(v("x").size(), 1);
        assert_eq!((v("x") + Expr::int(1)).size(), 3);
    }

    #[test]
    fn neg_folds_constants() {
        assert_eq!(Expr::neg(Expr::int(5)), Expr::int(-5));
    }
}
