//! Capture-avoiding substitution of refinement expressions for variables.

use crate::{Expr, Name};
use std::collections::BTreeMap;

/// A simultaneous substitution mapping refinement variables to expressions.
///
/// Substitution is capture avoiding: substituting under a quantifier that
/// binds a variable appearing free in a replacement expression renames the
/// bound variable first.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Subst {
    map: BTreeMap<Name, Expr>,
}

impl Subst {
    /// The empty substitution.
    pub fn new() -> Subst {
        Subst::default()
    }

    /// A substitution of a single variable.
    pub fn single(name: Name, expr: Expr) -> Subst {
        let mut s = Subst::new();
        s.insert(name, expr);
        s
    }

    /// Adds (or replaces) the mapping `name ↦ expr`.
    pub fn insert(&mut self, name: Name, expr: Expr) {
        self.map.insert(name, expr);
    }

    /// Looks up the replacement for `name`, if any.
    pub fn get(&self, name: Name) -> Option<&Expr> {
        self.map.get(&name)
    }

    /// True if the substitution has no mappings.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Number of mappings.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Iterates over the mappings.
    pub fn iter(&self) -> impl Iterator<Item = (Name, &Expr)> {
        self.map.iter().map(|(n, e)| (*n, e))
    }

    /// Applies the substitution to `expr`.
    pub fn apply(&self, expr: &Expr) -> Expr {
        if self.is_empty() {
            return expr.clone();
        }
        self.apply_rec(expr)
    }

    fn apply_rec(&self, expr: &Expr) -> Expr {
        match expr {
            Expr::Var(name) => match self.map.get(name) {
                Some(replacement) => replacement.clone(),
                None => expr.clone(),
            },
            Expr::Const(_) => expr.clone(),
            Expr::UnOp(op, e) => Expr::unop(*op, self.apply_rec(e)),
            Expr::BinOp(op, l, r) => Expr::binop(*op, self.apply_rec(l), self.apply_rec(r)),
            Expr::Ite(c, t, e) => {
                Expr::ite(self.apply_rec(c), self.apply_rec(t), self.apply_rec(e))
            }
            Expr::App(f, args) => Expr::App(*f, args.iter().map(|a| self.apply_rec(a)).collect()),
            Expr::Forall(binders, body) => {
                let (binders, body) = self.apply_under_binders(binders, body);
                Expr::Forall(binders, Box::new(body))
            }
            Expr::Exists(binders, body) => {
                let (binders, body) = self.apply_under_binders(binders, body);
                Expr::Exists(binders, Box::new(body))
            }
        }
    }

    fn apply_under_binders(
        &self,
        binders: &[(Name, crate::Sort)],
        body: &Expr,
    ) -> (Vec<(Name, crate::Sort)>, Expr) {
        // Restrict the substitution to variables that are not re-bound here.
        let mut inner = Subst::new();
        for (name, repl) in &self.map {
            if !binders.iter().any(|(b, _)| b == name) {
                inner.insert(*name, repl.clone());
            }
        }
        // Rename binders that would capture free variables of replacements.
        let mut clash: Vec<Name> = Vec::new();
        for (_, repl) in inner.map.iter() {
            for fv in repl.free_vars() {
                if binders.iter().any(|(b, _)| *b == fv) {
                    clash.push(fv);
                }
            }
        }
        let mut new_binders = binders.to_vec();
        let mut renaming = Subst::new();
        for (name, _) in new_binders.iter_mut() {
            if clash.contains(name) {
                let fresh = Name::fresh(name.as_str());
                renaming.insert(*name, Expr::Var(fresh));
                *name = fresh;
            }
        }
        let body = if renaming.is_empty() {
            body.clone()
        } else {
            renaming.apply(body)
        };
        (new_binders, inner.apply(&body))
    }
}

impl FromIterator<(Name, Expr)> for Subst {
    fn from_iter<T: IntoIterator<Item = (Name, Expr)>>(iter: T) -> Self {
        let mut s = Subst::new();
        for (n, e) in iter {
            s.insert(n, e);
        }
        s
    }
}

impl Expr {
    /// Substitutes `expr` for every free occurrence of `name` in `self`.
    pub fn subst(&self, name: Name, expr: Expr) -> Expr {
        Subst::single(name, expr).apply(self)
    }
}

/// Canonical α-renaming for cache keys.
///
/// The fixpoint engine keys its validity cache on hash-consed clause
/// expressions.  Binder names inside those expressions come from
/// [`Name::fresh`], whose process-global counter makes otherwise identical
/// verification runs produce different names — and therefore different
/// keys, so a warm cache never hits across runs.  An `AlphaRenamer` maps
/// context binders (via [`AlphaRenamer::bind`]) and quantifier binders
/// (during [`AlphaRenamer::normalize`]) to positional canonical names
/// (`%k0`, `%k1`, …), so α-equivalent queries share one key no matter
/// which run produced them.
///
/// The canonical names contain `%`, which the surface lexer rejects in
/// identifiers, so user programs can never mention them; [`Name::fresh`]
/// skips strings that are already interned, so it can never mint them
/// either.  The renaming is injective — each binding position gets a
/// distinct canonical name — so two queries normalize to the same key only
/// if they are genuinely α-equivalent.  Normalized expressions serve
/// *only* as cache keys: the solver always works on the originals.
#[derive(Debug, Default)]
pub struct AlphaRenamer {
    outer: std::collections::HashMap<Name, Name>,
    next: usize,
}

impl AlphaRenamer {
    /// A renamer with no context binders.
    pub fn new() -> AlphaRenamer {
        AlphaRenamer::default()
    }

    fn canonical(i: usize) -> Name {
        Name::intern(&format!("%k{i}"))
    }

    /// Binds a context variable, returning its canonical positional name.
    /// Binding a name again shadows the earlier binding, mirroring
    /// `SortCtx` lookup (free occurrences resolve innermost).
    pub fn bind(&mut self, name: Name) -> Name {
        let canon = AlphaRenamer::canonical(self.next);
        self.next += 1;
        self.outer.insert(name, canon);
        canon
    }

    /// α-normalizes `expr` under the bound context.  Free occurrences of
    /// bound names are canonicalized; quantifier binders are renamed
    /// positionally, with numbering continuing from the context but scoped
    /// to this call, so a given expression normalizes identically no
    /// matter how many others were normalized before it.  Names bound
    /// neither by the context nor by a quantifier pass through untouched,
    /// as do function symbols (they live in a separate namespace).
    pub fn normalize(&self, expr: &Expr) -> Expr {
        let mut scope = ScopedRenamer {
            map: self.outer.clone(),
            next: self.next,
        };
        scope.go(expr)
    }
}

/// The per-[`AlphaRenamer::normalize`]-call scope: the outer map extended
/// with quantifier binders encountered along the current path.
struct ScopedRenamer {
    map: std::collections::HashMap<Name, Name>,
    next: usize,
}

impl ScopedRenamer {
    fn go(&mut self, expr: &Expr) -> Expr {
        match expr {
            Expr::Var(name) => Expr::Var(self.map.get(name).copied().unwrap_or(*name)),
            Expr::Const(_) => expr.clone(),
            Expr::UnOp(op, e) => Expr::unop(*op, self.go(e)),
            Expr::BinOp(op, l, r) => {
                let l = self.go(l);
                let r = self.go(r);
                Expr::binop(*op, l, r)
            }
            Expr::Ite(c, t, e) => {
                let c = self.go(c);
                let t = self.go(t);
                let e = self.go(e);
                Expr::ite(c, t, e)
            }
            Expr::App(f, args) => Expr::App(*f, args.iter().map(|a| self.go(a)).collect()),
            Expr::Forall(binders, body) => {
                let (binders, body) = self.go_binders(binders, body);
                Expr::Forall(binders, Box::new(body))
            }
            Expr::Exists(binders, body) => {
                let (binders, body) = self.go_binders(binders, body);
                Expr::Exists(binders, Box::new(body))
            }
        }
    }

    fn go_binders(
        &mut self,
        binders: &[(Name, crate::Sort)],
        body: &Expr,
    ) -> (Vec<(Name, crate::Sort)>, Expr) {
        let mut renamed = Vec::with_capacity(binders.len());
        let mut saved = Vec::with_capacity(binders.len());
        for (name, sort) in binders {
            let canon = AlphaRenamer::canonical(self.next);
            self.next += 1;
            saved.push((*name, self.map.insert(*name, canon)));
            renamed.push((canon, *sort));
        }
        let body = self.go(body);
        // Restore shadowed bindings innermost-first so duplicate binder
        // names in one list unwind correctly.
        for (name, previous) in saved.into_iter().rev() {
            match previous {
                Some(previous) => self.map.insert(name, previous),
                None => self.map.remove(&name),
            };
        }
        (renamed, body)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Sort;

    fn n(s: &str) -> Name {
        Name::intern(s)
    }

    fn v(s: &str) -> Expr {
        Expr::var(n(s))
    }

    #[test]
    fn substitutes_free_variable() {
        let e = Expr::ge(v("x"), Expr::int(0));
        let out = e.subst(n("x"), v("y") + Expr::int(1));
        assert_eq!(out, Expr::ge(v("y") + Expr::int(1), Expr::int(0)));
    }

    #[test]
    fn leaves_other_variables_alone() {
        let e = Expr::lt(v("x"), v("y"));
        let out = e.subst(n("z"), Expr::int(3));
        assert_eq!(out, e);
    }

    #[test]
    fn simultaneous_substitution_does_not_chain() {
        // [x ↦ y, y ↦ 0] applied to x + y must give y + 0, not 0 + 0.
        let s: Subst = [(n("x"), v("y")), (n("y"), Expr::int(0))]
            .into_iter()
            .collect();
        let out = s.apply(&(v("x") + v("y")));
        assert_eq!(out, v("y") + Expr::int(0));
    }

    #[test]
    fn bound_variables_are_not_substituted() {
        let e = Expr::forall(vec![(n("i"), Sort::Int)], Expr::ge(v("i"), v("lo")));
        let out = e.subst(n("i"), Expr::int(42));
        assert_eq!(out, e);
    }

    #[test]
    fn capture_is_avoided_by_renaming() {
        // (forall i. i <= n)[n ↦ i] must NOT become (forall i. i <= i).
        let e = Expr::forall(vec![(n("i"), Sort::Int)], Expr::le(v("i"), v("n")));
        let out = e.subst(n("n"), v("i"));
        match &out {
            Expr::Forall(binders, body) => {
                let bound = binders[0].0;
                assert_ne!(bound, n("i"), "binder must have been renamed");
                // body is bound <= i
                assert_eq!(**body, Expr::le(Expr::Var(bound), v("i")));
            }
            other => panic!("expected forall, got {other:?}"),
        }
    }

    #[test]
    fn substitution_inside_application() {
        let e = Expr::app(n("select"), vec![v("a"), v("i")]);
        let out = e.subst(n("i"), Expr::int(0));
        assert_eq!(out, Expr::app(n("select"), vec![v("a"), Expr::int(0)]));
    }

    #[test]
    fn substitution_inside_ite() {
        let e = Expr::ite(Expr::gt(v("x"), Expr::int(0)), v("x"), Expr::neg(v("x")));
        let out = e.subst(n("x"), Expr::int(5));
        assert_eq!(
            out,
            Expr::ite(
                Expr::gt(Expr::int(5), Expr::int(0)),
                Expr::int(5),
                Expr::unop(crate::UnOp::Neg, Expr::int(5))
            )
        );
    }

    #[test]
    fn empty_substitution_is_identity() {
        let e = Expr::and(Expr::ge(v("x"), Expr::int(0)), Expr::lt(v("x"), v("n")));
        assert_eq!(Subst::new().apply(&e), e);
    }

    #[test]
    fn subst_through_shadowing_binder_restricts() {
        // (forall x. x > y)[x ↦ 1] leaves the body alone because x is bound.
        let e = Expr::forall(vec![(n("x"), Sort::Int)], Expr::gt(v("x"), v("y")));
        let out = e.subst(n("x"), Expr::int(1));
        assert_eq!(out, e);
    }

    #[test]
    fn alpha_equivalent_contexts_normalize_identically() {
        // Two runs of the same program draw different fresh names for the
        // same binders; after positional renaming the expressions agree.
        let (a, b) = (Name::fresh("x"), Name::fresh("x"));
        assert_ne!(a, b);
        let normalize = |name: Name| {
            let mut renamer = AlphaRenamer::new();
            renamer.bind(name);
            renamer.normalize(&Expr::ge(Expr::Var(name), Expr::int(0)))
        };
        assert_eq!(normalize(a), normalize(b));
    }

    #[test]
    fn distinct_binders_stay_distinct() {
        // Injectivity: x > y must not collapse onto x > x.
        let mut renamer = AlphaRenamer::new();
        renamer.bind(n("x"));
        renamer.bind(n("y"));
        let xy = renamer.normalize(&Expr::gt(v("x"), v("y")));
        let xx = renamer.normalize(&Expr::gt(v("x"), v("x")));
        assert_ne!(xy, xx);
    }

    #[test]
    fn quantifier_binders_normalize_positionally() {
        let (a, b) = (Name::fresh("q"), Name::fresh("q"));
        let quantified =
            |q: Name| Expr::forall(vec![(q, Sort::Int)], Expr::ge(Expr::Var(q), v("free")));
        let renamer = AlphaRenamer::new();
        assert_eq!(
            renamer.normalize(&quantified(a)),
            renamer.normalize(&quantified(b))
        );
        // The free variable is untouched.
        match renamer.normalize(&quantified(a)) {
            Expr::Forall(_, body) => match *body {
                Expr::BinOp(_, _, r) => assert_eq!(*r, v("free")),
                other => panic!("expected binop body, got {other:?}"),
            },
            other => panic!("expected forall, got {other:?}"),
        }
    }

    #[test]
    fn normalization_is_call_scoped() {
        // Numbering restarts from the context size on every call: the same
        // expression normalizes identically regardless of what was
        // normalized before it.
        let mut renamer = AlphaRenamer::new();
        renamer.bind(n("c"));
        let e = Expr::exists(vec![(n("w"), Sort::Int)], Expr::gt(v("w"), v("c")));
        let first = renamer.normalize(&e);
        let _other =
            renamer.normalize(&Expr::forall(vec![(n("z"), Sort::Bool)], Expr::Var(n("z"))));
        assert_eq!(renamer.normalize(&e), first);
    }

    #[test]
    fn shadowing_resolves_innermost() {
        let mut renamer = AlphaRenamer::new();
        let outer = renamer.bind(n("x"));
        let inner = renamer.bind(n("x"));
        assert_ne!(outer, inner);
        // A free occurrence refers to the innermost binding, as SortCtx
        // lookup would resolve it.
        assert_eq!(renamer.normalize(&v("x")), Expr::Var(inner));
    }
}
