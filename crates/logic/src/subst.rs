//! Capture-avoiding substitution of refinement expressions for variables.

use crate::{Expr, Name};
use std::collections::BTreeMap;

/// A simultaneous substitution mapping refinement variables to expressions.
///
/// Substitution is capture avoiding: substituting under a quantifier that
/// binds a variable appearing free in a replacement expression renames the
/// bound variable first.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Subst {
    map: BTreeMap<Name, Expr>,
}

impl Subst {
    /// The empty substitution.
    pub fn new() -> Subst {
        Subst::default()
    }

    /// A substitution of a single variable.
    pub fn single(name: Name, expr: Expr) -> Subst {
        let mut s = Subst::new();
        s.insert(name, expr);
        s
    }

    /// Adds (or replaces) the mapping `name ↦ expr`.
    pub fn insert(&mut self, name: Name, expr: Expr) {
        self.map.insert(name, expr);
    }

    /// Looks up the replacement for `name`, if any.
    pub fn get(&self, name: Name) -> Option<&Expr> {
        self.map.get(&name)
    }

    /// True if the substitution has no mappings.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Number of mappings.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Iterates over the mappings.
    pub fn iter(&self) -> impl Iterator<Item = (Name, &Expr)> {
        self.map.iter().map(|(n, e)| (*n, e))
    }

    /// Applies the substitution to `expr`.
    pub fn apply(&self, expr: &Expr) -> Expr {
        if self.is_empty() {
            return expr.clone();
        }
        self.apply_rec(expr)
    }

    fn apply_rec(&self, expr: &Expr) -> Expr {
        match expr {
            Expr::Var(name) => match self.map.get(name) {
                Some(replacement) => replacement.clone(),
                None => expr.clone(),
            },
            Expr::Const(_) => expr.clone(),
            Expr::UnOp(op, e) => Expr::unop(*op, self.apply_rec(e)),
            Expr::BinOp(op, l, r) => Expr::binop(*op, self.apply_rec(l), self.apply_rec(r)),
            Expr::Ite(c, t, e) => {
                Expr::ite(self.apply_rec(c), self.apply_rec(t), self.apply_rec(e))
            }
            Expr::App(f, args) => Expr::App(*f, args.iter().map(|a| self.apply_rec(a)).collect()),
            Expr::Forall(binders, body) => {
                let (binders, body) = self.apply_under_binders(binders, body);
                Expr::Forall(binders, Box::new(body))
            }
            Expr::Exists(binders, body) => {
                let (binders, body) = self.apply_under_binders(binders, body);
                Expr::Exists(binders, Box::new(body))
            }
        }
    }

    fn apply_under_binders(
        &self,
        binders: &[(Name, crate::Sort)],
        body: &Expr,
    ) -> (Vec<(Name, crate::Sort)>, Expr) {
        // Restrict the substitution to variables that are not re-bound here.
        let mut inner = Subst::new();
        for (name, repl) in &self.map {
            if !binders.iter().any(|(b, _)| b == name) {
                inner.insert(*name, repl.clone());
            }
        }
        // Rename binders that would capture free variables of replacements.
        let mut clash: Vec<Name> = Vec::new();
        for (_, repl) in inner.map.iter() {
            for fv in repl.free_vars() {
                if binders.iter().any(|(b, _)| *b == fv) {
                    clash.push(fv);
                }
            }
        }
        let mut new_binders = binders.to_vec();
        let mut renaming = Subst::new();
        for (name, _) in new_binders.iter_mut() {
            if clash.contains(name) {
                let fresh = Name::fresh(name.as_str());
                renaming.insert(*name, Expr::Var(fresh));
                *name = fresh;
            }
        }
        let body = if renaming.is_empty() {
            body.clone()
        } else {
            renaming.apply(body)
        };
        (new_binders, inner.apply(&body))
    }
}

impl FromIterator<(Name, Expr)> for Subst {
    fn from_iter<T: IntoIterator<Item = (Name, Expr)>>(iter: T) -> Self {
        let mut s = Subst::new();
        for (n, e) in iter {
            s.insert(n, e);
        }
        s
    }
}

impl Expr {
    /// Substitutes `expr` for every free occurrence of `name` in `self`.
    pub fn subst(&self, name: Name, expr: Expr) -> Expr {
        Subst::single(name, expr).apply(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Sort;

    fn n(s: &str) -> Name {
        Name::intern(s)
    }

    fn v(s: &str) -> Expr {
        Expr::var(n(s))
    }

    #[test]
    fn substitutes_free_variable() {
        let e = Expr::ge(v("x"), Expr::int(0));
        let out = e.subst(n("x"), v("y") + Expr::int(1));
        assert_eq!(out, Expr::ge(v("y") + Expr::int(1), Expr::int(0)));
    }

    #[test]
    fn leaves_other_variables_alone() {
        let e = Expr::lt(v("x"), v("y"));
        let out = e.subst(n("z"), Expr::int(3));
        assert_eq!(out, e);
    }

    #[test]
    fn simultaneous_substitution_does_not_chain() {
        // [x ↦ y, y ↦ 0] applied to x + y must give y + 0, not 0 + 0.
        let s: Subst = [(n("x"), v("y")), (n("y"), Expr::int(0))]
            .into_iter()
            .collect();
        let out = s.apply(&(v("x") + v("y")));
        assert_eq!(out, v("y") + Expr::int(0));
    }

    #[test]
    fn bound_variables_are_not_substituted() {
        let e = Expr::forall(vec![(n("i"), Sort::Int)], Expr::ge(v("i"), v("lo")));
        let out = e.subst(n("i"), Expr::int(42));
        assert_eq!(out, e);
    }

    #[test]
    fn capture_is_avoided_by_renaming() {
        // (forall i. i <= n)[n ↦ i] must NOT become (forall i. i <= i).
        let e = Expr::forall(vec![(n("i"), Sort::Int)], Expr::le(v("i"), v("n")));
        let out = e.subst(n("n"), v("i"));
        match &out {
            Expr::Forall(binders, body) => {
                let bound = binders[0].0;
                assert_ne!(bound, n("i"), "binder must have been renamed");
                // body is bound <= i
                assert_eq!(**body, Expr::le(Expr::Var(bound), v("i")));
            }
            other => panic!("expected forall, got {other:?}"),
        }
    }

    #[test]
    fn substitution_inside_application() {
        let e = Expr::app(n("select"), vec![v("a"), v("i")]);
        let out = e.subst(n("i"), Expr::int(0));
        assert_eq!(out, Expr::app(n("select"), vec![v("a"), Expr::int(0)]));
    }

    #[test]
    fn substitution_inside_ite() {
        let e = Expr::ite(Expr::gt(v("x"), Expr::int(0)), v("x"), Expr::neg(v("x")));
        let out = e.subst(n("x"), Expr::int(5));
        assert_eq!(
            out,
            Expr::ite(
                Expr::gt(Expr::int(5), Expr::int(0)),
                Expr::int(5),
                Expr::unop(crate::UnOp::Neg, Expr::int(5))
            )
        );
    }

    #[test]
    fn empty_substitution_is_identity() {
        let e = Expr::and(Expr::ge(v("x"), Expr::int(0)), Expr::lt(v("x"), v("n")));
        assert_eq!(Subst::new().apply(&e), e);
    }

    #[test]
    fn subst_through_shadowing_binder_restricts() {
        // (forall x. x > y)[x ↦ 1] leaves the body alone because x is bound.
        let e = Expr::forall(vec![(n("x"), Sort::Int)], Expr::gt(v("x"), v("y")));
        let out = e.subst(n("x"), Expr::int(1));
        assert_eq!(out, e);
    }
}
