//! Pretty printing of refinement expressions.
//!
//! The output uses the same concrete syntax the surface language parser
//! accepts for refinement predicates, so diagnostics can quote predicates
//! back to the user verbatim.

use crate::{BinOp, Constant, Expr, UnOp};
use std::fmt;

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Mod => "%",
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::And => "&&",
            BinOp::Or => "||",
            BinOp::Imp => "=>",
            BinOp::Iff => "<=>",
        };
        write!(f, "{s}")
    }
}

impl fmt::Display for UnOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UnOp::Not => write!(f, "!"),
            UnOp::Neg => write!(f, "-"),
        }
    }
}

impl fmt::Display for Constant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Constant::Int(i) => write!(f, "{i}"),
            Constant::Bool(b) => write!(f, "{b}"),
            Constant::Real(bits) => write!(f, "{}", f64::from_bits(*bits)),
        }
    }
}

/// Binding strength used to decide where parentheses are required.
fn precedence(op: BinOp) -> u8 {
    match op {
        BinOp::Mul | BinOp::Div | BinOp::Mod => 9,
        BinOp::Add | BinOp::Sub => 8,
        BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => 6,
        BinOp::Eq | BinOp::Ne => 5,
        BinOp::And => 4,
        BinOp::Or => 3,
        BinOp::Imp => 2,
        BinOp::Iff => 1,
    }
}

fn fmt_expr(expr: &Expr, parent_prec: u8, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    match expr {
        Expr::Var(name) => write!(f, "{name}"),
        Expr::Const(c) => write!(f, "{c}"),
        Expr::UnOp(op, e) => {
            write!(f, "{op}")?;
            fmt_expr(e, 10, f)
        }
        Expr::BinOp(op, l, r) => {
            let prec = precedence(*op);
            let needs_parens = prec < parent_prec;
            // Implication and iff print right associatively, everything else
            // left associatively.
            let (lp, rp) = if matches!(op, BinOp::Imp | BinOp::Iff) {
                (prec + 1, prec)
            } else {
                (prec, prec + 1)
            };
            if needs_parens {
                write!(f, "(")?;
            }
            fmt_expr(l, lp, f)?;
            write!(f, " {op} ")?;
            fmt_expr(r, rp, f)?;
            if needs_parens {
                write!(f, ")")?;
            }
            Ok(())
        }
        Expr::Ite(c, t, e) => {
            write!(f, "if ")?;
            fmt_expr(c, 0, f)?;
            write!(f, " then ")?;
            fmt_expr(t, 0, f)?;
            write!(f, " else ")?;
            fmt_expr(e, 0, f)
        }
        Expr::App(func, args) => {
            write!(f, "{func}(")?;
            for (i, arg) in args.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                fmt_expr(arg, 0, f)?;
            }
            write!(f, ")")
        }
        Expr::Forall(binders, body) => {
            write!(f, "forall ")?;
            for (i, (name, sort)) in binders.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{name}: {sort}")?;
            }
            write!(f, ". ")?;
            fmt_expr(body, 0, f)
        }
        Expr::Exists(binders, body) => {
            write!(f, "exists ")?;
            for (i, (name, sort)) in binders.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{name}: {sort}")?;
            }
            write!(f, ". ")?;
            fmt_expr(body, 0, f)
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_expr(self, 0, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Name, Sort};

    fn v(s: &str) -> Expr {
        Expr::var(Name::intern(s))
    }

    #[test]
    fn simple_arithmetic_prints_without_parens() {
        let e = v("x") + Expr::int(1);
        assert_eq!(e.to_string(), "x + 1");
    }

    #[test]
    fn precedence_inserts_parentheses_where_needed() {
        let e = (v("a") + v("b")) * v("c");
        assert_eq!(e.to_string(), "(a + b) * c");
        let e = v("a") + v("b") * v("c");
        assert_eq!(e.to_string(), "a + b * c");
    }

    #[test]
    fn comparisons_and_conjunction() {
        let e = Expr::and(Expr::ge(v("v"), v("x")), Expr::ge(v("v"), Expr::int(0)));
        assert_eq!(e.to_string(), "v >= x && v >= 0");
    }

    #[test]
    fn nested_implications_are_unambiguous() {
        let e = Expr::imp(v("p"), Expr::imp(v("q"), v("r")));
        assert_eq!(e.to_string(), "p => q => r");
        let e = Expr::imp(Expr::imp(v("p"), v("q")), v("r"));
        assert_eq!(e.to_string(), "(p => q) => r");
    }

    #[test]
    fn application_and_quantifier_printing() {
        let i = Name::intern("i");
        let e = Expr::forall(
            vec![(i, Sort::Int)],
            Expr::imp(
                Expr::lt(Expr::var(i), Expr::app("len", vec![v("t")])),
                Expr::lt(Expr::app("select", vec![v("t"), Expr::var(i)]), v("n")),
            ),
        );
        assert_eq!(
            e.to_string(),
            "forall i: int. i < len(t) => select(t, i) < n"
        );
    }

    #[test]
    fn negation_printing() {
        let e = Expr::not(Expr::lt(v("x"), Expr::int(0)));
        assert_eq!(e.to_string(), "!(x < 0)");
    }

    #[test]
    fn subtraction_is_left_associative_in_print() {
        let e = (v("a") - v("b")) - v("c");
        assert_eq!(e.to_string(), "a - b - c");
        let e = v("a") - (v("b") - v("c"));
        assert_eq!(e.to_string(), "a - (b - c)");
    }
}
