//! Sorts of the refinement logic and well-sortedness checking.

use crate::{BinOp, Constant, Expr, Name, UnOp};
use std::fmt;

/// The sort (logic-level type) of a refinement expression.
///
/// These mirror the sorts of λ_LR: `int`, `bool` and `loc` (abstract heap
/// locations).  We additionally have `real` for floating point values that
/// the checker treats opaquely, and `array` for the uninterpreted container
/// model used by the program-logic baseline.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Sort {
    /// Mathematical integers (models all of Rust's integer types).
    Int,
    /// Booleans.
    Bool,
    /// Abstract heap locations.
    Loc,
    /// Reals; used for `f32`/`f64` values which refinements treat opaquely.
    Real,
    /// Uninterpreted arrays of integers; only the baseline verifier uses
    /// this sort (through the `select`/`store`/`len` function symbols).
    Array,
}

impl fmt::Display for Sort {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Sort::Int => write!(f, "int"),
            Sort::Bool => write!(f, "bool"),
            Sort::Loc => write!(f, "loc"),
            Sort::Real => write!(f, "real"),
            Sort::Array => write!(f, "array"),
        }
    }
}

/// An error produced when an expression is not well sorted.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SortError {
    /// A variable that is not bound in the sort context.
    UnboundVar(Name),
    /// An operator was applied to an operand of the wrong sort.
    Mismatch {
        /// What the context required.
        expected: Sort,
        /// What the expression actually had.
        found: Sort,
        /// Human-readable description of where the mismatch occurred.
        context: String,
    },
    /// An uninterpreted function was applied to the wrong number of
    /// arguments.
    Arity {
        /// The function symbol.
        func: Name,
        /// Number of arguments expected.
        expected: usize,
        /// Number of arguments found.
        found: usize,
    },
    /// An unknown uninterpreted function symbol.
    UnknownFunction(Name),
}

impl fmt::Display for SortError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SortError::UnboundVar(name) => write!(f, "unbound refinement variable `{name}`"),
            SortError::Mismatch {
                expected,
                found,
                context,
            } => write!(
                f,
                "sort mismatch in {context}: expected {expected}, found {found}"
            ),
            SortError::Arity {
                func,
                expected,
                found,
            } => write!(f, "`{func}` expects {expected} arguments but got {found}"),
            SortError::UnknownFunction(name) => write!(f, "unknown function symbol `{name}`"),
        }
    }
}

impl std::error::Error for SortError {}

/// A sort context: an ordered association of refinement variables to sorts,
/// corresponding to the Δ context of λ_LR restricted to sort bindings.
#[derive(Clone, Debug, Default)]
pub struct SortCtx {
    bindings: Vec<(Name, Sort)>,
    /// Binding positions per name, innermost last.  Keeps [`SortCtx::lookup`]
    /// one hash probe instead of a reverse scan over every binding — the scan
    /// ran once per free variable per hypothesis probe on the session assume
    /// path, where contexts carry one binding per program variable.
    index: std::collections::HashMap<Name, Vec<u32>>,
    /// Signatures of uninterpreted functions: name ↦ (argument sorts, result).
    functions: Vec<(Name, Vec<Sort>, Sort)>,
}

/// `index` is derived from `bindings`, so equality (like the historical
/// derived impl) is determined by the bindings and function signatures alone.
impl PartialEq for SortCtx {
    fn eq(&self, other: &Self) -> bool {
        self.bindings == other.bindings && self.functions == other.functions
    }
}

impl Eq for SortCtx {}

impl SortCtx {
    /// Creates an empty sort context with the built-in container functions
    /// (`select`, `store`, `len`) pre-declared.
    pub fn new() -> SortCtx {
        let mut ctx = SortCtx::default();
        ctx.declare_fn(
            Name::intern("select"),
            vec![Sort::Array, Sort::Int],
            Sort::Int,
        );
        ctx.declare_fn(
            Name::intern("store"),
            vec![Sort::Array, Sort::Int, Sort::Int],
            Sort::Array,
        );
        ctx.declare_fn(Name::intern("len"), vec![Sort::Array], Sort::Int);
        ctx
    }

    /// Binds `name` to `sort`, shadowing any previous binding.
    pub fn push(&mut self, name: Name, sort: Sort) {
        self.index
            .entry(name)
            .or_default()
            .push(self.bindings.len() as u32);
        self.bindings.push((name, sort));
    }

    /// Removes the most recent binding.  Returns it, if any.
    pub fn pop(&mut self) -> Option<(Name, Sort)> {
        let popped = self.bindings.pop()?;
        let positions = self
            .index
            .get_mut(&popped.0)
            .expect("every binding is indexed");
        positions.pop();
        if positions.is_empty() {
            self.index.remove(&popped.0);
        }
        Some(popped)
    }

    /// Looks up the sort of `name`, honouring shadowing.
    pub fn lookup(&self, name: Name) -> Option<Sort> {
        let position = *self.index.get(&name)?.last()?;
        Some(self.bindings[position as usize].1)
    }

    /// Declares an uninterpreted function symbol.
    pub fn declare_fn(&mut self, name: Name, args: Vec<Sort>, ret: Sort) {
        self.functions.push((name, args, ret));
    }

    /// Looks up the signature of an uninterpreted function symbol.
    pub fn lookup_fn(&self, name: Name) -> Option<(&[Sort], Sort)> {
        self.functions
            .iter()
            .rev()
            .find(|(n, _, _)| *n == name)
            .map(|(_, args, ret)| (args.as_slice(), *ret))
    }

    /// Iterates over the variable bindings, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = (Name, Sort)> + '_ {
        self.bindings.iter().copied()
    }

    /// Iterates over the declared uninterpreted function signatures, oldest
    /// first.  Exposed so caches keyed on expressions can fingerprint the
    /// declaration context that determines how those expressions are
    /// interpreted.
    pub fn functions(&self) -> impl Iterator<Item = (Name, &[Sort], Sort)> + '_ {
        self.functions
            .iter()
            .map(|(name, args, ret)| (*name, args.as_slice(), *ret))
    }

    /// Number of variable bindings.
    pub fn len(&self) -> usize {
        self.bindings.len()
    }

    /// True if there are no variable bindings.
    pub fn is_empty(&self) -> bool {
        self.bindings.is_empty()
    }
}

impl Expr {
    /// Computes the sort of this expression in `ctx`, or reports the first
    /// sort error encountered.
    ///
    /// Sorting is called on every hypothesis conjunction the SMT pipeline
    /// preprocesses, so the hot path must not allocate: quantifier binders
    /// are threaded through a scratch overlay vector instead of cloning the
    /// context, and error-message strings are only built on failure.
    pub fn sort_of(&self, ctx: &SortCtx) -> Result<Sort, SortError> {
        sort_of_rec(self, ctx, &mut Vec::new())
    }
}

fn expect(
    expr: &Expr,
    ctx: &SortCtx,
    bound: &mut Vec<(Name, Sort)>,
    expected: Sort,
    context: impl FnOnce() -> String,
) -> Result<(), SortError> {
    let found = sort_of_rec(expr, ctx, bound)?;
    if found == expected {
        Ok(())
    } else {
        Err(SortError::Mismatch {
            expected,
            found,
            context: context(),
        })
    }
}

/// `bound` overlays `ctx` with quantifier binders in scope, innermost last.
fn sort_of_rec(
    expr: &Expr,
    ctx: &SortCtx,
    bound: &mut Vec<(Name, Sort)>,
) -> Result<Sort, SortError> {
    match expr {
        Expr::Const(Constant::Int(_)) => Ok(Sort::Int),
        Expr::Const(Constant::Bool(_)) => Ok(Sort::Bool),
        Expr::Const(Constant::Real(_)) => Ok(Sort::Real),
        Expr::Var(name) => bound
            .iter()
            .rev()
            .find(|(n, _)| n == name)
            .map(|(_, s)| *s)
            .or_else(|| ctx.lookup(*name))
            .ok_or(SortError::UnboundVar(*name)),
        Expr::UnOp(op, arg) => match op {
            UnOp::Not => {
                expect(arg, ctx, bound, Sort::Bool, || "negation".to_owned())?;
                Ok(Sort::Bool)
            }
            UnOp::Neg => {
                expect(arg, ctx, bound, Sort::Int, || {
                    "arithmetic negation".to_owned()
                })?;
                Ok(Sort::Int)
            }
        },
        Expr::BinOp(op, lhs, rhs) => match op {
            BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Mod => {
                expect(lhs, ctx, bound, Sort::Int, || {
                    format!("left operand of {op}")
                })?;
                expect(rhs, ctx, bound, Sort::Int, || {
                    format!("right operand of {op}")
                })?;
                Ok(Sort::Int)
            }
            BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
                expect(lhs, ctx, bound, Sort::Int, || {
                    format!("left operand of {op}")
                })?;
                expect(rhs, ctx, bound, Sort::Int, || {
                    format!("right operand of {op}")
                })?;
                Ok(Sort::Bool)
            }
            BinOp::Eq | BinOp::Ne => {
                let ls = sort_of_rec(lhs, ctx, bound)?;
                let rs = sort_of_rec(rhs, ctx, bound)?;
                if ls != rs {
                    return Err(SortError::Mismatch {
                        expected: ls,
                        found: rs,
                        context: format!("operands of {op}"),
                    });
                }
                Ok(Sort::Bool)
            }
            BinOp::And | BinOp::Or | BinOp::Imp | BinOp::Iff => {
                expect(lhs, ctx, bound, Sort::Bool, || {
                    format!("left operand of {op}")
                })?;
                expect(rhs, ctx, bound, Sort::Bool, || {
                    format!("right operand of {op}")
                })?;
                Ok(Sort::Bool)
            }
        },
        Expr::Ite(cond, then, els) => {
            expect(cond, ctx, bound, Sort::Bool, || {
                "if-then-else condition".to_owned()
            })?;
            let ts = sort_of_rec(then, ctx, bound)?;
            let es = sort_of_rec(els, ctx, bound)?;
            if ts != es {
                return Err(SortError::Mismatch {
                    expected: ts,
                    found: es,
                    context: "branches of if-then-else".to_owned(),
                });
            }
            Ok(ts)
        }
        Expr::App(func, args) => {
            let Some((arg_sorts, ret)) = ctx.lookup_fn(*func) else {
                return Err(SortError::UnknownFunction(*func));
            };
            if arg_sorts.len() != args.len() {
                return Err(SortError::Arity {
                    func: *func,
                    expected: arg_sorts.len(),
                    found: args.len(),
                });
            }
            for (arg, expected) in args.iter().zip(arg_sorts.iter().copied()) {
                expect(arg, ctx, bound, expected, || format!("argument of {func}"))?;
            }
            Ok(ret)
        }
        Expr::Forall(binders, body) | Expr::Exists(binders, body) => {
            let depth = bound.len();
            bound.extend(binders.iter().copied());
            let result = expect(body, ctx, bound, Sort::Bool, || {
                "quantifier body".to_owned()
            });
            bound.truncate(depth);
            result?;
            Ok(Sort::Bool)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn int_var(s: &str) -> Expr {
        Expr::var(Name::intern(s))
    }

    fn ctx_with(vars: &[(&str, Sort)]) -> SortCtx {
        let mut ctx = SortCtx::new();
        for (name, sort) in vars {
            ctx.push(Name::intern(name), *sort);
        }
        ctx
    }

    #[test]
    fn arithmetic_is_int_sorted() {
        let ctx = ctx_with(&[("x", Sort::Int)]);
        let e = int_var("x") + Expr::int(1);
        assert_eq!(e.sort_of(&ctx).unwrap(), Sort::Int);
    }

    #[test]
    fn comparison_is_bool_sorted() {
        let ctx = ctx_with(&[("x", Sort::Int)]);
        let e = Expr::lt(int_var("x"), Expr::int(10));
        assert_eq!(e.sort_of(&ctx).unwrap(), Sort::Bool);
    }

    #[test]
    fn unbound_variable_is_reported() {
        let ctx = SortCtx::new();
        let e = int_var("missing");
        assert_eq!(
            e.sort_of(&ctx),
            Err(SortError::UnboundVar(Name::intern("missing")))
        );
    }

    #[test]
    fn boolean_operand_of_plus_is_a_mismatch() {
        let ctx = ctx_with(&[("b", Sort::Bool)]);
        let e = Expr::var(Name::intern("b")) + Expr::int(1);
        assert!(matches!(e.sort_of(&ctx), Err(SortError::Mismatch { .. })));
    }

    #[test]
    fn equality_requires_same_sorts() {
        let ctx = ctx_with(&[("b", Sort::Bool), ("x", Sort::Int)]);
        let ok = Expr::eq(int_var("x"), Expr::int(0));
        assert_eq!(ok.sort_of(&ctx).unwrap(), Sort::Bool);
        let bad = Expr::eq(Expr::var(Name::intern("b")), Expr::int(0));
        assert!(bad.sort_of(&ctx).is_err());
    }

    #[test]
    fn shadowing_uses_innermost_binding() {
        let mut ctx = SortCtx::new();
        let x = Name::intern("x");
        ctx.push(x, Sort::Int);
        ctx.push(x, Sort::Bool);
        assert_eq!(ctx.lookup(x), Some(Sort::Bool));
        ctx.pop();
        assert_eq!(ctx.lookup(x), Some(Sort::Int));
    }

    /// Pins the shadowed-rebind semantics the indexed lookup must preserve:
    /// popping a shadow re-exposes the outer binding, re-pushing shadows it
    /// again, and draining the stack unbinds the name entirely — with an
    /// interleaved second name left untouched throughout.
    #[test]
    fn shadowed_rebind_after_pop_restores_outer_binding() {
        let mut ctx = SortCtx::new();
        let x = Name::intern("x");
        let y = Name::intern("y");
        ctx.push(x, Sort::Int);
        ctx.push(y, Sort::Array);
        ctx.push(x, Sort::Bool);
        assert_eq!(ctx.lookup(x), Some(Sort::Bool));
        assert_eq!(ctx.lookup(y), Some(Sort::Array));
        assert_eq!(ctx.pop(), Some((x, Sort::Bool)));
        assert_eq!(ctx.lookup(x), Some(Sort::Int), "outer binding re-exposed");
        ctx.push(x, Sort::Loc);
        assert_eq!(ctx.lookup(x), Some(Sort::Loc), "rebind shadows again");
        assert_eq!(ctx.pop(), Some((x, Sort::Loc)));
        assert_eq!(ctx.lookup(x), Some(Sort::Int));
        assert_eq!(ctx.pop(), Some((y, Sort::Array)));
        assert_eq!(ctx.lookup(y), None, "drained name is unbound");
        assert_eq!(ctx.pop(), Some((x, Sort::Int)));
        assert_eq!(ctx.lookup(x), None);
        assert!(ctx.is_empty());
    }

    #[test]
    fn select_and_len_are_predeclared() {
        let mut ctx = SortCtx::new();
        let a = Name::intern("a");
        ctx.push(a, Sort::Array);
        let e = Expr::app(Name::intern("select"), vec![Expr::var(a), Expr::int(0)]);
        assert_eq!(e.sort_of(&ctx).unwrap(), Sort::Int);
        let l = Expr::app(Name::intern("len"), vec![Expr::var(a)]);
        assert_eq!(l.sort_of(&ctx).unwrap(), Sort::Int);
    }

    #[test]
    fn wrong_arity_is_reported() {
        let mut ctx = SortCtx::new();
        let a = Name::intern("a");
        ctx.push(a, Sort::Array);
        let e = Expr::app(Name::intern("len"), vec![Expr::var(a), Expr::int(0)]);
        assert!(matches!(e.sort_of(&ctx), Err(SortError::Arity { .. })));
    }

    #[test]
    fn quantifier_binds_its_variables() {
        let ctx = SortCtx::new();
        let i = Name::intern("i");
        let body = Expr::ge(Expr::var(i), Expr::int(0));
        let e = Expr::forall(vec![(i, Sort::Int)], body);
        assert_eq!(e.sort_of(&ctx).unwrap(), Sort::Bool);
    }

    #[test]
    fn quantifier_body_must_be_bool() {
        let ctx = SortCtx::new();
        let i = Name::intern("i");
        let e = Expr::forall(vec![(i, Sort::Int)], Expr::var(i) + Expr::int(1));
        assert!(e.sort_of(&ctx).is_err());
    }

    #[test]
    fn ite_branches_must_agree() {
        let ctx = ctx_with(&[("c", Sort::Bool)]);
        let good = Expr::ite(Expr::var(Name::intern("c")), Expr::int(1), Expr::int(2));
        assert_eq!(good.sort_of(&ctx).unwrap(), Sort::Int);
        let bad = Expr::ite(Expr::var(Name::intern("c")), Expr::int(1), Expr::bool(true));
        assert!(bad.sort_of(&ctx).is_err());
    }

    #[test]
    fn sort_display_forms() {
        assert_eq!(Sort::Int.to_string(), "int");
        assert_eq!(Sort::Bool.to_string(), "bool");
        assert_eq!(Sort::Loc.to_string(), "loc");
    }
}
