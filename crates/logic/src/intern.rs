//! A tiny global string interner used for logical variable and function
//! names.
//!
//! Interned names are cheap to copy, hash and compare, which matters because
//! the constraint generator and the solvers create and substitute names very
//! frequently.

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Mutex, OnceLock};

/// An interned symbol naming a refinement variable, location or
/// uninterpreted function.
///
/// Two [`Name`]s are equal iff they were interned from the same string.
/// Freshly generated names (via [`Name::fresh`]) are guaranteed to be
/// distinct from every previously interned name.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Name(u32);

struct Interner {
    names: Vec<&'static str>,
    table: HashMap<&'static str, u32>,
}

fn interner() -> &'static Mutex<Interner> {
    static INTERNER: OnceLock<Mutex<Interner>> = OnceLock::new();
    INTERNER.get_or_init(|| {
        Mutex::new(Interner {
            names: Vec::new(),
            table: HashMap::new(),
        })
    })
}

static FRESH_COUNTER: AtomicU32 = AtomicU32::new(0);

impl Name {
    /// Interns `s`, returning the canonical [`Name`] for that string.
    pub fn intern(s: &str) -> Name {
        let mut interner = interner().lock().expect("interner poisoned");
        if let Some(&idx) = interner.table.get(s) {
            return Name(idx);
        }
        let leaked: &'static str = Box::leak(s.to_owned().into_boxed_str());
        let idx = interner.names.len() as u32;
        interner.names.push(leaked);
        interner.table.insert(leaked, idx);
        Name(idx)
    }

    /// Returns a name, based on `prefix`, that has never been returned by
    /// any previous call to [`Name::intern`] or [`Name::fresh`].
    ///
    /// The generated name contains a `%` character, which the surface
    /// language lexer rejects in identifiers, so fresh names can never be
    /// captured by user-written programs.
    pub fn fresh(prefix: &str) -> Name {
        loop {
            let n = FRESH_COUNTER.fetch_add(1, Ordering::Relaxed);
            let candidate = format!("{prefix}%{n}");
            let mut interner = interner().lock().expect("interner poisoned");
            if interner.table.contains_key(candidate.as_str()) {
                continue;
            }
            let leaked: &'static str = Box::leak(candidate.into_boxed_str());
            let idx = interner.names.len() as u32;
            interner.names.push(leaked);
            interner.table.insert(leaked, idx);
            return Name(idx);
        }
    }

    /// Returns the string this name was interned from.
    pub fn as_str(self) -> &'static str {
        let interner = interner().lock().expect("interner poisoned");
        interner.names[self.0 as usize]
    }
}

impl fmt::Debug for Name {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.as_str())
    }
}

impl fmt::Display for Name {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.as_str())
    }
}

impl From<&str> for Name {
    fn from(s: &str) -> Self {
        Name::intern(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn interning_is_idempotent() {
        let a = Name::intern("alpha");
        let b = Name::intern("alpha");
        assert_eq!(a, b);
        assert_eq!(a.as_str(), "alpha");
    }

    #[test]
    fn distinct_strings_get_distinct_names() {
        assert_ne!(Name::intern("x"), Name::intern("y"));
    }

    #[test]
    fn fresh_names_are_unique() {
        let names: HashSet<Name> = (0..100).map(|_| Name::fresh("k")).collect();
        assert_eq!(names.len(), 100);
    }

    #[test]
    fn fresh_names_do_not_collide_with_interned() {
        let f = Name::fresh("v");
        let again = Name::intern(f.as_str());
        // Interning the printed form of a fresh name yields the same name,
        // not a new one.
        assert_eq!(f, again);
        let other = Name::fresh("v");
        assert_ne!(f, other);
    }

    #[test]
    fn display_and_debug_agree() {
        let n = Name::intern("len");
        assert_eq!(format!("{n}"), format!("{n:?}"));
    }

    #[test]
    fn from_str_conversion() {
        let n: Name = "converted".into();
        assert_eq!(n, Name::intern("converted"));
    }
}
