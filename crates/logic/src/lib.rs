//! Refinement logic for the Flux reproduction.
//!
//! This crate defines the *refinement logic* used throughout the workspace:
//! sorts, logical expressions (terms and predicates), substitution, free
//! variables, well-sortedness checking, light-weight simplification and
//! pretty printing.
//!
//! The logic mirrors the refinement language of λ_LR from the paper
//! "Flux: Liquid Types for Rust": variables, integer and boolean constants,
//! equality, boolean connectives and linear integer arithmetic.  On top of
//! that we add a few constructs required by the rest of the system:
//!
//! * uninterpreted function applications ([`Expr::App`]), used by the
//!   program-logic baseline to model container contents (`select`, `len`),
//! * `if-then-else` terms ([`Expr::Ite`]),
//! * universal and existential quantifiers ([`Expr::Forall`] /
//!   [`Expr::Exists`]), used only by the baseline verifier (Flux itself
//!   emits quantifier-free verification conditions, which is the point of
//!   the paper).
//!
//! # Example
//!
//! ```
//! use flux_logic::{Expr, Name, Sort, SortCtx};
//!
//! let n = Name::intern("n");
//! // n >= 0 && n + 1 > n
//! let pred = Expr::and(
//!     Expr::ge(Expr::var(n), Expr::int(0)),
//!     Expr::gt(Expr::var(n) + Expr::int(1), Expr::var(n)),
//! );
//! let mut ctx = SortCtx::new();
//! ctx.push(n, Sort::Int);
//! assert_eq!(pred.sort_of(&ctx).unwrap(), Sort::Bool);
//! ```

#![warn(missing_docs)]

mod audit;
mod eval;
mod expr;
mod fmt;
mod hcons;
mod intern;
mod simplify;
mod sort;
mod subst;
mod util;

pub use audit::{audit_tier, lint, AuditTier, LintError};
pub use eval::{evaluate, Value};
pub use expr::{BinOp, Constant, Expr, UnOp};
pub use hcons::{
    flush_hcons_memos, hcons_contentions, hcons_memo_evictions, hcons_memo_high_watermark,
    interned_nodes, set_hcons_memo_capacity, ExprId,
};
pub use intern::Name;
pub use simplify::simplify;
pub use sort::{Sort, SortCtx, SortError};
pub use subst::{AlphaRenamer, Subst};
pub use util::{env_parse, lock_recover};

/// A convenience alias: predicates are just boolean-sorted expressions.
pub type Pred = Expr;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crate_level_example_compiles() {
        let n = Name::intern("n");
        let pred = Expr::and(
            Expr::ge(Expr::var(n), Expr::int(0)),
            Expr::gt(Expr::var(n) + Expr::int(1), Expr::var(n)),
        );
        let mut ctx = SortCtx::new();
        ctx.push(n, Sort::Int);
        assert_eq!(pred.sort_of(&ctx).unwrap(), Sort::Bool);
    }
}
