//! Light-weight, validity-preserving simplification of refinement
//! expressions.
//!
//! The constraint generator produces many trivially true or constant
//! sub-formulas (e.g. `0 = 0`, `true => p`).  Simplifying them before they
//! reach the Horn solver and the SMT solver keeps both fast and keeps error
//! messages readable.

use crate::{BinOp, Constant, Expr, UnOp};

/// Simplifies `expr` by constant folding and unit laws.
///
/// The result is logically equivalent to the input.  Simplification is not
/// a decision procedure; it only folds constants and applies local algebraic
/// identities.
pub fn simplify(expr: &Expr) -> Expr {
    match expr {
        Expr::Var(_) | Expr::Const(_) => expr.clone(),
        Expr::UnOp(op, e) => {
            let e = simplify(e);
            match (op, &e) {
                (UnOp::Not, Expr::Const(Constant::Bool(b))) => Expr::bool(!*b),
                (UnOp::Not, Expr::UnOp(UnOp::Not, inner)) => (**inner).clone(),
                (UnOp::Neg, Expr::Const(Constant::Int(i))) => Expr::int(-i),
                _ => Expr::unop(*op, e),
            }
        }
        Expr::BinOp(op, l, r) => simplify_binop(*op, simplify(l), simplify(r)),
        Expr::Ite(c, t, e) => {
            let c = simplify(c);
            let t = simplify(t);
            let e = simplify(e);
            match &c {
                Expr::Const(Constant::Bool(true)) => t,
                Expr::Const(Constant::Bool(false)) => e,
                _ if t == e => t,
                _ => Expr::ite(c, t, e),
            }
        }
        Expr::App(f, args) => Expr::App(*f, args.iter().map(simplify).collect()),
        Expr::Forall(binders, body) => {
            let body = simplify(body);
            if body.is_trivially_true() {
                Expr::tt()
            } else {
                Expr::Forall(binders.clone(), Box::new(body))
            }
        }
        Expr::Exists(binders, body) => {
            let body = simplify(body);
            if body.is_trivially_false() {
                Expr::ff()
            } else {
                Expr::Exists(binders.clone(), Box::new(body))
            }
        }
    }
}

fn int_of(e: &Expr) -> Option<i128> {
    match e {
        Expr::Const(Constant::Int(i)) => Some(*i),
        _ => None,
    }
}

fn bool_of(e: &Expr) -> Option<bool> {
    match e {
        Expr::Const(Constant::Bool(b)) => Some(*b),
        _ => None,
    }
}

fn simplify_binop(op: BinOp, l: Expr, r: Expr) -> Expr {
    // Constant folding for integer arithmetic.
    if let (Some(a), Some(b)) = (int_of(&l), int_of(&r)) {
        match op {
            BinOp::Add => return Expr::int(a + b),
            BinOp::Sub => return Expr::int(a - b),
            BinOp::Mul => return Expr::int(a * b),
            BinOp::Div if b != 0 => return Expr::int(a.div_euclid(b)),
            BinOp::Mod if b != 0 => return Expr::int(a.rem_euclid(b)),
            BinOp::Eq => return Expr::bool(a == b),
            BinOp::Ne => return Expr::bool(a != b),
            BinOp::Lt => return Expr::bool(a < b),
            BinOp::Le => return Expr::bool(a <= b),
            BinOp::Gt => return Expr::bool(a > b),
            BinOp::Ge => return Expr::bool(a >= b),
            _ => {}
        }
    }
    // Constant folding for booleans.
    if let (Some(a), Some(b)) = (bool_of(&l), bool_of(&r)) {
        match op {
            BinOp::And => return Expr::bool(a && b),
            BinOp::Or => return Expr::bool(a || b),
            BinOp::Imp => return Expr::bool(!a || b),
            BinOp::Iff | BinOp::Eq => return Expr::bool(a == b),
            BinOp::Ne => return Expr::bool(a != b),
            _ => {}
        }
    }
    match op {
        BinOp::And => Expr::and(l, r),
        BinOp::Or => Expr::or(l, r),
        BinOp::Imp => Expr::imp(l, r),
        BinOp::Add => {
            if int_of(&l) == Some(0) {
                r
            } else if int_of(&r) == Some(0) {
                l
            } else {
                Expr::binop(op, l, r)
            }
        }
        BinOp::Sub => {
            if int_of(&r) == Some(0) {
                l
            } else if l == r {
                Expr::int(0)
            } else {
                Expr::binop(op, l, r)
            }
        }
        BinOp::Mul => {
            if int_of(&l) == Some(1) {
                r
            } else if int_of(&r) == Some(1) {
                l
            } else if int_of(&l) == Some(0) || int_of(&r) == Some(0) {
                Expr::int(0)
            } else {
                Expr::binop(op, l, r)
            }
        }
        BinOp::Eq | BinOp::Le | BinOp::Ge if l == r && !l.has_quantifier() => Expr::tt(),
        BinOp::Lt | BinOp::Gt | BinOp::Ne if l == r && !l.has_quantifier() => Expr::ff(),
        _ => Expr::binop(op, l, r),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Name;

    fn v(s: &str) -> Expr {
        Expr::var(Name::intern(s))
    }

    #[test]
    fn folds_integer_arithmetic() {
        let e = Expr::int(1) + Expr::int(2) + Expr::int(3);
        assert_eq!(simplify(&e), Expr::int(6));
    }

    #[test]
    fn folds_comparisons_of_constants() {
        let e = Expr::le(Expr::int(1) + Expr::int(2), Expr::int(10));
        assert_eq!(simplify(&e), Expr::tt());
        let e = Expr::gt(Expr::int(0), Expr::int(5));
        assert_eq!(simplify(&e), Expr::ff());
    }

    #[test]
    fn additive_and_multiplicative_units() {
        assert_eq!(simplify(&(v("x") + Expr::int(0))), v("x"));
        assert_eq!(simplify(&(Expr::int(0) + v("x"))), v("x"));
        assert_eq!(simplify(&(v("x") * Expr::int(1))), v("x"));
        assert_eq!(simplify(&(v("x") * Expr::int(0))), Expr::int(0));
    }

    #[test]
    fn subtraction_of_equal_terms_is_zero() {
        assert_eq!(simplify(&(v("x") - v("x"))), Expr::int(0));
    }

    #[test]
    fn reflexive_comparisons_fold() {
        assert_eq!(simplify(&Expr::le(v("x"), v("x"))), Expr::tt());
        assert_eq!(simplify(&Expr::lt(v("x"), v("x"))), Expr::ff());
        assert_eq!(simplify(&Expr::eq(v("x"), v("x"))), Expr::tt());
    }

    #[test]
    fn implication_with_constant_antecedent() {
        let e = Expr::binop(BinOp::Imp, Expr::bool(true), Expr::ge(v("x"), Expr::int(0)));
        assert_eq!(simplify(&e), Expr::ge(v("x"), Expr::int(0)));
        let e = Expr::binop(BinOp::Imp, Expr::bool(false), Expr::ff());
        assert_eq!(simplify(&e), Expr::tt());
    }

    #[test]
    fn ite_with_constant_condition() {
        let e = Expr::ite(Expr::bool(true), v("a"), v("b"));
        assert_eq!(simplify(&e), v("a"));
        let e = Expr::ite(Expr::bool(false), v("a"), v("b"));
        assert_eq!(simplify(&e), v("b"));
        let e = Expr::ite(v("c"), v("a"), v("a"));
        assert_eq!(simplify(&e), v("a"));
    }

    #[test]
    fn trivial_forall_collapses() {
        let i = Name::intern("i");
        let e = Expr::Forall(
            vec![(i, crate::Sort::Int)],
            Box::new(Expr::eq(Expr::var(i), Expr::var(i))),
        );
        assert_eq!(simplify(&e), Expr::tt());
    }

    #[test]
    fn division_by_zero_is_not_folded() {
        let e = Expr::binop(BinOp::Div, Expr::int(1), Expr::int(0));
        assert_eq!(simplify(&e), e);
    }

    #[test]
    fn nested_negation_folds() {
        let e = Expr::unop(UnOp::Not, Expr::unop(UnOp::Not, v("p")));
        assert_eq!(simplify(&e), v("p"));
        let e = Expr::unop(UnOp::Not, Expr::bool(false));
        assert_eq!(simplify(&e), Expr::tt());
    }

    #[test]
    fn simplification_is_idempotent_on_samples() {
        let samples = vec![
            Expr::imp(
                Expr::ge(v("n"), Expr::int(0)),
                Expr::ge(v("n") + Expr::int(1), Expr::int(0)),
            ),
            Expr::and(Expr::tt(), Expr::le(v("i"), v("n"))),
            Expr::ite(Expr::lt(v("x"), Expr::int(0)), Expr::neg(v("x")), v("x")),
        ];
        for s in samples {
            let once = simplify(&s);
            let twice = simplify(&once);
            assert_eq!(once, twice);
        }
    }
}
