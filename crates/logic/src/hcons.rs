//! Hash-consed expression nodes.
//!
//! The incremental query engine needs two things from the logic layer:
//! *stable, cheap identifiers* for expressions (so validity verdicts can be
//! cached across fixpoint iterations under a small key instead of a deep
//! tree comparison), and *subterm sharing* (so repeated substitution and
//! simplification of the same terms — which the weakening loop performs on
//! every iteration — does not re-allocate and re-traverse identical trees).
//!
//! [`ExprId`] provides both: interning an [`Expr`] walks the tree once and
//! maps every distinct subterm to a `u32` id in a global append-only table,
//! so two structurally equal expressions always receive the same id, no
//! matter where or when they were built.  On top of the shared table this
//! module offers memoized substitution ([`ExprId::subst`]) and memoized
//! simplification ([`ExprId::simplified`]); both agree exactly with their
//! tree-walking counterparts ([`crate::Subst::apply`] and
//! [`crate::simplify`]).

use crate::eval::same_sort;
use crate::util::lock_recover;
use crate::{simplify, BinOp, Constant, Expr, Name, Sort, SortCtx, SortError, Subst, UnOp, Value};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};

/// The identifier of a hash-consed expression.
///
/// Two [`ExprId`]s are equal iff the expressions they were interned from are
/// structurally equal.  Ids are stable for the lifetime of the process,
/// which makes them usable as persistent cache keys.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ExprId(u32);

/// A shallow expression node whose children are interned ids.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
enum Node {
    Var(Name),
    Const(Constant),
    UnOp(UnOp, ExprId),
    BinOp(BinOp, ExprId, ExprId),
    Ite(ExprId, ExprId, ExprId),
    App(Name, Box<[ExprId]>),
    Forall(Box<[(Name, Sort)]>, ExprId),
    Exists(Box<[(Name, Sort)]>, ExprId),
}

#[derive(Default)]
struct Table {
    nodes: Vec<Node>,
    index: HashMap<Node, u32>,
    /// Global memo for [`ExprId::simplified`]: simplification is a pure
    /// function of the subterm, so results stay valid forever.
    simplify_memo: HashMap<u32, u32>,
    /// Global memos for the structural predicates ([`ExprId::has_quantifier`]
    /// and [`ExprId::has_app`]); pure, so valid forever.
    quant_memo: HashMap<u32, bool>,
    app_memo: HashMap<u32, bool>,
}

/// Cap on the combined size of the table's three memo maps (0 = unlimited);
/// see [`set_hcons_memo_capacity`].  The `nodes`/`index` maps themselves are
/// *never* evicted: id stability for the process lifetime is what makes
/// [`ExprId`]s usable as persistent cache keys, so memory governance here is
/// limited to the (freely recomputable) memos.
static MEMO_CAP: AtomicUsize = AtomicUsize::new(0);
/// Total memo entries evicted so far (monotone; callers read deltas).
static MEMO_EVICTIONS: AtomicU64 = AtomicU64::new(0);
/// Largest combined memo size observed (before any eviction).
static MEMO_HIGH_WATERMARK: AtomicUsize = AtomicUsize::new(0);
/// Times a thread found the interner's table lock held by another thread
/// (monotone; callers read deltas).  The interner is a single global mutex
/// by design — id stability requires one `nodes` vector — so this counter
/// is the convoying audit for the parallel schedulers: if it climbs under
/// the 8-thread cache-stress storms, interning (not solving) is the
/// bottleneck and the table is the next sharding candidate.
static TABLE_CONTENTIONS: AtomicU64 = AtomicU64::new(0);

/// Caps the combined entry count of the hash-cons table's memo maps
/// (simplification and the structural predicates).  When the combined size
/// exceeds the cap after an operation, all three memos are flushed in one
/// region reclaim — entries are pure functions of their subterm, so the only
/// cost is recomputation.  `None` (the default) disables the cap.
pub fn set_hcons_memo_capacity(cap: Option<usize>) {
    MEMO_CAP.store(cap.unwrap_or(0), Ordering::Relaxed);
}

/// Total number of hash-cons memo entries evicted so far.  Monotone;
/// callers attribute evictions to a solve by differencing.
pub fn hcons_memo_evictions() -> u64 {
    MEMO_EVICTIONS.load(Ordering::Relaxed)
}

/// Largest combined memo size ever observed (diagnostic: how much memory
/// the memos would use without a cap).
pub fn hcons_memo_high_watermark() -> usize {
    MEMO_HIGH_WATERMARK.load(Ordering::Relaxed)
}

/// Flushes the hash-cons table's three memo maps immediately, regardless of
/// any cap — the region-reclaim hook a long-running service calls between
/// requests to drop per-request memo garbage.  The `nodes`/`index` maps are
/// deliberately untouched: [`ExprId`] stability is soundness-critical (ids
/// key the process-global verdict cache), so node growth is only *reported*
/// (via [`interned_nodes`]) and watermark-checked by the caller, never
/// reclaimed.  Returns the number of entries flushed.
pub fn flush_hcons_memos() -> usize {
    let mut table = table();
    let total = table.simplify_memo.len() + table.quant_memo.len() + table.app_memo.len();
    table.simplify_memo.clear();
    table.quant_memo.clear();
    table.app_memo.clear();
    MEMO_EVICTIONS.fetch_add(total as u64, Ordering::Relaxed);
    total
}

/// Times any thread found the interner's table lock held by another thread,
/// over the process lifetime.  Monotone; callers difference it around a
/// solve (or a stress storm) to audit interner lock hold times.
pub fn hcons_contentions() -> u64 {
    TABLE_CONTENTIONS.load(Ordering::Relaxed)
}

fn table() -> MutexGuard<'static, Table> {
    static TABLE: OnceLock<Mutex<Table>> = OnceLock::new();
    let mutex = TABLE.get_or_init(|| {
        // Seed the memo cap from the environment once, at first use; an
        // explicit `set_hcons_memo_capacity` call still wins later.
        let cap = crate::util::env_parse("FLUX_CACHE_CAP", 0usize);
        if cap != 0 {
            MEMO_CAP.store(cap, Ordering::Relaxed);
        }
        Mutex::new(Table::default())
    });
    // Audit, not avoidance: count acquisitions that would block, then take
    // the lock as before (recovering from poisoning either way).
    match mutex.try_lock() {
        Ok(guard) => guard,
        Err(std::sync::TryLockError::WouldBlock) => {
            TABLE_CONTENTIONS.fetch_add(1, Ordering::Relaxed);
            lock_recover(mutex)
        }
        Err(std::sync::TryLockError::Poisoned(_)) => lock_recover(mutex),
    }
}

impl Table {
    fn intern_node(&mut self, node: Node) -> ExprId {
        if let Some(&idx) = self.index.get(&node) {
            return ExprId(idx);
        }
        let idx = self.nodes.len() as u32;
        self.nodes.push(node.clone());
        self.index.insert(node, idx);
        ExprId(idx)
    }

    fn intern_expr(&mut self, expr: &Expr) -> ExprId {
        let node = match expr {
            Expr::Var(name) => Node::Var(*name),
            Expr::Const(c) => Node::Const(*c),
            Expr::UnOp(op, e) => Node::UnOp(*op, self.intern_expr(e)),
            Expr::BinOp(op, l, r) => Node::BinOp(*op, self.intern_expr(l), self.intern_expr(r)),
            Expr::Ite(c, t, e) => Node::Ite(
                self.intern_expr(c),
                self.intern_expr(t),
                self.intern_expr(e),
            ),
            Expr::App(f, args) => Node::App(*f, args.iter().map(|a| self.intern_expr(a)).collect()),
            Expr::Forall(binders, body) => {
                Node::Forall(binders.iter().copied().collect(), self.intern_expr(body))
            }
            Expr::Exists(binders, body) => {
                Node::Exists(binders.iter().copied().collect(), self.intern_expr(body))
            }
        };
        self.intern_node(node)
    }

    fn rebuild(&self, id: ExprId) -> Expr {
        match &self.nodes[id.0 as usize] {
            Node::Var(name) => Expr::Var(*name),
            Node::Const(c) => Expr::Const(*c),
            Node::UnOp(op, e) => Expr::UnOp(*op, Box::new(self.rebuild(*e))),
            Node::BinOp(op, l, r) => {
                Expr::BinOp(*op, Box::new(self.rebuild(*l)), Box::new(self.rebuild(*r)))
            }
            Node::Ite(c, t, e) => Expr::Ite(
                Box::new(self.rebuild(*c)),
                Box::new(self.rebuild(*t)),
                Box::new(self.rebuild(*e)),
            ),
            Node::App(f, args) => Expr::App(*f, args.iter().map(|a| self.rebuild(*a)).collect()),
            Node::Forall(binders, body) => {
                Expr::Forall(binders.to_vec(), Box::new(self.rebuild(*body)))
            }
            Node::Exists(binders, body) => {
                Expr::Exists(binders.to_vec(), Box::new(self.rebuild(*body)))
            }
        }
    }

    /// DAG substitution.  `memo` maps already-substituted ids to their
    /// results, so shared subterms are processed once per call.  Quantified
    /// subterms fall back to the (capture-avoiding) tree substitution on the
    /// rebuilt subtree: they are rare, and the fresh-name renaming performed
    /// there is inherently not memoizable.
    fn subst_rec(
        &mut self,
        id: ExprId,
        subst: &Subst,
        memo: &mut HashMap<ExprId, ExprId>,
    ) -> ExprId {
        if let Some(&out) = memo.get(&id) {
            return out;
        }
        let node = self.nodes[id.0 as usize].clone();
        let out = match node {
            Node::Var(name) => match subst.get(name) {
                Some(replacement) => {
                    let replacement = replacement.clone();
                    self.intern_expr(&replacement)
                }
                None => id,
            },
            Node::Const(_) => id,
            Node::UnOp(op, e) => {
                let e = self.subst_rec(e, subst, memo);
                self.intern_node(Node::UnOp(op, e))
            }
            Node::BinOp(op, l, r) => {
                let l = self.subst_rec(l, subst, memo);
                let r = self.subst_rec(r, subst, memo);
                self.intern_node(Node::BinOp(op, l, r))
            }
            Node::Ite(c, t, e) => {
                let c = self.subst_rec(c, subst, memo);
                let t = self.subst_rec(t, subst, memo);
                let e = self.subst_rec(e, subst, memo);
                self.intern_node(Node::Ite(c, t, e))
            }
            Node::App(f, args) => {
                let args = args
                    .iter()
                    .map(|a| self.subst_rec(*a, subst, memo))
                    .collect();
                self.intern_node(Node::App(f, args))
            }
            Node::Forall(..) | Node::Exists(..) => {
                let tree = subst.apply(&self.rebuild(id));
                self.intern_expr(&tree)
            }
        };
        memo.insert(id, out);
        out
    }

    fn simplify_rec(&mut self, id: ExprId) -> ExprId {
        if let Some(&out) = self.simplify_memo.get(&id.0) {
            return ExprId(out);
        }
        let out = self.intern_expr(&simplify(&self.rebuild(id)));
        self.simplify_memo.insert(id.0, out.0);
        // Simplification is idempotent; short-circuit the result too.
        self.simplify_memo.insert(out.0, out.0);
        out
    }

    fn bool_const(&mut self, b: bool) -> ExprId {
        self.intern_node(Node::Const(Constant::Bool(b)))
    }

    fn is_bool_const(&self, id: ExprId, b: bool) -> bool {
        matches!(&self.nodes[id.0 as usize], Node::Const(Constant::Bool(v)) if *v == b)
    }

    /// Mirrors [`Expr::not`]'s constant folding over interned ids.
    fn negate_id(&mut self, id: ExprId) -> ExprId {
        match &self.nodes[id.0 as usize] {
            Node::Const(Constant::Bool(b)) => {
                let b = !*b;
                self.bool_const(b)
            }
            Node::UnOp(UnOp::Not, inner) => *inner,
            _ => self.intern_node(Node::UnOp(UnOp::Not, id)),
        }
    }

    /// Mirrors [`Expr::and`]'s constant folding over interned ids.
    fn and_id(&mut self, lhs: ExprId, rhs: ExprId) -> ExprId {
        if self.is_bool_const(lhs, true) {
            return rhs;
        }
        if self.is_bool_const(rhs, true) {
            return lhs;
        }
        if self.is_bool_const(lhs, false) || self.is_bool_const(rhs, false) {
            return self.bool_const(false);
        }
        self.intern_node(Node::BinOp(BinOp::And, lhs, rhs))
    }

    fn has_quantifier_rec(&mut self, id: ExprId) -> bool {
        if let Some(&out) = self.quant_memo.get(&id.0) {
            return out;
        }
        let node = self.nodes[id.0 as usize].clone();
        let out = match node {
            Node::Forall(..) | Node::Exists(..) => true,
            Node::Var(_) | Node::Const(_) => false,
            Node::UnOp(_, e) => self.has_quantifier_rec(e),
            Node::BinOp(_, l, r) => self.has_quantifier_rec(l) || self.has_quantifier_rec(r),
            Node::Ite(c, t, e) => {
                self.has_quantifier_rec(c)
                    || self.has_quantifier_rec(t)
                    || self.has_quantifier_rec(e)
            }
            Node::App(_, args) => args.iter().any(|a| self.has_quantifier_rec(*a)),
        };
        self.quant_memo.insert(id.0, out);
        out
    }

    /// DAG evaluation under a partial assignment; the memo makes shared
    /// subterms cost one visit per call instead of one per occurrence.
    /// Memoizing per call is sound because the value of a subterm under a
    /// fixed `lookup` is deterministic.  The arms mirror [`crate::evaluate`]
    /// case for case (Kleene connectives, euclidean division with the
    /// divisor-zero refusal, the agreeing-branch `ite` rule) so the two
    /// evaluators agree on every expression.
    fn eval_rec<F>(
        &self,
        id: ExprId,
        lookup: &F,
        memo: &mut HashMap<ExprId, Option<Value>>,
    ) -> Option<Value>
    where
        F: Fn(Name) -> Option<Value>,
    {
        if let Some(&out) = memo.get(&id) {
            return out;
        }
        let out = self.eval_node(id, lookup, memo);
        memo.insert(id, out);
        out
    }

    fn eval_node<F>(
        &self,
        id: ExprId,
        lookup: &F,
        memo: &mut HashMap<ExprId, Option<Value>>,
    ) -> Option<Value>
    where
        F: Fn(Name) -> Option<Value>,
    {
        match &self.nodes[id.0 as usize] {
            Node::Var(name) => lookup(*name),
            Node::Const(Constant::Int(i)) => Some(Value::Int(*i)),
            Node::Const(Constant::Bool(b)) => Some(Value::Bool(*b)),
            Node::Const(Constant::Real(_)) => None,
            Node::UnOp(UnOp::Not, e) => {
                Some(Value::Bool(!self.eval_rec(*e, lookup, memo)?.as_bool()?))
            }
            Node::UnOp(UnOp::Neg, e) => {
                Some(Value::Int(-self.eval_rec(*e, lookup, memo)?.as_int()?))
            }
            Node::BinOp(op @ (BinOp::And | BinOp::Or | BinOp::Imp | BinOp::Iff), lhs, rhs) => {
                let l = self.eval_rec(*lhs, lookup, memo).and_then(Value::as_bool);
                let r = self.eval_rec(*rhs, lookup, memo).and_then(Value::as_bool);
                let out = match (op, l, r) {
                    (BinOp::And, Some(false), _) | (BinOp::And, _, Some(false)) => Some(false),
                    (BinOp::And, Some(true), Some(true)) => Some(true),
                    (BinOp::Or, Some(true), _) | (BinOp::Or, _, Some(true)) => Some(true),
                    (BinOp::Or, Some(false), Some(false)) => Some(false),
                    (BinOp::Imp, Some(false), _) | (BinOp::Imp, _, Some(true)) => Some(true),
                    (BinOp::Imp, Some(true), Some(false)) => Some(false),
                    (BinOp::Iff, Some(a), Some(b)) => Some(a == b),
                    _ => None,
                };
                out.map(Value::Bool)
            }
            Node::BinOp(op, lhs, rhs) => {
                let l = self.eval_rec(*lhs, lookup, memo)?;
                let r = self.eval_rec(*rhs, lookup, memo)?;
                match (op, l, r) {
                    (BinOp::Add, Value::Int(a), Value::Int(b)) => Some(Value::Int(a + b)),
                    (BinOp::Sub, Value::Int(a), Value::Int(b)) => Some(Value::Int(a - b)),
                    (BinOp::Mul, Value::Int(a), Value::Int(b)) => Some(Value::Int(a * b)),
                    (BinOp::Div, Value::Int(a), Value::Int(b)) if b != 0 => {
                        Some(Value::Int(a.div_euclid(b)))
                    }
                    (BinOp::Mod, Value::Int(a), Value::Int(b)) if b != 0 => {
                        Some(Value::Int(a.rem_euclid(b)))
                    }
                    (BinOp::Eq, a, b) if same_sort(a, b) => Some(Value::Bool(a == b)),
                    (BinOp::Ne, a, b) if same_sort(a, b) => Some(Value::Bool(a != b)),
                    (BinOp::Lt, Value::Int(a), Value::Int(b)) => Some(Value::Bool(a < b)),
                    (BinOp::Le, Value::Int(a), Value::Int(b)) => Some(Value::Bool(a <= b)),
                    (BinOp::Gt, Value::Int(a), Value::Int(b)) => Some(Value::Bool(a > b)),
                    (BinOp::Ge, Value::Int(a), Value::Int(b)) => Some(Value::Bool(a >= b)),
                    _ => None,
                }
            }
            Node::Ite(c, t, e) => match self.eval_rec(*c, lookup, memo).and_then(Value::as_bool) {
                Some(true) => self.eval_rec(*t, lookup, memo),
                Some(false) => self.eval_rec(*e, lookup, memo),
                None => {
                    let t = self.eval_rec(*t, lookup, memo)?;
                    let e = self.eval_rec(*e, lookup, memo)?;
                    (t == e).then_some(t)
                }
            },
            Node::App(..) | Node::Forall(..) | Node::Exists(..) => None,
        }
    }

    fn has_app_rec(&mut self, id: ExprId) -> bool {
        if let Some(&out) = self.app_memo.get(&id.0) {
            return out;
        }
        let node = self.nodes[id.0 as usize].clone();
        let out = match node {
            Node::App(..) => true,
            Node::Var(_) | Node::Const(_) => false,
            Node::UnOp(_, e) => self.has_app_rec(e),
            Node::BinOp(_, l, r) => self.has_app_rec(l) || self.has_app_rec(r),
            Node::Ite(c, t, e) => self.has_app_rec(c) || self.has_app_rec(t) || self.has_app_rec(e),
            Node::Forall(_, body) | Node::Exists(_, body) => self.has_app_rec(body),
        };
        self.app_memo.insert(id.0, out);
        out
    }

    fn expect_sort(
        &self,
        id: ExprId,
        ctx: &SortCtx,
        bound: &mut Vec<(Name, Sort)>,
        memo: &mut HashMap<ExprId, Sort>,
        expected: Sort,
        context: impl FnOnce() -> String,
    ) -> Result<(), (ExprId, SortError)> {
        let found = self.sort_rec(id, ctx, bound, memo)?;
        if found == expected {
            Ok(())
        } else {
            Err((
                id,
                SortError::Mismatch {
                    expected,
                    found,
                    context: context(),
                },
            ))
        }
    }

    /// DAG sort checking; agrees with [`Expr::sort_of`] on the tree form but
    /// blames the *innermost* offending subterm by id.  `bound` overlays `ctx`
    /// with quantifier binders in scope (innermost last); `memo` caches the
    /// sorts of subterms reached with no binders in scope, so shared subterms
    /// — the common case in flattened horn clauses, which repeat guard
    /// conjunctions across clauses — cost one visit per call.
    fn sort_rec(
        &self,
        id: ExprId,
        ctx: &SortCtx,
        bound: &mut Vec<(Name, Sort)>,
        memo: &mut HashMap<ExprId, Sort>,
    ) -> Result<Sort, (ExprId, SortError)> {
        if bound.is_empty() {
            if let Some(&sort) = memo.get(&id) {
                return Ok(sort);
            }
        }
        let out = match &self.nodes[id.0 as usize] {
            Node::Const(Constant::Int(_)) => Sort::Int,
            Node::Const(Constant::Bool(_)) => Sort::Bool,
            Node::Const(Constant::Real(_)) => Sort::Real,
            Node::Var(name) => bound
                .iter()
                .rev()
                .find(|(n, _)| n == name)
                .map(|(_, s)| *s)
                .or_else(|| ctx.lookup(*name))
                .ok_or((id, SortError::UnboundVar(*name)))?,
            Node::UnOp(UnOp::Not, e) => {
                self.expect_sort(*e, ctx, bound, memo, Sort::Bool, || "negation".to_owned())?;
                Sort::Bool
            }
            Node::UnOp(UnOp::Neg, e) => {
                self.expect_sort(*e, ctx, bound, memo, Sort::Int, || {
                    "arithmetic negation".to_owned()
                })?;
                Sort::Int
            }
            Node::BinOp(
                op @ (BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Mod),
                lhs,
                rhs,
            ) => {
                let op = *op;
                self.expect_sort(*lhs, ctx, bound, memo, Sort::Int, || {
                    format!("left operand of {op}")
                })?;
                self.expect_sort(*rhs, ctx, bound, memo, Sort::Int, || {
                    format!("right operand of {op}")
                })?;
                Sort::Int
            }
            Node::BinOp(op @ (BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge), lhs, rhs) => {
                let op = *op;
                self.expect_sort(*lhs, ctx, bound, memo, Sort::Int, || {
                    format!("left operand of {op}")
                })?;
                self.expect_sort(*rhs, ctx, bound, memo, Sort::Int, || {
                    format!("right operand of {op}")
                })?;
                Sort::Bool
            }
            Node::BinOp(op @ (BinOp::Eq | BinOp::Ne), lhs, rhs) => {
                let op = *op;
                let ls = self.sort_rec(*lhs, ctx, bound, memo)?;
                let rs = self.sort_rec(*rhs, ctx, bound, memo)?;
                if ls != rs {
                    return Err((
                        *rhs,
                        SortError::Mismatch {
                            expected: ls,
                            found: rs,
                            context: format!("operands of {op}"),
                        },
                    ));
                }
                Sort::Bool
            }
            Node::BinOp(op @ (BinOp::And | BinOp::Or | BinOp::Imp | BinOp::Iff), lhs, rhs) => {
                let op = *op;
                self.expect_sort(*lhs, ctx, bound, memo, Sort::Bool, || {
                    format!("left operand of {op}")
                })?;
                self.expect_sort(*rhs, ctx, bound, memo, Sort::Bool, || {
                    format!("right operand of {op}")
                })?;
                Sort::Bool
            }
            Node::Ite(cond, then, els) => {
                self.expect_sort(*cond, ctx, bound, memo, Sort::Bool, || {
                    "if-then-else condition".to_owned()
                })?;
                let ts = self.sort_rec(*then, ctx, bound, memo)?;
                let es = self.sort_rec(*els, ctx, bound, memo)?;
                if ts != es {
                    return Err((
                        *els,
                        SortError::Mismatch {
                            expected: ts,
                            found: es,
                            context: "branches of if-then-else".to_owned(),
                        },
                    ));
                }
                ts
            }
            Node::App(func, args) => {
                let func = *func;
                let Some((arg_sorts, ret)) = ctx.lookup_fn(func) else {
                    return Err((id, SortError::UnknownFunction(func)));
                };
                if arg_sorts.len() != args.len() {
                    return Err((
                        id,
                        SortError::Arity {
                            func,
                            expected: arg_sorts.len(),
                            found: args.len(),
                        },
                    ));
                }
                let expected: Vec<Sort> = arg_sorts.to_vec();
                for (arg, expected) in args.iter().zip(expected) {
                    self.expect_sort(*arg, ctx, bound, memo, expected, || {
                        format!("argument of {func}")
                    })?;
                }
                ret
            }
            Node::Forall(binders, body) | Node::Exists(binders, body) => {
                let body = *body;
                let depth = bound.len();
                bound.extend(binders.iter().copied());
                let result = self.expect_sort(body, ctx, bound, memo, Sort::Bool, || {
                    "quantifier body".to_owned()
                });
                bound.truncate(depth);
                result?;
                Sort::Bool
            }
        };
        if bound.is_empty() {
            memo.insert(id, out);
        }
        Ok(out)
    }
}

impl Table {
    /// Updates the memo high watermark and, when a cap is configured and
    /// exceeded, flushes all three memo maps at once.  Flushing them
    /// together keeps the reclaim story simple (no cross-map invariants to
    /// maintain) and is sound because every entry is a pure function of its
    /// subterm.  Called from the public wrappers after each memo-growing
    /// operation completes, never mid-recursion.
    fn reclaim_memos(&mut self) {
        let total = self.simplify_memo.len() + self.quant_memo.len() + self.app_memo.len();
        MEMO_HIGH_WATERMARK.fetch_max(total, Ordering::Relaxed);
        let cap = MEMO_CAP.load(Ordering::Relaxed);
        if cap != 0 && total > cap {
            self.simplify_memo.clear();
            self.quant_memo.clear();
            self.app_memo.clear();
            MEMO_EVICTIONS.fetch_add(total as u64, Ordering::Relaxed);
        }
    }
}

impl ExprId {
    /// Interns `expr`, returning the canonical id of its DAG representation.
    pub fn intern(expr: &Expr) -> ExprId {
        table().intern_expr(expr)
    }

    /// Rebuilds the tree form of this expression.
    pub fn expr(self) -> Expr {
        table().rebuild(self)
    }

    /// The raw index of this id (usable as a compact cache key).
    pub fn index(self) -> u32 {
        self.0
    }

    /// Applies `subst` over the DAG, memoizing shared subterms within the
    /// call.  Agrees with [`Subst::apply`] on the tree form.
    pub fn subst(self, subst: &Subst) -> ExprId {
        if subst.is_empty() {
            return self;
        }
        let mut memo = HashMap::new();
        table().subst_rec(self, subst, &mut memo)
    }

    /// Applies `subst` to every id in `ids` under one table lock and one
    /// shared memo: subterms shared *across* the ids (sibling candidates of
    /// one κ instantiate the same qualifiers over the same actuals) are
    /// processed once per batch, not once per id.  Each result equals the
    /// corresponding [`ExprId::subst`] call exactly.
    pub fn subst_many(ids: &[ExprId], subst: &Subst) -> Vec<ExprId> {
        if subst.is_empty() {
            return ids.to_vec();
        }
        let mut memo = HashMap::new();
        let mut table = table();
        ids.iter()
            .map(|id| table.subst_rec(*id, subst, &mut memo))
            .collect()
    }

    /// Simplifies this expression, memoizing the result globally.  Agrees
    /// with [`crate::simplify`] on the tree form.
    pub fn simplified(self) -> ExprId {
        let mut table = table();
        let out = table.simplify_rec(self);
        table.reclaim_memos();
        out
    }

    /// The id of `¬self`, with the same constant folding as [`Expr::not`]:
    /// `negated` returns exactly `ExprId::intern(&Expr::not(self.expr()))`
    /// without rebuilding or re-walking the tree.
    pub fn negated(self) -> ExprId {
        table().negate_id(self)
    }

    /// The id of the conjunction of `ids`, folded exactly like
    /// [`Expr::and_all`] (left fold from `true` through [`Expr::and`]'s
    /// constant folding) — so the result equals interning the tree-built
    /// conjunction, at O(1) per conjunct instead of a deep re-walk.
    pub fn and_all(ids: impl IntoIterator<Item = ExprId>) -> ExprId {
        let mut table = table();
        let mut acc = table.bool_const(true);
        for id in ids {
            acc = table.and_id(acc, id);
        }
        acc
    }

    /// True if the expression contains a quantifier anywhere; agrees with
    /// [`Expr::has_quantifier`], memoized per subterm globally.
    pub fn has_quantifier(self) -> bool {
        let mut table = table();
        let out = table.has_quantifier_rec(self);
        table.reclaim_memos();
        out
    }

    /// True if the expression contains an uninterpreted application
    /// anywhere; agrees with [`Expr::has_app`], memoized per subterm
    /// globally.
    pub fn has_app(self) -> bool {
        let mut table = table();
        let out = table.has_app_rec(self);
        table.reclaim_memos();
        out
    }

    /// Evaluates this expression under the partial assignment `lookup`,
    /// memoizing shared subterms within the call; agrees exactly with
    /// [`crate::evaluate`] on the tree form (the fixpoint solver's
    /// counter-model pruning relies on this to evaluate clause bodies
    /// without materializing per-version trees).
    pub fn evaluate<F>(self, lookup: &F) -> Option<Value>
    where
        F: Fn(Name) -> Option<Value>,
    {
        let mut memo = HashMap::new();
        table().eval_rec(self, lookup, &mut memo)
    }

    /// Splits this expression along its top-level conjunction spine; agrees
    /// with [`Expr::conjuncts`] (each returned id is the intern of the
    /// corresponding subtree), without rebuilding any tree.
    pub fn conjunct_ids(self) -> Vec<ExprId> {
        let table = table();
        let mut out = Vec::new();
        let mut stack = vec![self];
        while let Some(id) = stack.pop() {
            match &table.nodes[id.0 as usize] {
                Node::BinOp(BinOp::And, l, r) => {
                    // Right is pushed first so the left spine pops first,
                    // matching the tree traversal order.
                    stack.push(*r);
                    stack.push(*l);
                }
                _ => out.push(id),
            }
        }
        out
    }

    /// Computes the sort of this expression under `ctx`, blaming the
    /// innermost offending subterm by id on failure.  Agrees with
    /// [`Expr::sort_of`] on the tree form (same `Ok` sort; the same
    /// [`SortError`] up to the blamed location), memoizing shared subterms
    /// within the call so the audit lint costs one visit per distinct
    /// subterm rather than one per occurrence.
    pub fn sort_in(self, ctx: &SortCtx) -> Result<Sort, (ExprId, SortError)> {
        let mut memo = HashMap::new();
        table().sort_rec(self, ctx, &mut Vec::new(), &mut memo)
    }
}

/// Number of distinct subterms interned so far (diagnostic; used by tests to
/// observe structural sharing).
pub fn interned_nodes() -> usize {
    table().nodes.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::MutexGuard;

    /// Serialises the tests in this module: `interning_shares_subterms`
    /// measures deltas of the process-global node counter, which interning
    /// from a concurrently running test would skew.
    fn serial() -> MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    fn v(s: &str) -> Expr {
        Expr::var(Name::intern(s))
    }

    #[test]
    fn structurally_equal_expressions_share_an_id() {
        let _guard = serial();
        let a = Expr::and(Expr::ge(v("x"), Expr::int(0)), Expr::lt(v("x"), v("n")));
        let b = Expr::and(Expr::ge(v("x"), Expr::int(0)), Expr::lt(v("x"), v("n")));
        assert_eq!(ExprId::intern(&a), ExprId::intern(&b));
    }

    #[test]
    fn distinct_expressions_get_distinct_ids() {
        let _guard = serial();
        assert_ne!(ExprId::intern(&v("x")), ExprId::intern(&v("y")));
        assert_ne!(
            ExprId::intern(&Expr::lt(v("x"), v("y"))),
            ExprId::intern(&Expr::le(v("x"), v("y")))
        );
    }

    #[test]
    fn interning_shares_subterms() {
        let _guard = serial();
        // (x + 1) < (x + 1) + y — the two occurrences of `x + 1` must not
        // create new nodes the second time around.
        let shared = v("hcshare") + Expr::int(1);
        let _ = ExprId::intern(&shared);
        let before = interned_nodes();
        let e = Expr::lt(shared.clone(), shared + v("hcy"));
        let _ = ExprId::intern(&e);
        let created = interned_nodes() - before;
        // Only `hcy`, `(x+1)+hcy` and the `<` node may be new.
        assert!(
            created <= 3,
            "expected at most 3 new nodes, created {created}"
        );
    }

    #[test]
    fn roundtrip_preserves_structure() {
        let _guard = serial();
        let e = Expr::imp(
            Expr::and(Expr::ge(v("i"), Expr::int(0)), Expr::lt(v("i"), v("n"))),
            Expr::ite(v("p"), v("i") + Expr::int(1), Expr::neg(v("i"))),
        );
        assert_eq!(ExprId::intern(&e).expr(), e);
    }

    #[test]
    fn quantifiers_roundtrip() {
        let _guard = serial();
        let j = Name::intern("j");
        let e = Expr::forall(
            vec![(j, Sort::Int)],
            Expr::imp(
                Expr::ge(Expr::var(j), Expr::int(0)),
                Expr::ge(
                    Expr::app("select", vec![v("a"), Expr::var(j)]),
                    Expr::int(0),
                ),
            ),
        );
        assert_eq!(ExprId::intern(&e).expr(), e);
    }

    #[test]
    fn dag_subst_agrees_with_tree_subst() {
        let _guard = serial();
        let mut subst = Subst::new();
        subst.insert(Name::intern("x"), v("y") + Expr::int(2));
        let cases = [
            v("x"),
            v("z"),
            Expr::lt(v("x") + v("x"), v("z")),
            Expr::ite(Expr::eq(v("x"), v("z")), v("x"), Expr::int(0)),
            Expr::app("f", vec![v("x"), v("z")]),
        ];
        for e in &cases {
            let tree = subst.apply(e);
            let dag = ExprId::intern(e).subst(&subst);
            assert_eq!(dag.expr(), tree, "mismatch on {e:?}");
            assert_eq!(dag, ExprId::intern(&tree));
        }
    }

    #[test]
    fn dag_subst_respects_quantifier_shadowing() {
        let _guard = serial();
        let x = Name::intern("x");
        let mut subst = Subst::new();
        subst.insert(x, Expr::int(7));
        // forall x. x > 0 — the bound x must not be substituted.
        let e = Expr::forall(vec![(x, Sort::Int)], Expr::gt(Expr::var(x), Expr::int(0)));
        let tree = subst.apply(&e);
        let dag = ExprId::intern(&e).subst(&subst);
        assert_eq!(dag.expr(), tree);
    }

    #[test]
    fn empty_subst_is_identity() {
        let _guard = serial();
        let e = Expr::lt(v("x"), v("y"));
        let id = ExprId::intern(&e);
        assert_eq!(id.subst(&Subst::new()), id);
    }

    #[test]
    fn dag_connectives_agree_with_tree_connectives() {
        let _guard = serial();
        let cases = [
            Expr::tt(),
            Expr::ff(),
            v("p"),
            Expr::not(v("p")),
            Expr::lt(v("x"), v("y")),
        ];
        for e in &cases {
            let id = ExprId::intern(e);
            assert_eq!(
                id.negated(),
                ExprId::intern(&Expr::not(e.clone())),
                "negation mismatch on {e:?}"
            );
            for f in &cases {
                let fid = ExprId::intern(f);
                assert_eq!(
                    ExprId::and_all([id, fid]),
                    ExprId::intern(&Expr::and_all([e.clone(), f.clone()])),
                    "conjunction mismatch on {e:?} ∧ {f:?}"
                );
            }
        }
        assert_eq!(ExprId::and_all([]), ExprId::intern(&Expr::tt()));
    }

    #[test]
    fn conjunct_ids_agree_with_tree_conjuncts() {
        let _guard = serial();
        let e = Expr::and(
            Expr::and(v("p"), Expr::lt(v("x"), v("y"))),
            Expr::and(v("q"), Expr::or(v("r"), v("s"))),
        );
        let ids = ExprId::intern(&e).conjunct_ids();
        let trees: Vec<ExprId> = e.conjuncts().into_iter().map(ExprId::intern).collect();
        assert_eq!(ids, trees);
        // A non-conjunction is its own single conjunct.
        let atom = Expr::lt(v("x"), v("y"));
        assert_eq!(
            ExprId::intern(&atom).conjunct_ids(),
            vec![ExprId::intern(&atom)]
        );
    }

    #[test]
    fn dag_predicates_agree_with_tree_predicates() {
        let _guard = serial();
        let j = Name::intern("j");
        let cases = [
            v("x"),
            Expr::app("f", vec![v("x")]),
            Expr::forall(vec![(j, Sort::Int)], Expr::ge(Expr::var(j), Expr::int(0))),
            Expr::and(v("p"), Expr::app("g", vec![])),
            Expr::lt(v("x") + Expr::int(1), v("y")),
        ];
        for e in &cases {
            let id = ExprId::intern(e);
            assert_eq!(id.has_quantifier(), e.has_quantifier(), "quant {e:?}");
            assert_eq!(id.has_app(), e.has_app(), "app {e:?}");
        }
    }

    /// Minimal xorshift generator; the logic crate cannot depend on
    /// `flux_smt::testing::Rng` (the dependency points the other way).
    struct XorShift(u64);

    impl XorShift {
        fn below(&mut self, n: u64) -> u64 {
            self.0 ^= self.0 << 13;
            self.0 ^= self.0 >> 7;
            self.0 ^= self.0 << 17;
            self.0 % n
        }
    }

    /// DAG evaluation must agree with the tree evaluator on random
    /// expressions and random (partial) models, including the undecidable
    /// cases: `None` on one side must be `None` on the other.
    #[test]
    fn dag_evaluate_agrees_with_tree_evaluate() {
        use crate::eval::{evaluate, Value};

        fn gen_expr(rng: &mut XorShift, depth: usize) -> Expr {
            fn term(rng: &mut XorShift) -> Expr {
                match rng.below(4) {
                    0 => Expr::var(Name::intern("ev_x")),
                    1 => Expr::var(Name::intern("ev_y")),
                    2 => Expr::var(Name::intern("ev_u")), // never bound
                    _ => Expr::int(rng.below(9) as i128 - 4),
                }
            }
            if depth == 0 || rng.below(3) == 0 {
                let l = term(rng);
                let r = term(rng);
                return match rng.below(8) {
                    0 => Expr::lt(l, r),
                    1 => Expr::le(l, r),
                    2 => Expr::eq(l, r),
                    3 => Expr::ne(l, r),
                    4 => Expr::binop(BinOp::Div, l, r),
                    5 => Expr::binop(BinOp::Mod, l, r),
                    6 => Expr::var(Name::intern("ev_p")),
                    _ => Expr::app("ev_f", vec![l]),
                };
            }
            let l = gen_expr(rng, depth - 1);
            match rng.below(6) {
                0 => Expr::binop(BinOp::And, l, gen_expr(rng, depth - 1)),
                1 => Expr::binop(BinOp::Or, l, gen_expr(rng, depth - 1)),
                2 => Expr::binop(BinOp::Imp, l, gen_expr(rng, depth - 1)),
                3 => Expr::not(l),
                4 => Expr::ite(l, gen_expr(rng, depth - 1), gen_expr(rng, depth - 1)),
                _ => Expr::binop(BinOp::Iff, l, gen_expr(rng, depth - 1)),
            }
        }

        let mut rng = XorShift(0xDA6_E7A1);
        for case in 0..256 {
            let e = gen_expr(&mut rng, 3);
            let x = rng.below(9) as i128 - 4;
            let y = rng.below(9) as i128 - 4;
            let p = rng.below(2) == 0;
            let lookup = move |name: Name| {
                if name == Name::intern("ev_x") {
                    Some(Value::Int(x))
                } else if name == Name::intern("ev_y") {
                    Some(Value::Int(y))
                } else if name == Name::intern("ev_p") {
                    Some(Value::Bool(p))
                } else {
                    None
                }
            };
            let tree = evaluate(&e, &lookup);
            let dag = ExprId::intern(&e).evaluate(&lookup);
            assert_eq!(dag, tree, "case {case}: DAG and tree disagree on {e:?}");
        }
    }

    /// The DAG sort checker must agree with the tree checker: same sorts on
    /// well-sorted inputs, errors on the same ill-sorted inputs (the blamed
    /// id is additionally pinned to the innermost offender).
    #[test]
    fn dag_sort_check_agrees_with_tree_sort_check() {
        let _guard = serial();
        let mut ctx = SortCtx::new();
        ctx.push(Name::intern("x"), Sort::Int);
        ctx.push(Name::intern("p"), Sort::Bool);
        ctx.push(Name::intern("a"), Sort::Array);
        let j = Name::intern("j");
        let cases = [
            v("x") + Expr::int(1),
            Expr::lt(v("x"), Expr::int(10)),
            Expr::and(v("p"), Expr::le(v("x"), v("x"))),
            Expr::ite(v("p"), v("x"), Expr::neg(v("x"))),
            Expr::app("select", vec![v("a"), v("x")]),
            Expr::forall(vec![(j, Sort::Int)], Expr::ge(Expr::var(j), Expr::int(0))),
            // Ill-sorted / ill-scoped:
            v("x") + v("p"),
            Expr::and(v("p"), v("x")),
            v("free_in_sort_check"),
            Expr::app("select", vec![v("a")]),
            Expr::app("unknown_fn", vec![v("x")]),
            Expr::forall(vec![(j, Sort::Int)], Expr::var(j) + Expr::int(1)),
        ];
        for e in &cases {
            let tree = e.sort_of(&ctx);
            let dag = ExprId::intern(e).sort_in(&ctx);
            match (tree, dag) {
                (Ok(ts), Ok(ds)) => assert_eq!(ts, ds, "sort mismatch on {e:?}"),
                (Err(te), Err((_, de))) => assert_eq!(te, de, "error mismatch on {e:?}"),
                (t, d) => panic!("tree {t:?} vs dag {d:?} on {e:?}"),
            }
        }
        // The blamed id is the innermost offender: the unbound variable
        // itself, not the enclosing conjunction.
        let bad = Expr::and(v("p"), Expr::lt(v("free_in_sort_check"), Expr::int(0)));
        let (blamed, err) = ExprId::intern(&bad).sort_in(&ctx).unwrap_err();
        assert_eq!(blamed, ExprId::intern(&v("free_in_sort_check")));
        assert_eq!(
            err,
            SortError::UnboundVar(Name::intern("free_in_sort_check"))
        );
    }

    #[test]
    fn memoized_simplify_agrees_with_tree_simplify() {
        let _guard = serial();
        let cases = [
            Expr::binop(BinOp::And, Expr::tt(), v("p")),
            Expr::binop(BinOp::Add, Expr::int(2), Expr::int(3)),
            Expr::not(Expr::not(v("p"))),
            Expr::imp(Expr::ff(), v("p")),
            Expr::lt(v("x"), v("y")),
        ];
        for e in &cases {
            let id = ExprId::intern(e);
            let first = id.simplified();
            assert_eq!(first.expr(), simplify(e), "mismatch on {e:?}");
            // The memo must return the identical id on a repeat call.
            assert_eq!(id.simplified(), first);
            // And simplification is idempotent through the memo.
            assert_eq!(first.simplified(), first);
        }
    }
}
