//! Evaluation of refinement expressions under a (possibly partial) variable
//! assignment.
//!
//! The fixpoint solver's counter-model-guided weakening needs to answer,
//! *without an SMT query*: given the integer/boolean values a counter-model
//! assigns to the clause's variables, is this candidate predicate false?
//! [`evaluate`] computes that answer when it can and returns `None` when it
//! can't, which happens exactly when
//!
//! * a variable has no value in the assignment (partial model),
//! * the expression contains an uninterpreted application, a quantifier, or
//!   a real constant (the evaluator would have to guess an interpretation),
//! * or an integer division/remainder has divisor zero (the logic treats
//!   `a / 0` as an unspecified-but-total function, so no particular value
//!   may be assumed).
//!
//! Everything the evaluator *does* decide agrees with the semantics the SMT
//! pipeline gives the same operators: integer division and remainder are
//! euclidean (`i128::div_euclid` / `i128::rem_euclid`), matching the
//! constant folding in [`crate::simplify`] and the floor-division encoding
//! used for positive constant divisors by the solver's preprocessing.
//!
//! Boolean connectives are evaluated with Kleene's strong three-valued
//! logic: `false ∧ ?` is `false` and `true ∨ ?` is `true` even when the
//! other operand is undecidable.  This is sound because every well-sorted
//! expression denotes *some* value under a total extension of the partial
//! assignment, and the short-circuit result is independent of which one.

use crate::{BinOp, Constant, Expr, Name, UnOp};

/// A first-order value of the refinement logic.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Value {
    /// An integer.
    Int(i128),
    /// A boolean.
    Bool(bool),
}

impl Value {
    /// The integer payload, if this is an integer value.
    pub fn as_int(self) -> Option<i128> {
        match self {
            Value::Int(i) => Some(i),
            Value::Bool(_) => None,
        }
    }

    /// The boolean payload, if this is a boolean value.
    pub fn as_bool(self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(b),
            Value::Int(_) => None,
        }
    }
}

/// Evaluates `expr` under the partial assignment `lookup`.
///
/// Returns `None` when the value cannot be determined (see the module
/// documentation for the exact cases).  A `Some` answer is the value the
/// expression takes under *every* total extension of the assignment.
pub fn evaluate<F>(expr: &Expr, lookup: &F) -> Option<Value>
where
    F: Fn(Name) -> Option<Value>,
{
    match expr {
        Expr::Var(name) => lookup(*name),
        Expr::Const(Constant::Int(i)) => Some(Value::Int(*i)),
        Expr::Const(Constant::Bool(b)) => Some(Value::Bool(*b)),
        // Refinements never compute with reals; comparing them would need an
        // interpretation the logic does not fix.
        Expr::Const(Constant::Real(_)) => None,
        Expr::UnOp(UnOp::Not, e) => Some(Value::Bool(!evaluate(e, lookup)?.as_bool()?)),
        Expr::UnOp(UnOp::Neg, e) => Some(Value::Int(-evaluate(e, lookup)?.as_int()?)),
        Expr::BinOp(op, lhs, rhs) => eval_binop(*op, lhs, rhs, lookup),
        Expr::Ite(c, t, e) => match evaluate(c, lookup).and_then(Value::as_bool) {
            Some(true) => evaluate(t, lookup),
            Some(false) => evaluate(e, lookup),
            // Condition undecidable: both branches agreeing is still decisive.
            None => {
                let t = evaluate(t, lookup)?;
                let e = evaluate(e, lookup)?;
                (t == e).then_some(t)
            }
        },
        // Uninterpreted symbols and quantifiers are beyond a finite
        // assignment.
        Expr::App(..) | Expr::Forall(..) | Expr::Exists(..) => None,
    }
}

fn eval_binop<F>(op: BinOp, lhs: &Expr, rhs: &Expr, lookup: &F) -> Option<Value>
where
    F: Fn(Name) -> Option<Value>,
{
    // Kleene short-circuiting for the connectives: one decided operand can
    // settle the result even when the other is undecidable.
    match op {
        BinOp::And | BinOp::Or | BinOp::Imp | BinOp::Iff => {
            let l = evaluate(lhs, lookup).and_then(Value::as_bool);
            let r = evaluate(rhs, lookup).and_then(Value::as_bool);
            let out = match (op, l, r) {
                (BinOp::And, Some(false), _) | (BinOp::And, _, Some(false)) => Some(false),
                (BinOp::And, Some(true), Some(true)) => Some(true),
                (BinOp::Or, Some(true), _) | (BinOp::Or, _, Some(true)) => Some(true),
                (BinOp::Or, Some(false), Some(false)) => Some(false),
                (BinOp::Imp, Some(false), _) | (BinOp::Imp, _, Some(true)) => Some(true),
                (BinOp::Imp, Some(true), Some(false)) => Some(false),
                (BinOp::Iff, Some(a), Some(b)) => Some(a == b),
                _ => None,
            };
            return out.map(Value::Bool);
        }
        _ => {}
    }
    let l = evaluate(lhs, lookup)?;
    let r = evaluate(rhs, lookup)?;
    match (op, l, r) {
        (BinOp::Add, Value::Int(a), Value::Int(b)) => Some(Value::Int(a + b)),
        (BinOp::Sub, Value::Int(a), Value::Int(b)) => Some(Value::Int(a - b)),
        (BinOp::Mul, Value::Int(a), Value::Int(b)) => Some(Value::Int(a * b)),
        // Euclidean semantics, matching `simplify`'s constant folding; the
        // divisor-zero case is unspecified, so refuse to pick a value.
        (BinOp::Div, Value::Int(a), Value::Int(b)) if b != 0 => Some(Value::Int(a.div_euclid(b))),
        (BinOp::Mod, Value::Int(a), Value::Int(b)) if b != 0 => Some(Value::Int(a.rem_euclid(b))),
        (BinOp::Eq, a, b) if same_sort(a, b) => Some(Value::Bool(a == b)),
        (BinOp::Ne, a, b) if same_sort(a, b) => Some(Value::Bool(a != b)),
        (BinOp::Lt, Value::Int(a), Value::Int(b)) => Some(Value::Bool(a < b)),
        (BinOp::Le, Value::Int(a), Value::Int(b)) => Some(Value::Bool(a <= b)),
        (BinOp::Gt, Value::Int(a), Value::Int(b)) => Some(Value::Bool(a > b)),
        (BinOp::Ge, Value::Int(a), Value::Int(b)) => Some(Value::Bool(a >= b)),
        _ => None,
    }
}

pub(crate) fn same_sort(a: Value, b: Value) -> bool {
    matches!(
        (a, b),
        (Value::Int(_), Value::Int(_)) | (Value::Bool(_), Value::Bool(_))
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Sort;

    fn v(s: &str) -> Expr {
        Expr::var(Name::intern(s))
    }

    /// Lookup over a fixed list of integer bindings.
    fn ints<'a>(bindings: &'a [(&'a str, i128)]) -> impl Fn(Name) -> Option<Value> + 'a {
        move |name| {
            bindings
                .iter()
                .find(|(n, _)| Name::intern(n) == name)
                .map(|(_, i)| Value::Int(*i))
        }
    }

    #[test]
    fn arithmetic_and_comparisons_evaluate() {
        let env = ints(&[("x", 3), ("y", -2)]);
        assert_eq!(evaluate(&(v("x") + v("y")), &env), Some(Value::Int(1)),);
        assert_eq!(
            evaluate(&Expr::lt(v("y"), v("x")), &env),
            Some(Value::Bool(true)),
        );
        assert_eq!(
            evaluate(&Expr::eq(v("x") * v("y"), Expr::int(-6)), &env),
            Some(Value::Bool(true)),
        );
    }

    #[test]
    fn division_and_modulo_are_euclidean() {
        let env = ints(&[("a", -7), ("b", 2)]);
        // Euclidean: -7 = 2 * (-4) + 1, so div = -4 and mod = 1 ≥ 0.
        assert_eq!(
            evaluate(&Expr::binop(BinOp::Div, v("a"), v("b")), &env),
            Some(Value::Int(-4)),
        );
        assert_eq!(
            evaluate(&Expr::binop(BinOp::Mod, v("a"), v("b")), &env),
            Some(Value::Int(1)),
        );
        // Negative divisor: -7 = -2 * 4 + 1.
        let env = ints(&[("a", -7), ("b", -2)]);
        assert_eq!(
            evaluate(&Expr::binop(BinOp::Div, v("a"), v("b")), &env),
            Some(Value::Int(4)),
        );
        assert_eq!(
            evaluate(&Expr::binop(BinOp::Mod, v("a"), v("b")), &env),
            Some(Value::Int(1)),
        );
        // Division by zero is unspecified.
        let env = ints(&[("a", 5), ("b", 0)]);
        assert_eq!(
            evaluate(&Expr::binop(BinOp::Div, v("a"), v("b")), &env),
            None
        );
        assert_eq!(
            evaluate(&Expr::binop(BinOp::Mod, v("a"), v("b")), &env),
            None
        );
    }

    #[test]
    fn partial_models_return_none_but_short_circuit() {
        let env = ints(&[("x", 1)]);
        // `y` is unbound: undecidable on its own...
        assert_eq!(evaluate(&Expr::ge(v("y"), Expr::int(0)), &env), None);
        // ...but a decided false conjunct settles the conjunction,
        assert_eq!(
            evaluate(
                &Expr::and(
                    Expr::lt(v("x"), Expr::int(0)),
                    Expr::ge(v("y"), Expr::int(0))
                ),
                &env
            ),
            Some(Value::Bool(false)),
        );
        // and a decided true disjunct settles the disjunction.
        assert_eq!(
            evaluate(
                &Expr::or(
                    Expr::gt(v("x"), Expr::int(0)),
                    Expr::ge(v("y"), Expr::int(0))
                ),
                &env
            ),
            Some(Value::Bool(true)),
        );
        // true ∧ ? stays undecidable.
        assert_eq!(
            evaluate(
                &Expr::binop(
                    BinOp::And,
                    Expr::gt(v("x"), Expr::int(0)),
                    Expr::ge(v("y"), Expr::int(0))
                ),
                &env
            ),
            None,
        );
    }

    #[test]
    fn uninterpreted_apps_and_quantifiers_are_undecidable() {
        let env = ints(&[("i", 2), ("n", 5)]);
        assert_eq!(
            evaluate(
                &Expr::ge(Expr::app("select", vec![v("a"), v("i")]), Expr::int(0)),
                &env
            ),
            None,
        );
        let j = Name::intern("j");
        assert_eq!(
            evaluate(
                &Expr::forall(vec![(j, Sort::Int)], Expr::ge(Expr::var(j), Expr::int(0))),
                &env
            ),
            None,
        );
        // An app below a decided connective is still short-circuited away.
        assert_eq!(
            evaluate(
                &Expr::and(
                    Expr::ff(),
                    Expr::ge(Expr::app("len", vec![v("xs")]), Expr::int(0))
                ),
                &env
            ),
            Some(Value::Bool(false)),
        );
    }

    #[test]
    fn ite_follows_the_condition_or_agreeing_branches() {
        let env = ints(&[("x", 4)]);
        let e = Expr::ite(Expr::gt(v("x"), Expr::int(0)), v("x"), Expr::neg(v("x")));
        assert_eq!(evaluate(&e, &env), Some(Value::Int(4)));
        // Undecidable condition but agreeing branches.
        let e = Expr::ite(Expr::gt(v("y"), Expr::int(0)), Expr::int(7), Expr::int(7));
        assert_eq!(evaluate(&e, &env), Some(Value::Int(7)));
        // Undecidable condition, disagreeing branches.
        let e = Expr::ite(Expr::gt(v("y"), Expr::int(0)), Expr::int(7), Expr::int(8));
        assert_eq!(evaluate(&e, &env), None);
    }

    #[test]
    fn negation_and_equality_on_booleans() {
        let env = |name: Name| (name == Name::intern("p")).then_some(Value::Bool(true));
        assert_eq!(evaluate(&Expr::not(v("p")), &env), Some(Value::Bool(false)),);
        assert_eq!(
            evaluate(&Expr::eq(v("p"), Expr::tt()), &env),
            Some(Value::Bool(true)),
        );
        // Sort-mismatched equality is refused rather than guessed.
        assert_eq!(evaluate(&Expr::eq(v("p"), Expr::int(1)), &env), None);
    }

    #[test]
    fn real_constants_are_undecidable() {
        let env = |_| None;
        assert_eq!(evaluate(&Expr::real(1.5), &env), None);
        assert_eq!(
            evaluate(&Expr::eq(Expr::real(1.5), Expr::real(1.5)), &env),
            None
        );
    }
}
