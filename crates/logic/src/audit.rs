//! Audit tiers and the constraint well-formedness lint.
//!
//! The single worst bug in this repo's history was a scoping violation: κ
//! head clauses with free variables made the weakening loop delete every
//! candidate (the PR 2 post-mortem in DESIGN.md).  Nothing checked for it —
//! constraints flowed from the checkers straight into the solver, and the
//! solver happily treated an unbound name as an unconstrained integer.
//!
//! This module is the root of the audit layer that closes that gap.  It
//! defines the process-wide audit tier (selected by the `FLUX_AUDIT`
//! environment variable, overridable per-config so tests stay hermetic) and
//! the lint primitive itself: every obligation the verifiers emit can be
//! passed through [`lint`], which sort-checks and scope-checks the hash-
//! consed DAG via [`ExprId::sort_in`] and, on failure, reports the innermost
//! offending subterm by id together with the binder scope it was checked
//! under.  Downstream crates (`flux-wp`, `flux-fixpoint`) call it at their
//! constraint-generation boundaries; the SMT theory certificates and the
//! fixpoint re-validation pass (the other two audit tiers' machinery) live
//! next to the code they check, in `flux-smt` and `flux-fixpoint`.

use crate::{ExprId, Name, Sort, SortCtx, SortError};
use std::fmt;
use std::sync::OnceLock;

/// How much self-checking the verification pipeline performs.
///
/// Tiers are cumulative: `Full` implies everything `Lint` does.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum AuditTier {
    /// No auditing.  The production default; adds zero work to any path.
    #[default]
    Off,
    /// Well-formedness lint: every emitted obligation and every κ
    /// head/body is sort- and scope-checked at constraint-generation time.
    Lint,
    /// `Lint` plus theory certificates (Farkas-checked infeasible cores,
    /// model evaluation, SAT invariant sweeps) and independent re-validation
    /// of converged fixpoint solutions with a cache-free one-shot solver.
    Full,
}

impl AuditTier {
    /// True if constraint lints should run at this tier.
    pub fn lints(self) -> bool {
        self >= AuditTier::Lint
    }

    /// True if theory certificates and solution re-validation should run.
    pub fn certifies(self) -> bool {
        self >= AuditTier::Full
    }
}

impl fmt::Display for AuditTier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AuditTier::Off => write!(f, "off"),
            AuditTier::Lint => write!(f, "lint"),
            AuditTier::Full => write!(f, "full"),
        }
    }
}

/// The audit tier selected by the `FLUX_AUDIT` environment variable, read
/// once per process (same discipline as `FLUX_LEGACY` / `FLUX_THREADS`):
/// unset, empty, `0` or `off` mean [`AuditTier::Off`]; `lint` means
/// [`AuditTier::Lint`]; any other value (canonically `full` or `1`) means
/// [`AuditTier::Full`] — an unrecognized setting buys more checking, never
/// silently less.  Configs default from this; tests override the config
/// field instead of the (process-global) environment.
pub fn audit_tier() -> AuditTier {
    static TIER: OnceLock<AuditTier> = OnceLock::new();
    *TIER.get_or_init(|| match std::env::var("FLUX_AUDIT") {
        Ok(v) if v.is_empty() || v == "0" || v == "off" => AuditTier::Off,
        Ok(v) if v == "lint" => AuditTier::Lint,
        Ok(_) => AuditTier::Full,
        Err(_) => AuditTier::Off,
    })
}

/// A well-formedness violation caught by the audit lint.
///
/// Identifies the checked obligation, the innermost offending subterm, the
/// sort error itself, and the binder scope the obligation was checked under
/// — everything needed to localize a PR 2-class bug to the emission site.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LintError {
    /// What was being checked (e.g. `"head of clause `vec_push#post`"`).
    pub what: String,
    /// The full obligation the lint was invoked on.
    pub expr: ExprId,
    /// The innermost subterm the sort checker blames.
    pub offender: ExprId,
    /// The underlying sort/scope error.
    pub error: SortError,
    /// The binder scope (name, sort) pairs the obligation was checked
    /// under, outermost first.
    pub scope: Vec<(Name, Sort)>,
}

impl fmt::Display for LintError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "audit lint rejected {}: {} (offending subterm ExprId #{} of ExprId #{}; binder scope [",
            self.what,
            self.error,
            self.offender.index(),
            self.expr.index(),
        )?;
        for (i, (name, sort)) in self.scope.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{name}: {sort}")?;
        }
        write!(f, "])")
    }
}

impl std::error::Error for LintError {}

/// Lints one obligation: checks that `expr` has sort `expected` under `ctx`.
///
/// On failure the returned [`LintError`] names the offending [`ExprId`] and
/// carries the binder scope from `ctx`.  `what` describes the obligation for
/// the error message; it is only materialized on failure.
pub fn lint(
    what: impl FnOnce() -> String,
    expr: ExprId,
    expected: Sort,
    ctx: &SortCtx,
) -> Result<(), LintError> {
    let fail = |offender, error| LintError {
        what: what(),
        expr,
        offender,
        error,
        scope: ctx.iter().collect(),
    };
    match expr.sort_in(ctx) {
        Ok(found) if found == expected => Ok(()),
        Ok(found) => Err(fail(
            expr,
            SortError::Mismatch {
                expected,
                found,
                context: "linted obligation".to_owned(),
            },
        )),
        Err((offender, error)) => Err(fail(offender, error)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Expr;

    #[test]
    fn tier_ordering_and_predicates() {
        assert!(AuditTier::Off < AuditTier::Lint);
        assert!(AuditTier::Lint < AuditTier::Full);
        assert!(!AuditTier::Off.lints());
        assert!(!AuditTier::Off.certifies());
        assert!(AuditTier::Lint.lints());
        assert!(!AuditTier::Lint.certifies());
        assert!(AuditTier::Full.lints());
        assert!(AuditTier::Full.certifies());
        assert_eq!(AuditTier::default(), AuditTier::Off);
    }

    #[test]
    fn lint_accepts_well_sorted_obligation() {
        let mut ctx = SortCtx::new();
        ctx.push(Name::intern("lx"), Sort::Int);
        let ob = ExprId::intern(&Expr::ge(Expr::var(Name::intern("lx")), Expr::int(0)));
        assert_eq!(lint(|| unreachable!(), ob, Sort::Bool, &ctx), Ok(()));
    }

    #[test]
    fn lint_names_offender_and_scope_for_free_variable() {
        let mut ctx = SortCtx::new();
        ctx.push(Name::intern("lx"), Sort::Int);
        let free = Name::intern("lint_free_var");
        let bad = Expr::and(
            Expr::ge(Expr::var(Name::intern("lx")), Expr::int(0)),
            Expr::lt(Expr::var(free), Expr::int(3)),
        );
        let err = lint(
            || "planted head".to_owned(),
            ExprId::intern(&bad),
            Sort::Bool,
            &ctx,
        )
        .unwrap_err();
        assert_eq!(err.error, SortError::UnboundVar(free));
        assert_eq!(err.offender, ExprId::intern(&Expr::var(free)));
        assert_eq!(err.scope, vec![(Name::intern("lx"), Sort::Int)]);
        let msg = err.to_string();
        assert!(msg.contains("planted head"), "{msg}");
        assert!(msg.contains("lint_free_var"), "{msg}");
        assert!(msg.contains(&format!("#{}", err.offender.index())), "{msg}");
        assert!(msg.contains("lx: int"), "{msg}");
    }

    #[test]
    fn lint_rejects_wrong_sort_obligation() {
        let mut ctx = SortCtx::new();
        ctx.push(Name::intern("lx"), Sort::Int);
        // An integer-sorted "obligation" — well-sorted, but not a predicate.
        let ob = ExprId::intern(&(Expr::var(Name::intern("lx")) + Expr::int(1)));
        let err = lint(|| "planted obligation".to_owned(), ob, Sort::Bool, &ctx).unwrap_err();
        assert_eq!(err.offender, ob);
        assert!(matches!(
            err.error,
            SortError::Mismatch {
                expected: Sort::Bool,
                found: Sort::Int,
                ..
            }
        ));
    }
}
