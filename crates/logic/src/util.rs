//! Small process-wide utilities shared across the workspace: poison-tolerant
//! mutex locking and warn-and-default environment-variable parsing.
//!
//! Both exist because the workspace keeps *process-global* state (the
//! hash-cons table here, the CNF/atom caches in `flux-smt`, the verdict
//! cache in `flux-fixpoint`) behind mutexes, and reads tuning knobs from the
//! environment in several crates.  Historically each site hand-rolled its
//! own recovery/parsing; this module is the single copy.

use std::str::FromStr;
use std::sync::{Mutex, MutexGuard};

/// Locks `mutex`, recovering from poisoning instead of propagating it.
///
/// Every process-global cache in the workspace memoizes *deterministic*
/// results behind its mutex (hash-cons ids, CNF conversions, validity
/// verdicts), so no torn state is observable through their APIs even when a
/// holder panicked mid-update: the worst case is a missing or duplicate memo
/// entry, which only costs recomputation.  Recovering here keeps one
/// panicked worker (e.g. a failed assertion on an unrelated test thread)
/// from cascading into every later solve in the process.
pub fn lock_recover<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Reads the environment variable `name` and parses it as `T`, warning on
/// stderr and returning `default` when the value is present but malformed.
/// An unset or empty variable silently returns `default`.
///
/// This is the `FLUX_THREADS` warn-and-default pattern, factored out so
/// every knob (`FLUX_THREADS`, `FLUX_DEADLINE_MS`, `FLUX_CACHE_CAP`)
/// behaves identically.  Callers that want read-once semantics keep their
/// own `OnceLock` around this.
pub fn env_parse<T: FromStr>(name: &str, default: T) -> T {
    match std::env::var(name) {
        Ok(raw) => {
            let raw = raw.trim();
            if raw.is_empty() {
                return default;
            }
            match raw.parse() {
                Ok(value) => value,
                Err(_) => {
                    eprintln!("warning: ignoring unparseable {name}={raw:?}");
                    default
                }
            }
        }
        Err(_) => default,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_recover_returns_data_after_poison() {
        let mutex = Mutex::new(7usize);
        // Poison the mutex by panicking while holding the guard.
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = mutex.lock().unwrap();
            panic!("poison");
        }));
        assert!(result.is_err());
        assert!(mutex.is_poisoned());
        assert_eq!(*lock_recover(&mutex), 7);
    }

    #[test]
    fn env_parse_handles_unset_malformed_and_valid() {
        // Unset: silently the default.
        std::env::remove_var("FLUX_UTIL_TEST_UNSET");
        assert_eq!(env_parse("FLUX_UTIL_TEST_UNSET", 5usize), 5);
        // Malformed: warn-and-default.
        std::env::set_var("FLUX_UTIL_TEST_BAD", "not-a-number");
        assert_eq!(env_parse("FLUX_UTIL_TEST_BAD", 5usize), 5);
        // Empty counts as unset.
        std::env::set_var("FLUX_UTIL_TEST_EMPTY", "  ");
        assert_eq!(env_parse("FLUX_UTIL_TEST_EMPTY", 5usize), 5);
        // Valid (with surrounding whitespace).
        std::env::set_var("FLUX_UTIL_TEST_OK", " 42 ");
        assert_eq!(env_parse("FLUX_UTIL_TEST_OK", 5usize), 42);
    }
}
