//! The top-level Flux library: a single entry point over the whole pipeline
//! (parse → desugar → refinement checking → liquid inference), the
//! program-logic baseline it is evaluated against, and the Table 1 harness.
//!
//! # Quick start
//!
//! ```
//! use flux::{verify_source, Mode, VerifyConfig};
//!
//! let src = r#"
//!     #[flux::sig(fn(usize[@n]) -> usize[n])]
//!     fn count_up(n: usize) -> usize {
//!         let mut i = 0;
//!         while i < n {
//!             i += 1;
//!         }
//!         i
//!     }
//! "#;
//! let outcome = verify_source(src, Mode::Flux, &VerifyConfig::default()).unwrap();
//! assert!(outcome.safe);
//! assert_eq!(outcome.annot_lines, 0); // liquid inference needs no loop invariants
//! ```

#![warn(missing_docs)]

use flux_syntax::SourceMetrics;
use std::time::Duration;

pub use flux_check::{CheckConfig, Report as FluxReport};
pub use flux_fixpoint::{FixConfig, FixStats};
pub use flux_smt::SmtStats;
pub use flux_suite::{benchmark, benchmarks, library, Benchmark};
pub use flux_wp::{WpConfig, WpReport};

/// Which verifier to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mode {
    /// The Flux pipeline: refinement types plus liquid inference.
    Flux,
    /// The Prusti-style program-logic baseline: contracts plus user-written
    /// loop invariants discharged with quantifier instantiation.
    Baseline,
}

/// Configuration for [`verify_source`].
#[derive(Clone, Debug, Default)]
pub struct VerifyConfig {
    /// Configuration of the Flux checker.
    pub check: CheckConfig,
    /// Configuration of the baseline verifier.
    pub wp: WpConfig,
}

/// End-to-end statistics of the incremental query engine for one
/// verification run, aggregated over all functions.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct QueryStats {
    /// Validity queries requested by the verifier (including cache hits).
    pub smt_queries: usize,
    /// Queries answered from the fixpoint validity cache.
    pub cache_hits: usize,
    /// Cache hits served by an entry another function's solve created (the
    /// cache is shared across all functions of one verification run).
    pub cross_fn_hits: usize,
    /// Cache hits served by an entry a *different* solver instance created
    /// (cross-benchmark sharing through the process-global verdict cache).
    pub xbench_hits: usize,
    /// Queries that reached the SMT engine.
    pub cache_misses: usize,
    /// Candidates dropped by counter-model evaluation instead of a
    /// per-candidate SMT query (Flux weakening loop only).
    pub model_prunes: usize,
    /// Solver sessions opened.
    pub sessions: usize,
    /// Goal checks discharged on a session's persistent CDCL core (clause
    /// database and learned clauses retained from an earlier goal).
    pub sat_reuse: usize,
    /// SAT-core invocations inside the engine.
    pub sat_rounds: usize,
    /// Theory (LIA) checks inside the engine.
    pub theory_checks: usize,
    /// Simplex pivots across all theory checks.
    pub pivots: usize,
    /// Literals assigned by SAT unit propagation.
    pub propagations: usize,
    /// Watcher visits answered by the cached blocking literal alone,
    /// without touching the clause.
    pub blocked_visits: usize,
    /// Learned-clause-database reductions performed by the SAT cores.
    pub db_reductions: usize,
    /// Simplex column traversals driven by the occurrence lists (or row
    /// scans in legacy mode).
    pub col_scans: usize,
    /// Hypothesis conjuncts retracted from live sessions instead of
    /// rebuilding the session when a depended-on κ weakened (Flux
    /// weakening loop only).
    pub conjunct_retractions: usize,
    /// Quantifier instances generated (baseline verifier only).
    pub quant_instances: usize,
    /// Worker-thread cap of the *clause-level* fixpoint scheduler
    /// ([`flux_fixpoint::FixConfig::threads`]; Flux mode only — the
    /// baseline verifier is single-threaded and reports 1).  The
    /// function-level pool is reported separately in
    /// [`QueryStats::fn_threads`]: the two widths compose (total potential
    /// parallelism is their product), so collapsing them into one figure
    /// would misreport both.
    pub threads: usize,
    /// Worker-thread width of the *function-level* fan-out in
    /// `check_program` ([`flux_check::CheckConfig::fn_threads`], clamped to
    /// the function count; Flux mode only — the baseline reports 1).
    pub fn_threads: usize,
    /// Per-function wall-clock check times in milliseconds, in source order
    /// (the `fn_parallel` column: where the wall-clock went under the
    /// function-level fan-out; Flux mode only, empty for the baseline).
    pub fn_times_ms: Vec<usize>,
    /// Times a thread found a process-global cache-shard lock (validity
    /// shards, CNF shards, hcons interner) held by another thread during
    /// the run — the mutex-convoying diagnostic for the sharded caches.
    /// Zero in sequential runs.
    pub shard_contention: usize,
    /// Independent κ-dependency components across all fixpoint solves (the
    /// available weakening parallelism; Flux mode only).
    pub partitions: usize,
    /// SMT queries issued per worker slot, summed across all fixpoint
    /// solves of the run (Flux mode only; empty for the baseline).
    pub worker_queries: Vec<usize>,
    /// Obligations sort-/scope-checked by the audit lint (zero unless the
    /// audit tier is at least `lint`; see `FLUX_AUDIT`).
    pub lint_checks: usize,
    /// Theory certificates checked by the SMT engine — Farkas-validated
    /// infeasible cores, evaluated models, SAT invariant sweeps (zero
    /// unless the audit tier is `full`).
    pub certs_checked: usize,
    /// Clauses independently re-validated after fixpoint convergence (zero
    /// unless the audit tier is `full`; Flux mode only).
    pub revalidations: usize,
    /// Functions whose solve degraded to an inconclusive result because a
    /// deadline or step budget ran out or a worker panicked (zero under the
    /// default unlimited budgets; Flux mode only — the baseline reports
    /// budget stops through `budget_exhausted`).
    pub unknowns: usize,
    /// Cache entries evicted during the run (hash-consing memos, CNF memos
    /// and validity-cache entries combined; zero unless `FLUX_CACHE_CAP`
    /// bounds the caches; Flux mode only).
    pub evictions: usize,
    /// Times a solver component stopped early because its resource budget
    /// was exhausted (SAT decision/conflict caps, theory-round deadlines).
    pub budget_exhausted: usize,
}

/// The outcome of verifying one source file with one of the verifiers.
#[derive(Clone, Debug)]
pub struct VerifyOutcome {
    /// Which verifier produced this outcome.
    pub mode: Mode,
    /// True if every function verified.
    pub safe: bool,
    /// Human-readable error messages for failed obligations.
    pub errors: Vec<String>,
    /// Wall-clock verification time.
    pub time: Duration,
    /// Number of functions verified.
    pub functions: usize,
    /// Lines of code (excluding specs and annotations).
    pub loc: usize,
    /// Specification lines.
    pub spec_lines: usize,
    /// Loop-invariant annotation lines.
    pub annot_lines: usize,
    /// Query-engine statistics for the run.
    pub stats: QueryStats,
}

/// Errors produced before verification proper (parsing or signature
/// desugaring).
#[derive(Clone, Debug)]
pub struct FrontendError {
    /// Rendered diagnostics.
    pub messages: Vec<String>,
}

impl std::fmt::Display for FrontendError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.messages.join("\n"))
    }
}

impl std::error::Error for FrontendError {}

/// Verifies `source` with the selected verifier.
pub fn verify_source(
    source: &str,
    mode: Mode,
    config: &VerifyConfig,
) -> Result<VerifyOutcome, FrontendError> {
    let metrics = SourceMetrics::of_source(source);
    match mode {
        Mode::Flux => {
            let report =
                flux_check::check_source(source, &config.check).map_err(|errs| FrontendError {
                    messages: errs.iter().map(|d| d.render(source)).collect(),
                })?;
            let fix = report.total_fixpoint_stats();
            let smt = report.total_smt_stats();
            Ok(VerifyOutcome {
                mode,
                safe: report.is_safe(),
                errors: report.errors().iter().map(|d| d.render(source)).collect(),
                // Wall-clock, not summed per-function work: with the
                // function-level fan-out this is what the caller waited,
                // so multi-core speedups show up in the time columns.
                time: report.wall_time,
                functions: report.functions.len(),
                loc: metrics.loc,
                spec_lines: metrics.spec_lines,
                annot_lines: metrics.annot_lines,
                stats: QueryStats {
                    smt_queries: fix.smt_queries,
                    cache_hits: fix.cache_hits,
                    cross_fn_hits: fix.cross_fn_hits,
                    xbench_hits: fix.xbench_hits,
                    cache_misses: fix.cache_misses,
                    model_prunes: fix.model_prunes,
                    sessions: fix.sessions,
                    sat_reuse: smt.sat_reuse,
                    sat_rounds: smt.sat_rounds,
                    theory_checks: smt.theory_checks,
                    pivots: smt.pivots,
                    propagations: smt.propagations,
                    blocked_visits: smt.blocked_visits,
                    db_reductions: smt.db_reductions,
                    col_scans: smt.col_scans,
                    conjunct_retractions: smt.conjunct_retractions,
                    quant_instances: smt.quant_instances,
                    threads: fix.threads,
                    fn_threads: report.fn_threads,
                    fn_times_ms: report
                        .fn_times()
                        .iter()
                        .map(|t| t.as_millis() as usize)
                        .collect(),
                    shard_contention: fix.shard_contention,
                    partitions: fix.partitions,
                    worker_queries: report.total_worker_queries(),
                    lint_checks: fix.lint_checks,
                    certs_checked: smt.certs_checked,
                    revalidations: fix.revalidations,
                    unknowns: report.functions.iter().filter(|f| f.is_unknown()).count(),
                    evictions: fix.evictions,
                    budget_exhausted: smt.budget_exhausted,
                },
            })
        }
        Mode::Baseline => {
            let report = flux_wp::verify_source(source, &config.wp).map_err(|d| FrontendError {
                messages: vec![d.render(source)],
            })?;
            let smt = report.total_smt_stats();
            Ok(VerifyOutcome {
                mode,
                safe: report.is_safe(),
                errors: report
                    .functions
                    .iter()
                    .flat_map(|f| f.errors.iter().map(|d| d.render(source)))
                    .collect(),
                time: report.total_time(),
                functions: report.functions.len(),
                loc: metrics.loc,
                spec_lines: metrics.spec_lines,
                annot_lines: metrics.annot_lines,
                stats: QueryStats {
                    smt_queries: smt.queries,
                    cache_hits: 0,
                    cross_fn_hits: 0,
                    xbench_hits: 0,
                    cache_misses: smt.queries,
                    model_prunes: 0,
                    sessions: smt.sessions,
                    sat_reuse: smt.sat_reuse,
                    sat_rounds: smt.sat_rounds,
                    theory_checks: smt.theory_checks,
                    pivots: smt.pivots,
                    propagations: smt.propagations,
                    blocked_visits: smt.blocked_visits,
                    db_reductions: smt.db_reductions,
                    col_scans: smt.col_scans,
                    conjunct_retractions: smt.conjunct_retractions,
                    quant_instances: smt.quant_instances,
                    threads: 1,
                    fn_threads: 1,
                    fn_times_ms: Vec::new(),
                    shard_contention: 0,
                    partitions: 0,
                    worker_queries: Vec::new(),
                    lint_checks: report.functions.iter().map(|f| f.lint_checks).sum(),
                    certs_checked: smt.certs_checked,
                    revalidations: 0,
                    unknowns: report.functions.iter().map(|f| f.unknowns).sum(),
                    evictions: 0,
                    budget_exhausted: smt.budget_exhausted,
                },
            })
        }
    }
}

/// Perf-gate tolerances carried inside `BENCH_table1.json`'s `gate` object:
/// the `table1` binary reads them from the *committed* snapshot when
/// comparing a fresh run against it, and [`render_table1_json`] writes them
/// back out — so tuning the gate is one edit to the committed file and the
/// tuned values survive every snapshot refresh.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GateTolerances {
    /// Allowed wall-clock growth factor (per benchmark and in total).
    pub time_factor: f64,
    /// Allowed query-count growth factor (per benchmark and in total).
    pub query_factor: f64,
    /// Per-benchmark wall-clock comparison floor, in seconds: rows cheaper
    /// than this are gated against the floor, not their (noise-dominated)
    /// figure.
    pub min_time_s: f64,
    /// Per-benchmark query-count comparison floor.
    pub min_queries: f64,
}

impl Default for GateTolerances {
    fn default() -> Self {
        GateTolerances {
            time_factor: 2.0,
            query_factor: 1.2,
            min_time_s: 0.05,
            min_queries: 50.0,
        }
    }
}

/// One row of Table 1: the same benchmark under both verifiers.
#[derive(Clone, Debug)]
pub struct TableRow {
    /// Benchmark name.
    pub name: String,
    /// Whether this row is the trusted library interface.
    pub is_library: bool,
    /// Flux outcome.
    pub flux: VerifyOutcome,
    /// Baseline outcome.
    pub baseline: VerifyOutcome,
}

impl TableRow {
    /// Baseline time divided by Flux time (the "order of magnitude" claim of
    /// §5.2).
    pub fn speedup(&self) -> f64 {
        let f = self.flux.time.as_secs_f64().max(1e-9);
        self.baseline.time.as_secs_f64() / f
    }

    /// Annotation overhead of the baseline as a percentage of LOC.
    pub fn baseline_annot_percent(&self) -> usize {
        (self.baseline.annot_lines * 100 + self.baseline.loc / 2)
            .checked_div(self.baseline.loc)
            .unwrap_or(0)
    }
}

/// Runs one benchmark under both verifiers.
pub fn run_benchmark(benchmark: &Benchmark, config: &VerifyConfig) -> TableRow {
    let flux =
        verify_source(benchmark.flux_src, Mode::Flux, config).unwrap_or_else(|e| VerifyOutcome {
            mode: Mode::Flux,
            safe: false,
            errors: e.messages,
            time: Duration::ZERO,
            functions: 0,
            loc: 0,
            spec_lines: 0,
            annot_lines: 0,
            stats: QueryStats::default(),
        });
    let baseline =
        verify_source(benchmark.baseline_src, Mode::Baseline, config).unwrap_or_else(|e| {
            VerifyOutcome {
                mode: Mode::Baseline,
                safe: false,
                errors: e.messages,
                time: Duration::ZERO,
                functions: 0,
                loc: 0,
                spec_lines: 0,
                annot_lines: 0,
                stats: QueryStats::default(),
            }
        });
    TableRow {
        name: benchmark.name.to_owned(),
        is_library: benchmark.is_library,
        flux,
        baseline,
    }
}

/// The trusted library rows of Table 1 (metrics only, no verification).
/// Shared by [`run_table1`] and the daemon-routed mode of the `table1`
/// binary, which verifies the benchmark rows out of process but still
/// reports the library interfaces locally.
pub fn library_rows() -> Vec<TableRow> {
    let mut rows = Vec::new();
    for lib in library() {
        // Library interfaces are trusted: only their metrics are reported.
        let flux_metrics = lib.flux_metrics();
        let baseline_metrics = lib.baseline_metrics();
        rows.push(TableRow {
            name: lib.name.to_owned(),
            is_library: true,
            flux: VerifyOutcome {
                mode: Mode::Flux,
                safe: true,
                errors: vec![],
                time: Duration::ZERO,
                functions: 0,
                loc: flux_metrics.loc,
                spec_lines: flux_metrics.spec_lines,
                annot_lines: flux_metrics.annot_lines,
                stats: QueryStats::default(),
            },
            baseline: VerifyOutcome {
                mode: Mode::Baseline,
                safe: true,
                errors: vec![],
                time: Duration::ZERO,
                functions: 0,
                loc: baseline_metrics.loc,
                spec_lines: baseline_metrics.spec_lines,
                annot_lines: baseline_metrics.annot_lines,
                stats: QueryStats::default(),
            },
        });
    }
    rows
}

/// Runs the entire Table 1 evaluation (library rows + the eight benchmarks).
pub fn run_table1(config: &VerifyConfig) -> Vec<TableRow> {
    let mut rows = library_rows();
    for benchmark in benchmarks() {
        rows.push(run_benchmark(&benchmark, config));
    }
    rows
}

/// The `ok` cell of Table 1: `yes` for verified, `unk` for a run that was
/// cut short by a deadline or budget (inconclusive — never reported as
/// verified), `NO` for a genuine counterexample or frontend error.
fn ok_label(out: &VerifyOutcome) -> &'static str {
    if out.safe {
        "yes"
    } else if out.stats.unknowns > 0 && out.errors.is_empty() {
        "unk"
    } else {
        "NO"
    }
}

/// Renders rows in the layout of the paper's Table 1.
pub fn render_table1(rows: &[TableRow]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<10} | {:>5} {:>5} {:>9} {:>4} | {:>5} {:>5} {:>6} {:>6} {:>9} {:>4} | {:>8}\n",
        "benchmark",
        "LOC",
        "Spec",
        "Time(s)",
        "ok",
        "LOC",
        "Spec",
        "Annot",
        "%LOC",
        "Time(s)",
        "ok",
        "speedup"
    ));
    out.push_str(&format!(
        "{:<10} | {:^26} | {:^42} | \n",
        "", "Flux", "Baseline (program logic)"
    ));
    out.push_str(&"-".repeat(100));
    out.push('\n');
    let mut totals = (0usize, 0usize, 0.0f64, 0usize, 0usize, 0usize, 0.0f64);
    for row in rows {
        out.push_str(&format!(
            "{:<10} | {:>5} {:>5} {:>9.3} {:>4} | {:>5} {:>5} {:>6} {:>5}% {:>9.3} {:>4} | {:>7.1}x\n",
            row.name,
            row.flux.loc,
            row.flux.spec_lines,
            row.flux.time.as_secs_f64(),
            ok_label(&row.flux),
            row.baseline.loc,
            row.baseline.spec_lines,
            row.baseline.annot_lines,
            row.baseline_annot_percent(),
            row.baseline.time.as_secs_f64(),
            ok_label(&row.baseline),
            row.speedup(),
        ));
        if !row.is_library {
            totals.0 += row.flux.loc;
            totals.1 += row.flux.spec_lines;
            totals.2 += row.flux.time.as_secs_f64();
            totals.3 += row.baseline.loc;
            totals.4 += row.baseline.spec_lines;
            totals.5 += row.baseline.annot_lines;
            totals.6 += row.baseline.time.as_secs_f64();
        }
    }
    out.push_str(&"-".repeat(100));
    out.push('\n');
    out.push_str(&format!(
        "{:<10} | {:>5} {:>5} {:>9.3} {:>4} | {:>5} {:>5} {:>6} {:>5}% {:>9.3} {:>4} | {:>7.1}x\n",
        "Total",
        totals.0,
        totals.1,
        totals.2,
        "",
        totals.3,
        totals.4,
        totals.5,
        (totals.5 * 100).checked_div(totals.3).unwrap_or(0),
        totals.6,
        "",
        if totals.2 > 0.0 {
            totals.6 / totals.2
        } else {
            0.0
        },
    ));
    out
}

/// Renders the incremental-engine statistics of a table run: validity
/// queries, cache hit rate and sessions per benchmark, plus totals.  Printed
/// by the `table1` binary after the main table so the engine's perf
/// trajectory is visible across PRs.
pub fn render_query_stats(rows: &[TableRow]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<10} | {:>8} {:>9} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8} {:>6} {:>8} {:>7} {:>4} {:>6} {:>6} {:>7} | {:>8} {:>10}\n",
        "benchmark",
        "queries",
        "hits",
        "xfn-hits",
        "xbench",
        "misses",
        "hit%",
        "prunes",
        "sessions",
        "sat-re",
        "pivots",
        "props",
        "blocked",
        "db-red",
        "colscan",
        "retract",
        "thr",
        "fn-thr",
        "parts",
        "contend",
        "bl-qrys",
        "bl-quants"
    ));
    out.push_str(&"-".repeat(206));
    out.push('\n');
    let mut total = QueryStats::default();
    let mut total_baseline = QueryStats::default();
    for row in rows.iter().filter(|r| !r.is_library) {
        let s = &row.flux.stats;
        let hit_percent = (s.cache_hits * 100).checked_div(s.smt_queries).unwrap_or(0);
        out.push_str(&format!(
            "{:<10} | {:>8} {:>9} {:>8} {:>8} {:>8} {:>7}% {:>8} {:>8} {:>8} {:>8} {:>8} {:>8} {:>6} {:>8} {:>7} {:>4} {:>6} {:>6} {:>7} | {:>8} {:>10}\n",
            row.name,
            s.smt_queries,
            s.cache_hits,
            s.cross_fn_hits,
            s.xbench_hits,
            s.cache_misses,
            hit_percent,
            s.model_prunes,
            s.sessions,
            s.sat_reuse,
            s.pivots,
            s.propagations,
            s.blocked_visits,
            s.db_reductions,
            s.col_scans,
            s.conjunct_retractions,
            s.threads,
            s.fn_threads,
            s.partitions,
            s.shard_contention,
            row.baseline.stats.smt_queries,
            row.baseline.stats.quant_instances,
        ));
        total.smt_queries += s.smt_queries;
        total.cache_hits += s.cache_hits;
        total.cross_fn_hits += s.cross_fn_hits;
        total.xbench_hits += s.xbench_hits;
        total.cache_misses += s.cache_misses;
        total.model_prunes += s.model_prunes;
        total.sessions += s.sessions;
        total.sat_reuse += s.sat_reuse;
        total.pivots += s.pivots;
        total.propagations += s.propagations;
        total.blocked_visits += s.blocked_visits;
        total.db_reductions += s.db_reductions;
        total.col_scans += s.col_scans;
        total.conjunct_retractions += s.conjunct_retractions;
        // Pool *widths* are configuration, not work: aggregate each by
        // maximum, separately — max-merging a single combined figure would
        // misreport effective parallelism once both pools coexist.
        total.threads = total.threads.max(s.threads);
        total.fn_threads = total.fn_threads.max(s.fn_threads);
        total.shard_contention += s.shard_contention;
        total.partitions += s.partitions;
        total.lint_checks += s.lint_checks + row.baseline.stats.lint_checks;
        total.certs_checked += s.certs_checked + row.baseline.stats.certs_checked;
        total.revalidations += s.revalidations;
        total.unknowns += s.unknowns;
        total.evictions += s.evictions;
        total.budget_exhausted += s.budget_exhausted + row.baseline.stats.budget_exhausted;
        total_baseline.smt_queries += row.baseline.stats.smt_queries;
        total_baseline.quant_instances += row.baseline.stats.quant_instances;
    }
    out.push_str(&"-".repeat(206));
    out.push('\n');
    let hit_percent = (total.cache_hits * 100)
        .checked_div(total.smt_queries)
        .unwrap_or(0);
    out.push_str(&format!(
        "{:<10} | {:>8} {:>9} {:>8} {:>8} {:>8} {:>7}% {:>8} {:>8} {:>8} {:>8} {:>8} {:>8} {:>6} {:>8} {:>7} {:>4} {:>6} {:>6} {:>7} | {:>8} {:>10}\n",
        "Total",
        total.smt_queries,
        total.cache_hits,
        total.cross_fn_hits,
        total.xbench_hits,
        total.cache_misses,
        hit_percent,
        total.model_prunes,
        total.sessions,
        total.sat_reuse,
        total.pivots,
        total.propagations,
        total.blocked_visits,
        total.db_reductions,
        total.col_scans,
        total.conjunct_retractions,
        total.threads,
        total.fn_threads,
        total.partitions,
        total.shard_contention,
        total_baseline.smt_queries,
        total_baseline.quant_instances,
    ));
    out.push_str(&format!(
        "audit (both verifiers): lint_checks={} certs_checked={} revalidations={} \
         (all zero unless FLUX_AUDIT / --audit raises the tier)\n",
        total.lint_checks, total.certs_checked, total.revalidations,
    ));
    out.push_str(&format!(
        "robustness (both verifiers): unknowns={} evictions={} budget_exhausted={} \
         (all zero unless FLUX_DEADLINE_MS / FLUX_CACHE_CAP / --deadline-ms / --budget \
         constrain the run)\n",
        total.unknowns, total.evictions, total.budget_exhausted,
    ));
    let fn_time_total: usize = rows
        .iter()
        .filter(|r| !r.is_library)
        .flat_map(|r| r.flux.stats.fn_times_ms.iter())
        .sum();
    let fn_time_max: usize = rows
        .iter()
        .filter(|r| !r.is_library)
        .flat_map(|r| r.flux.stats.fn_times_ms.iter())
        .copied()
        .max()
        .unwrap_or(0);
    out.push_str(&format!(
        "fn_parallel (flux): fn_threads={} shard_contention={} \
         fn_time_ms_total={} fn_time_ms_max={} \
         (per-function wall-clock vector in --json as fn_times_ms)\n",
        total.fn_threads, total.shard_contention, fn_time_total, fn_time_max,
    ));
    out
}

/// Renders a table run as machine-readable JSON (written by the `table1`
/// binary to `BENCH_table1.json` with `--json`): per-benchmark wall-clock
/// and the full [`QueryStats`] of both verifiers, so the perf trajectory —
/// queries issued, counter-model prunes, persistent-SAT reuse — can be
/// tracked across PRs by diffing one file.
///
/// The writer is hand-rolled because the workspace builds without external
/// crates; every emitted value is a number, boolean or benchmark name, so no
/// string escaping is needed.
pub fn render_table1_json(rows: &[TableRow], gate: &GateTolerances) -> String {
    fn outcome_json(out: &VerifyOutcome, indent: &str) -> String {
        let s = &out.stats;
        let worker_queries = s
            .worker_queries
            .iter()
            .map(|q| q.to_string())
            .collect::<Vec<_>>()
            .join(", ");
        format!(
            "{{\n{indent}  \"safe\": {},\n{indent}  \"time_s\": {:.6},\n{indent}  \
             \"functions\": {},\n{indent}  \"smt_queries\": {},\n{indent}  \
             \"cache_hits\": {},\n{indent}  \"cross_fn_hits\": {},\n{indent}  \
             \"xbench_hits\": {},\n{indent}  \
             \"cache_misses\": {},\n{indent}  \"model_prunes\": {},\n{indent}  \
             \"sessions\": {},\n{indent}  \"sat_reuse\": {},\n{indent}  \
             \"sat_rounds\": {},\n{indent}  \"theory_checks\": {},\n{indent}  \
             \"pivots\": {},\n{indent}  \"propagations\": {},\n{indent}  \
             \"blocked_visits\": {},\n{indent}  \"db_reductions\": {},\n{indent}  \
             \"col_scans\": {},\n{indent}  \"conjunct_retractions\": {},\n{indent}  \
             \"quant_instances\": {},\n{indent}  \"threads\": {},\n{indent}  \
             \"partitions\": {},\n{indent}  \"lint_checks\": {},\n{indent}  \
             \"certs_checked\": {},\n{indent}  \"revalidations\": {},\n{indent}  \
             \"unknowns\": {},\n{indent}  \"evictions\": {},\n{indent}  \
             \"budget_exhausted\": {},\n{indent}  \
             \"fn_threads\": {},\n{indent}  \
             \"shard_contention\": {},\n{indent}  \
             \"fn_times_ms\": [{}],\n{indent}  \
             \"worker_queries\": [{}]\n{indent}}}",
            out.safe,
            out.time.as_secs_f64(),
            out.functions,
            s.smt_queries,
            s.cache_hits,
            s.cross_fn_hits,
            s.xbench_hits,
            s.cache_misses,
            s.model_prunes,
            s.sessions,
            s.sat_reuse,
            s.sat_rounds,
            s.theory_checks,
            s.pivots,
            s.propagations,
            s.blocked_visits,
            s.db_reductions,
            s.col_scans,
            s.conjunct_retractions,
            s.quant_instances,
            s.threads,
            s.partitions,
            s.lint_checks,
            s.certs_checked,
            s.revalidations,
            s.unknowns,
            s.evictions,
            s.budget_exhausted,
            s.fn_threads,
            s.shard_contention,
            s.fn_times_ms
                .iter()
                .map(|t| t.to_string())
                .collect::<Vec<_>>()
                .join(", "),
            worker_queries,
        )
    }
    let mut out = String::from("{\n  \"benchmarks\": [\n");
    let mut first = true;
    let mut flux_total = 0.0f64;
    let mut baseline_total = 0.0f64;
    for row in rows.iter().filter(|r| !r.is_library) {
        if !first {
            out.push_str(",\n");
        }
        first = false;
        out.push_str(&format!(
            "    {{\n      \"name\": \"{}\",\n      \"flux\": {},\n      \"baseline\": {}\n    }}",
            row.name,
            outcome_json(&row.flux, "      "),
            outcome_json(&row.baseline, "      "),
        ));
        flux_total += row.flux.time.as_secs_f64();
        baseline_total += row.baseline.time.as_secs_f64();
    }
    // The gate tolerances round-trip through the snapshot (see
    // [`GateTolerances`]): the values written here are whatever the caller
    // read from the previous committed file, so a hand-tuned gate survives
    // every refresh instead of reverting to defaults.
    out.push_str(&format!(
        "\n  ],\n  \"totals\": {{\n    \"flux_time_s\": {flux_total:.6},\n    \
         \"baseline_time_s\": {baseline_total:.6}\n  }},\n  \"gate\": {{\n    \
         \"time_factor\": {},\n    \"query_factor\": {},\n    \
         \"min_time_s\": {},\n    \"min_queries\": {}\n  }}\n}}\n",
        gate.time_factor, gate.query_factor, gate.min_time_s, gate.min_queries,
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quickstart_example_is_safe_under_both_modes() {
        let src = r#"
            #[flux::sig(fn(i32{v: v > 0}) -> i32{v: v > 1})]
            fn bump(x: i32) -> i32 { x + 1 }
        "#;
        let flux = verify_source(src, Mode::Flux, &VerifyConfig::default()).unwrap();
        assert!(flux.safe);
        let src_baseline = r#"
            #[requires(x > 0)]
            #[ensures(result > 1)]
            fn bump(x: i32) -> i32 { x + 1 }
        "#;
        let baseline =
            verify_source(src_baseline, Mode::Baseline, &VerifyConfig::default()).unwrap();
        assert!(baseline.safe);
    }

    #[test]
    fn frontend_errors_are_reported() {
        let err = verify_source("fn broken( {", Mode::Flux, &VerifyConfig::default());
        assert!(err.is_err());
    }

    #[test]
    fn unsafe_programs_are_flagged_in_both_modes() {
        let src = r#"
            #[flux::sig(fn(v: &RVec<i32>[@n], usize) -> i32)]
            fn read(v: &RVec<i32>, i: usize) -> i32 { v.get(i) }
        "#;
        let flux = verify_source(src, Mode::Flux, &VerifyConfig::default()).unwrap();
        assert!(!flux.safe);
        let src_baseline = r#"
            fn read(v: RVec<i32>, i: usize) -> i32 { v.get(i) }
        "#;
        let baseline =
            verify_source(src_baseline, Mode::Baseline, &VerifyConfig::default()).unwrap();
        assert!(!baseline.safe);
    }

    #[test]
    fn table_rendering_contains_all_rows() {
        // Use a single small benchmark to keep the test fast.
        let b = benchmark("dotprod").unwrap();
        let row = run_benchmark(&b, &VerifyConfig::default());
        let rendered = render_table1(std::slice::from_ref(&row));
        assert!(rendered.contains("dotprod"));
        assert!(rendered.contains("Flux"));
    }

    #[test]
    fn dotprod_benchmark_verifies_under_both_verifiers() {
        let b = benchmark("dotprod").unwrap();
        let row = run_benchmark(&b, &VerifyConfig::default());
        assert!(row.flux.safe, "flux flavour failed: {:?}", row.flux.errors);
        assert!(
            row.baseline.safe,
            "baseline flavour failed: {:?}",
            row.baseline.errors
        );
        assert_eq!(row.flux.annot_lines, 0);
        assert!(row.baseline.annot_lines > 0);
    }
}
