//! Refined types — the internal representation of λ_LR types (§3.1).

use flux_fixpoint::{KVarApp, KVid};
use flux_logic::{Expr, Name, Sort};
use std::fmt;

/// Reference kinds, extending Rust's `&`/`&mut` with the `&strg` strong
/// references of §2.2.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RefKind {
    /// `&T` — shared, read-only.
    Shared,
    /// `&mut T` — mutable, weak updates only (the referent's type is
    /// preserved).
    Mut,
    /// `&strg T` — mutable with strong updates; the updated type is reported
    /// through an `ensures` clause.
    Strg,
}

/// A base type that can be refined by indices.
#[derive(Clone, Debug, PartialEq)]
pub enum BaseTy {
    /// Signed integers (`i32`, `i64`, …), indexed by their value.
    Int,
    /// Unsigned integers (`usize`, `u32`, …), indexed by their value.
    Uint,
    /// Booleans, indexed by their value.
    Bool,
    /// Floats; carries no refinement index.
    Float,
    /// `RVec<T>`, indexed by its length.
    Vec(Box<RTy>),
    /// `RMat<T>`, indexed by (rows, cols).
    Mat(Box<RTy>),
}

impl BaseTy {
    /// The sorts of this base type's indices.
    pub fn index_sorts(&self) -> Vec<Sort> {
        match self {
            BaseTy::Int | BaseTy::Uint => vec![Sort::Int],
            BaseTy::Bool => vec![Sort::Bool],
            BaseTy::Float => vec![],
            BaseTy::Vec(_) => vec![Sort::Int],
            BaseTy::Mat(_) => vec![Sort::Int, Sort::Int],
        }
    }

    /// True if the indices of this base type are non-negative by
    /// construction (sizes, unsigned values).
    pub fn indices_nonneg(&self) -> bool {
        matches!(self, BaseTy::Uint | BaseTy::Vec(_) | BaseTy::Mat(_))
    }

    /// The element type, for containers.
    pub fn element(&self) -> Option<&RTy> {
        match self {
            BaseTy::Vec(t) | BaseTy::Mat(t) => Some(t),
            _ => None,
        }
    }
}

/// The refinement attached to an existential type: either a concrete
/// predicate or an unknown κ application (a *template* awaiting inference).
#[derive(Clone, Debug, PartialEq)]
pub enum Refine {
    /// A concrete predicate over the bound index variables.
    Pred(Expr),
    /// A κ application; its arguments are the bound index variables followed
    /// by scope variables chosen at template-creation time.
    KVar(KVarApp),
}

impl Refine {
    /// The trivial refinement.
    pub fn top() -> Refine {
        Refine::Pred(Expr::tt())
    }
}

/// A refined type.
#[derive(Clone, Debug, PartialEq)]
pub enum RTy {
    /// `B[e₁, …, eₙ]` — a base type indexed by known refinement expressions.
    Indexed {
        /// The base type.
        base: BaseTy,
        /// The indices (one per index sort of the base).
        indices: Vec<Expr>,
    },
    /// `{v̄. B[v̄] | p}` — an existential type.
    Exists {
        /// The base type.
        base: BaseTy,
        /// The bound index variables (one per index sort).
        binders: Vec<Name>,
        /// The refinement.
        refine: Refine,
    },
    /// A reference.
    Ref {
        /// The reference kind.
        kind: RefKind,
        /// The referent type.
        inner: Box<RTy>,
    },
    /// The unit type.
    Unit,
    /// Uninitialised memory (the ☇ of the paper).
    Uninit,
}

impl RTy {
    /// An indexed scalar type with a single index.
    pub fn indexed(base: BaseTy, index: Expr) -> RTy {
        RTy::Indexed {
            base,
            indices: vec![index],
        }
    }

    /// The unrefined ("top") existential type over a base.
    pub fn exists_top(base: BaseTy) -> RTy {
        let binders = base
            .index_sorts()
            .iter()
            .enumerate()
            .map(|(i, _)| Name::fresh(&format!("v{i}")))
            .collect();
        RTy::Exists {
            base,
            binders,
            refine: Refine::top(),
        }
    }

    /// `i32{v: v >= 0}` — the `nat` alias from the paper.
    pub fn nat() -> RTy {
        let v = Name::fresh("v");
        RTy::Exists {
            base: BaseTy::Int,
            binders: vec![v],
            refine: Refine::Pred(Expr::ge(Expr::Var(v), Expr::int(0))),
        }
    }

    /// An existential scalar with an explicit predicate over a single
    /// binder.
    pub fn exists(base: BaseTy, binder: Name, pred: Expr) -> RTy {
        RTy::Exists {
            base,
            binders: vec![binder],
            refine: Refine::Pred(pred),
        }
    }

    /// An existential whose refinement is an unknown κ application.
    pub fn exists_kvar(base: BaseTy, binders: Vec<Name>, kvid: KVid, scope: Vec<Expr>) -> RTy {
        let mut args: Vec<Expr> = binders.iter().map(|b| Expr::Var(*b)).collect();
        args.extend(scope);
        RTy::Exists {
            base,
            binders,
            refine: Refine::KVar(KVarApp::new(kvid, args)),
        }
    }

    /// A mutable reference.
    pub fn ref_mut(inner: RTy) -> RTy {
        RTy::Ref {
            kind: RefKind::Mut,
            inner: Box::new(inner),
        }
    }

    /// A shared reference.
    pub fn ref_shr(inner: RTy) -> RTy {
        RTy::Ref {
            kind: RefKind::Shared,
            inner: Box::new(inner),
        }
    }

    /// A strong reference.
    pub fn ref_strg(inner: RTy) -> RTy {
        RTy::Ref {
            kind: RefKind::Strg,
            inner: Box::new(inner),
        }
    }

    /// The base type, if this is a (possibly existential) base type.
    pub fn base(&self) -> Option<&BaseTy> {
        match self {
            RTy::Indexed { base, .. } | RTy::Exists { base, .. } => Some(base),
            _ => None,
        }
    }

    /// True if the type is a scalar (integer or boolean) indexed type.
    pub fn is_scalar(&self) -> bool {
        matches!(self.base(), Some(BaseTy::Int | BaseTy::Uint | BaseTy::Bool))
    }

    /// Applies a substitution to every index expression and refinement in
    /// the type.
    pub fn subst(&self, subst: &flux_logic::Subst) -> RTy {
        match self {
            RTy::Indexed { base, indices } => RTy::Indexed {
                base: base.subst(subst),
                indices: indices.iter().map(|e| subst.apply(e)).collect(),
            },
            RTy::Exists {
                base,
                binders,
                refine,
            } => RTy::Exists {
                base: base.subst(subst),
                binders: binders.clone(),
                refine: match refine {
                    Refine::Pred(p) => Refine::Pred(subst.apply(p)),
                    Refine::KVar(app) => Refine::KVar(KVarApp::new(
                        app.kvid,
                        app.args.iter().map(|a| subst.apply(a)).collect(),
                    )),
                },
            },
            RTy::Ref { kind, inner } => RTy::Ref {
                kind: *kind,
                inner: Box::new(inner.subst(subst)),
            },
            RTy::Unit => RTy::Unit,
            RTy::Uninit => RTy::Uninit,
        }
    }
}

impl BaseTy {
    fn subst(&self, subst: &flux_logic::Subst) -> BaseTy {
        match self {
            BaseTy::Vec(t) => BaseTy::Vec(Box::new(t.subst(subst))),
            BaseTy::Mat(t) => BaseTy::Mat(Box::new(t.subst(subst))),
            other => other.clone(),
        }
    }
}

impl fmt::Display for BaseTy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BaseTy::Int => write!(f, "i32"),
            BaseTy::Uint => write!(f, "usize"),
            BaseTy::Bool => write!(f, "bool"),
            BaseTy::Float => write!(f, "f32"),
            BaseTy::Vec(t) => write!(f, "RVec<{t}>"),
            BaseTy::Mat(t) => write!(f, "RMat<{t}>"),
        }
    }
}

impl fmt::Display for RTy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RTy::Indexed { base, indices } => {
                write!(f, "{base}[")?;
                for (i, idx) in indices.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{idx}")?;
                }
                write!(f, "]")
            }
            RTy::Exists {
                base,
                binders,
                refine,
            } => {
                write!(f, "{base}{{")?;
                for (i, b) in binders.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{b}")?;
                }
                match refine {
                    Refine::Pred(p) => write!(f, ": {p}}}"),
                    Refine::KVar(app) => write!(f, ": {app}}}"),
                }
            }
            RTy::Ref { kind, inner } => match kind {
                RefKind::Shared => write!(f, "&{inner}"),
                RefKind::Mut => write!(f, "&mut {inner}"),
                RefKind::Strg => write!(f, "&strg {inner}"),
            },
            RTy::Unit => write!(f, "()"),
            RTy::Uninit => write!(f, "uninit"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flux_logic::Subst;

    #[test]
    fn index_sorts_per_base() {
        assert_eq!(BaseTy::Int.index_sorts(), vec![Sort::Int]);
        assert_eq!(BaseTy::Bool.index_sorts(), vec![Sort::Bool]);
        assert!(BaseTy::Float.index_sorts().is_empty());
        assert_eq!(
            BaseTy::Mat(Box::new(RTy::Unit)).index_sorts(),
            vec![Sort::Int, Sort::Int]
        );
    }

    #[test]
    fn nonnegative_index_bases() {
        assert!(BaseTy::Uint.indices_nonneg());
        assert!(BaseTy::Vec(Box::new(RTy::Unit)).indices_nonneg());
        assert!(!BaseTy::Int.indices_nonneg());
    }

    #[test]
    fn display_of_indexed_and_existential() {
        let n = Name::intern("n");
        let t = RTy::indexed(BaseTy::Int, Expr::Var(n) + Expr::int(1));
        assert_eq!(t.to_string(), "i32[n + 1]");
        let nat = RTy::nat();
        assert!(nat.to_string().starts_with("i32{"));
        let vecty = RTy::indexed(
            BaseTy::Vec(Box::new(RTy::exists_top(BaseTy::Float))),
            Expr::Var(n),
        );
        let printed = vecty.to_string();
        assert!(
            printed.starts_with("RVec<f32"),
            "unexpected display {printed}"
        );
        assert!(printed.ends_with("[n]"), "unexpected display {printed}");
    }

    #[test]
    fn substitution_rewrites_indices() {
        let n = Name::intern("n");
        let m = Name::intern("m");
        let t = RTy::indexed(BaseTy::Uint, Expr::Var(n));
        let out = t.subst(&Subst::single(n, Expr::Var(m) + Expr::int(2)));
        assert_eq!(out.to_string(), "usize[m + 2]");
    }

    #[test]
    fn substitution_descends_into_element_types() {
        let n = Name::intern("n");
        let elem = RTy::indexed(BaseTy::Int, Expr::Var(n));
        let t = RTy::indexed(BaseTy::Vec(Box::new(elem)), Expr::int(3));
        let out = t.subst(&Subst::single(n, Expr::int(7)));
        assert_eq!(out.to_string(), "RVec<i32[7]>[3]");
    }

    #[test]
    fn kvar_templates_apply_binders_first() {
        let mut kvars = flux_fixpoint::KVarStore::new();
        let k = kvars.fresh(vec![Sort::Int, Sort::Int]);
        let b = Name::intern("b0");
        let t = RTy::exists_kvar(BaseTy::Int, vec![b], k, vec![Expr::var(Name::intern("n"))]);
        match t {
            RTy::Exists {
                refine: Refine::KVar(app),
                ..
            } => {
                assert_eq!(app.args.len(), 2);
                assert_eq!(app.args[0], Expr::Var(b));
            }
            other => panic!("expected kvar existential, got {other:?}"),
        }
    }

    #[test]
    fn scalar_predicate() {
        assert!(RTy::indexed(BaseTy::Int, Expr::int(3)).is_scalar());
        assert!(!RTy::Unit.is_scalar());
        assert!(!RTy::indexed(BaseTy::Vec(Box::new(RTy::Unit)), Expr::int(0)).is_scalar());
    }
}
