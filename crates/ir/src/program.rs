//! Resolved programs: every function paired with its desugared signature.

use crate::desugar::{desugar_fn_sig, FnSig};
use flux_syntax::ast::{FnDef, Program};
use flux_syntax::span::Diagnostic;
use std::collections::BTreeMap;

/// A function together with its desugared signature.
#[derive(Clone, Debug)]
pub struct ResolvedFn {
    /// The surface definition.
    pub def: FnDef,
    /// The desugared signature (defaulted when the function carries no
    /// Flux annotation).
    pub sig: FnSig,
}

/// A resolved program.
#[derive(Clone, Debug, Default)]
pub struct ResolvedProgram {
    functions: BTreeMap<String, ResolvedFn>,
    order: Vec<String>,
}

impl ResolvedProgram {
    /// Resolves every function of `program`, or returns all diagnostics
    /// encountered.
    pub fn resolve(program: &Program) -> Result<ResolvedProgram, Vec<Diagnostic>> {
        let mut out = ResolvedProgram::default();
        let mut errors = Vec::new();
        for def in &program.functions {
            if out.functions.contains_key(&def.name) {
                errors.push(Diagnostic::error(
                    format!("duplicate function `{}`", def.name),
                    def.span,
                ));
                continue;
            }
            match desugar_fn_sig(def) {
                Ok(sig) => {
                    out.order.push(def.name.clone());
                    out.functions.insert(
                        def.name.clone(),
                        ResolvedFn {
                            def: def.clone(),
                            sig,
                        },
                    );
                }
                Err(err) => errors.push(err),
            }
        }
        if errors.is_empty() {
            Ok(out)
        } else {
            Err(errors)
        }
    }

    /// Looks up a function by name.
    pub fn function(&self, name: &str) -> Option<&ResolvedFn> {
        self.functions.get(name)
    }

    /// Iterates over the functions in source order.
    pub fn iter(&self) -> impl Iterator<Item = &ResolvedFn> {
        self.order.iter().map(|name| &self.functions[name])
    }

    /// Number of functions.
    pub fn len(&self) -> usize {
        self.functions.len()
    }

    /// True if the program has no functions.
    pub fn is_empty(&self) -> bool {
        self.functions.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flux_syntax::parse_program;

    #[test]
    fn resolves_multiple_functions_in_order() {
        let program = parse_program(
            r#"
            #[flux::sig(fn(i32[@n]) -> i32[n + 1])]
            fn succ(n: i32) -> i32 { n + 1 }

            fn untyped(x: i32) -> i32 { x }
            "#,
        )
        .unwrap();
        let resolved = ResolvedProgram::resolve(&program).unwrap();
        assert_eq!(resolved.len(), 2);
        let names: Vec<&str> = resolved.iter().map(|f| f.def.name.as_str()).collect();
        assert_eq!(names, vec!["succ", "untyped"]);
        assert!(resolved.function("succ").is_some());
        assert!(resolved.function("missing").is_none());
    }

    #[test]
    fn duplicate_functions_are_reported() {
        let program = parse_program(
            r#"
            fn f() { }
            fn f() { }
            "#,
        )
        .unwrap();
        let errors = ResolvedProgram::resolve(&program).unwrap_err();
        assert_eq!(errors.len(), 1);
        assert!(errors[0].message.contains("duplicate"));
    }

    #[test]
    fn bad_signatures_are_collected() {
        let program = parse_program(
            r#"
            #[flux::sig(fn(i32[@n], i32[@m]) -> i32[n])]
            fn f(x: i32) -> i32 { x }

            #[flux::sig(fn(i32[@a]) -> i32[a])]
            fn ok(x: i32) -> i32 { x }
            "#,
        )
        .unwrap();
        let errors = ResolvedProgram::resolve(&program).unwrap_err();
        assert_eq!(errors.len(), 1);
    }
}
