//! The "middle" IR of the Flux reproduction: refined types, desugared
//! function signatures and resolved programs.
//!
//! The real Flux operates on rustc's MIR after type and borrow checking.
//! This reproduction works directly on the (already structured) surface AST;
//! what this crate contributes is the *refined type* layer of λ_LR:
//!
//! * [`RTy`] — indexed types `B[e]`, existential types `{v. B[v] | p}`,
//!   references (`&`, `&mut` and the strong `&strg`), and κ-templated
//!   existentials used during inference,
//! * [`FnSig`] — desugared refined function signatures with refinement
//!   parameters and `ensures` clauses, and
//! * [`ResolvedProgram`] — a program with every function's signature
//!   desugared and sort-checked.
//!
//! # Example
//!
//! ```
//! let src = r#"
//!     #[flux::sig(fn(x: &strg i32[@n]) ensures *x: i32[n + 1])]
//!     fn incr(x: &mut i32) { *x += 1; }
//! "#;
//! let program = flux_syntax::parse_program(src).unwrap();
//! let resolved = flux_ir::ResolvedProgram::resolve(&program).unwrap();
//! let incr = resolved.function("incr").unwrap();
//! assert_eq!(incr.sig.ensures.len(), 1);
//! ```

#![warn(missing_docs)]

pub mod desugar;
pub mod program;
pub mod rty;

pub use desugar::{default_rty_of_rust_ty, default_sig, desugar_fn_sig, FnSig};
pub use program::{ResolvedFn, ResolvedProgram};
pub use rty::{BaseTy, RTy, RefKind, Refine};
