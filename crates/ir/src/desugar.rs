//! Desugaring of surface `#[flux::sig(...)]` annotations into internal
//! function signatures over refined types.

use crate::rty::{BaseTy, RTy, RefKind};
use flux_logic::{Expr, Name, Sort, SortCtx};
use flux_syntax::ast::{self, FluxSig, IndexArg, RTyAnnot, RefinementAnnot, RustTy};
use flux_syntax::span::{Diagnostic, Span};

/// A desugared function signature.
#[derive(Clone, Debug, PartialEq)]
pub struct FnSig {
    /// Refinement parameters bound with `@name`, with their sorts, in order
    /// of first occurrence.
    pub refine_params: Vec<(Name, Sort)>,
    /// Program-level parameter names (one per parameter).
    pub param_names: Vec<String>,
    /// Refined parameter types.
    pub params: Vec<RTy>,
    /// Refined return type.
    pub ret: RTy,
    /// `ensures` clauses: (parameter position, updated referent type).
    pub ensures: Vec<(usize, RTy)>,
}

impl FnSig {
    /// The sort context induced by the refinement parameters.
    pub fn refine_ctx(&self) -> SortCtx {
        let mut ctx = SortCtx::new();
        for (name, sort) in &self.refine_params {
            ctx.push(*name, *sort);
        }
        ctx
    }
}

/// Desugars the signature of `def`, combining its Rust parameter types with
/// the `#[flux::sig(...)]` annotation if present.
pub fn desugar_fn_sig(def: &ast::FnDef) -> Result<FnSig, Diagnostic> {
    match &def.flux_sig {
        Some(sig) => desugar_annotated(def, sig),
        None => Ok(default_sig(def)),
    }
}

/// The signature used when a function has no Flux annotation: every type is
/// unrefined.
pub fn default_sig(def: &ast::FnDef) -> FnSig {
    FnSig {
        refine_params: Vec::new(),
        param_names: def.params.iter().map(|p| p.name.clone()).collect(),
        params: def
            .params
            .iter()
            .map(|p| default_rty_of_rust_ty(&p.ty))
            .collect(),
        ret: default_rty_of_rust_ty(&def.ret),
        ensures: Vec::new(),
    }
}

/// The unrefined refined-type corresponding to a surface Rust type.
pub fn default_rty_of_rust_ty(ty: &RustTy) -> RTy {
    match ty {
        RustTy::Int => RTy::exists_top(BaseTy::Int),
        RustTy::Uint => RTy::exists_top(BaseTy::Uint),
        RustTy::Bool => RTy::exists_top(BaseTy::Bool),
        RustTy::Float => RTy::exists_top(BaseTy::Float),
        RustTy::Unit => RTy::Unit,
        RustTy::RVec(elem) => RTy::exists_top(BaseTy::Vec(Box::new(default_rty_of_rust_ty(elem)))),
        RustTy::RMat(elem) => RTy::exists_top(BaseTy::Mat(Box::new(default_rty_of_rust_ty(elem)))),
        RustTy::Ref(mutability, inner) => {
            let inner = default_rty_of_rust_ty(inner);
            match mutability {
                ast::Mutability::Shared => RTy::ref_shr(inner),
                ast::Mutability::Mutable => RTy::ref_mut(inner),
            }
        }
    }
}

fn desugar_annotated(def: &ast::FnDef, sig: &FluxSig) -> Result<FnSig, Diagnostic> {
    if sig.params.len() != def.params.len() {
        return Err(Diagnostic::error(
            format!(
                "flux signature has {} parameters but the function has {}",
                sig.params.len(),
                def.params.len()
            ),
            sig.span,
        ));
    }
    let mut cx = DesugarCx {
        refine_params: Vec::new(),
        span: sig.span,
    };
    let mut params = Vec::new();
    let mut param_names = Vec::new();
    for (annot, param) in sig.params.iter().zip(&def.params) {
        let name = annot.name.clone().unwrap_or_else(|| param.name.clone());
        param_names.push(name);
        params.push(cx.rty(&annot.ty)?);
    }
    let ret = match &sig.ret {
        Some(annot) => cx.rty(annot)?,
        None => RTy::Unit,
    };
    let mut ensures = Vec::new();
    for clause in &sig.ensures {
        let position = param_names
            .iter()
            .position(|n| n == &clause.param)
            .ok_or_else(|| {
                Diagnostic::error(
                    format!("`ensures` refers to unknown parameter `{}`", clause.param),
                    sig.span,
                )
            })?;
        ensures.push((position, cx.rty(&clause.ty)?));
    }
    // Sort-check every index expression against the refinement parameters.
    let fnsig = FnSig {
        refine_params: cx.refine_params,
        param_names,
        params,
        ret,
        ensures,
    };
    sort_check_sig(&fnsig, sig.span)?;
    Ok(fnsig)
}

struct DesugarCx {
    refine_params: Vec<(Name, Sort)>,
    span: Span,
}

impl DesugarCx {
    fn bind(&mut self, name: Name, sort: Sort) {
        if !self.refine_params.iter().any(|(n, _)| *n == name) {
            self.refine_params.push((name, sort));
        }
    }

    fn rty(&mut self, annot: &RTyAnnot) -> Result<RTy, Diagnostic> {
        match annot {
            RTyAnnot::Ref { kind, inner } => {
                let inner = self.rty(inner)?;
                let kind = match kind {
                    ast::RefKind::Shared => RefKind::Shared,
                    ast::RefKind::Mut => RefKind::Mut,
                    ast::RefKind::Strg => RefKind::Strg,
                };
                Ok(RTy::Ref {
                    kind,
                    inner: Box::new(inner),
                })
            }
            RTyAnnot::Base {
                base,
                args,
                refinement,
            } => {
                // Aliases first.
                if base == "nat" && refinement.is_none() && args.is_empty() {
                    return Ok(RTy::nat());
                }
                let base_ty = match base.as_str() {
                    "i8" | "i16" | "i32" | "i64" | "i128" | "isize" => BaseTy::Int,
                    "u8" | "u16" | "u32" | "u64" | "u128" | "usize" => BaseTy::Uint,
                    "bool" => BaseTy::Bool,
                    "f32" | "f64" => BaseTy::Float,
                    "RVec" => {
                        let elem = match args.first() {
                            Some(a) => self.rty(a)?,
                            None => RTy::exists_top(BaseTy::Float),
                        };
                        BaseTy::Vec(Box::new(elem))
                    }
                    "RMat" => {
                        let elem = match args.first() {
                            Some(a) => self.rty(a)?,
                            None => RTy::exists_top(BaseTy::Float),
                        };
                        BaseTy::Mat(Box::new(elem))
                    }
                    other => {
                        return Err(Diagnostic::error(
                            format!("unknown base type `{other}` in flux signature"),
                            self.span,
                        ))
                    }
                };
                match refinement {
                    None => Ok(RTy::exists_top(base_ty)),
                    Some(RefinementAnnot::Indices(indices)) => {
                        let sorts = base_ty.index_sorts();
                        if sorts.is_empty() {
                            return Err(Diagnostic::error(
                                format!("type `{base}` cannot be indexed"),
                                self.span,
                            ));
                        }
                        if indices.len() != sorts.len() {
                            return Err(Diagnostic::error(
                                format!(
                                    "type `{base}` expects {} indices but {} were given",
                                    sorts.len(),
                                    indices.len()
                                ),
                                self.span,
                            ));
                        }
                        let mut exprs = Vec::new();
                        for (arg, sort) in indices.iter().zip(sorts) {
                            match arg {
                                IndexArg::Bind(name) => {
                                    let name = Name::intern(name);
                                    self.bind(name, sort);
                                    exprs.push(Expr::Var(name));
                                }
                                IndexArg::Expr(e) => exprs.push(e.clone()),
                            }
                        }
                        Ok(RTy::Indexed {
                            base: base_ty,
                            indices: exprs,
                        })
                    }
                    Some(RefinementAnnot::Exists { binder, pred }) => {
                        let sorts = base_ty.index_sorts();
                        if sorts.len() != 1 {
                            return Err(Diagnostic::error(
                                format!("`{{v: p}}` refinements require a single index, but `{base}` has {}", sorts.len()),
                                self.span,
                            ));
                        }
                        Ok(RTy::exists(base_ty, Name::intern(binder), pred.clone()))
                    }
                }
            }
        }
    }
}

/// Checks that every index expression and refinement predicate in the
/// signature is well-sorted with respect to the refinement parameters.
fn sort_check_sig(sig: &FnSig, span: Span) -> Result<(), Diagnostic> {
    let ctx = sig.refine_ctx();
    let check_rty = |ty: &RTy| -> Result<(), Diagnostic> { sort_check_rty(ty, &ctx, span) };
    for ty in &sig.params {
        check_rty(ty)?;
    }
    check_rty(&sig.ret)?;
    for (_, ty) in &sig.ensures {
        check_rty(ty)?;
    }
    Ok(())
}

fn sort_check_rty(ty: &RTy, ctx: &SortCtx, span: Span) -> Result<(), Diagnostic> {
    match ty {
        RTy::Indexed { base, indices } => {
            for (idx, sort) in indices.iter().zip(base.index_sorts()) {
                let mut local = ctx.clone();
                // Uninterpreted spec functions (`vlen`, `sel`) are allowed in
                // signatures used by the baseline; register them.
                local.declare_fn(Name::intern("vlen"), vec![Sort::Array], Sort::Int);
                local.declare_fn(Name::intern("sel"), vec![Sort::Array, Sort::Int], Sort::Int);
                match idx.sort_of(&local) {
                    Ok(found) if found == sort => {}
                    Ok(found) => {
                        return Err(Diagnostic::error(
                            format!("index `{idx}` has sort {found}, expected {sort}"),
                            span,
                        ))
                    }
                    Err(err) => {
                        return Err(Diagnostic::error(
                            format!("ill-sorted index `{idx}`: {err}"),
                            span,
                        ))
                    }
                }
            }
            if let Some(elem) = base.element() {
                sort_check_rty(elem, ctx, span)?;
            }
            Ok(())
        }
        RTy::Exists {
            base,
            binders,
            refine,
        } => {
            let mut local = ctx.clone();
            for (binder, sort) in binders.iter().zip(base.index_sorts()) {
                local.push(*binder, sort);
            }
            if let crate::rty::Refine::Pred(p) = refine {
                match p.sort_of(&local) {
                    Ok(Sort::Bool) => {}
                    Ok(other) => {
                        return Err(Diagnostic::error(
                            format!("refinement `{p}` has sort {other}, expected bool"),
                            span,
                        ))
                    }
                    Err(err) => {
                        return Err(Diagnostic::error(
                            format!("ill-sorted refinement `{p}`: {err}"),
                            span,
                        ))
                    }
                }
            }
            if let Some(elem) = base.element() {
                sort_check_rty(elem, ctx, span)?;
            }
            Ok(())
        }
        RTy::Ref { inner, .. } => sort_check_rty(inner, ctx, span),
        RTy::Unit | RTy::Uninit => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flux_syntax::parse_program;

    fn sig_of(src: &str) -> FnSig {
        let program = parse_program(src).unwrap();
        desugar_fn_sig(&program.functions[0]).unwrap()
    }

    #[test]
    fn desugars_is_pos() {
        let sig = sig_of(
            r#"
            #[flux::sig(fn(i32[@n]) -> bool[n > 0])]
            fn is_pos(n: i32) -> bool { true }
            "#,
        );
        assert_eq!(sig.refine_params.len(), 1);
        assert_eq!(sig.refine_params[0].1, Sort::Int);
        assert_eq!(sig.params[0].to_string(), "i32[n]");
        assert_eq!(sig.ret.to_string(), "bool[n > 0]");
    }

    #[test]
    fn desugars_nat_alias_and_existentials() {
        let sig = sig_of(
            r#"
            #[flux::sig(fn(&mut nat) -> i32{v: v >= 0})]
            fn decr(x: &mut i32) -> i32 { 0 }
            "#,
        );
        assert!(matches!(
            sig.params[0],
            RTy::Ref {
                kind: RefKind::Mut,
                ..
            }
        ));
        assert!(sig.ret.to_string().contains("v >= 0"));
    }

    #[test]
    fn desugars_strong_reference_with_ensures() {
        let sig = sig_of(
            r#"
            #[flux::sig(fn(x: &strg i32[@n]) ensures *x: i32[n + 1])]
            fn incr(x: &mut i32) { }
            "#,
        );
        assert!(matches!(
            sig.params[0],
            RTy::Ref {
                kind: RefKind::Strg,
                ..
            }
        ));
        assert_eq!(sig.ensures.len(), 1);
        assert_eq!(sig.ensures[0].0, 0);
        assert_eq!(sig.ensures[0].1.to_string(), "i32[n + 1]");
    }

    #[test]
    fn desugars_vector_signatures() {
        let sig = sig_of(
            r#"
            #[flux::sig(fn(usize[@n]) -> RVec<f32>[n])]
            fn init_zeros(n: usize) -> RVec<f32> { RVec::new() }
            "#,
        );
        assert_eq!(sig.ret.to_string(), format!("{}", sig.ret));
        assert!(sig.ret.to_string().starts_with("RVec<"));
        assert!(sig.ret.to_string().ends_with("[n]"));
    }

    #[test]
    fn desugars_nested_vector_with_param_index() {
        let sig = sig_of(
            r#"
            #[flux::sig(fn(usize[@n], cs: &mut RVec<RVec<f32>[n]>[@k], ws: &RVec<usize>[k]))]
            fn normalize(n: usize, cs: &mut RVec<RVec<f32>>, ws: &RVec<usize>) { }
            "#,
        );
        assert_eq!(sig.refine_params.len(), 2);
        let cs = sig.params[1].to_string();
        assert!(cs.contains("RVec<RVec<"), "unexpected type {cs}");
        assert!(cs.contains("[n]"), "inner index missing in {cs}");
        assert!(cs.contains("[k]"), "outer index missing in {cs}");
    }

    #[test]
    fn unknown_ensures_parameter_is_an_error() {
        let program = parse_program(
            r#"
            #[flux::sig(fn(x: &strg i32[@n]) ensures *y: i32[n])]
            fn f(x: &mut i32) { }
            "#,
        )
        .unwrap();
        assert!(desugar_fn_sig(&program.functions[0]).is_err());
    }

    #[test]
    fn arity_mismatch_is_an_error() {
        let program = parse_program(
            r#"
            #[flux::sig(fn(i32[@n], i32[@m]) -> i32[n])]
            fn f(x: i32) -> i32 { x }
            "#,
        )
        .unwrap();
        assert!(desugar_fn_sig(&program.functions[0]).is_err());
    }

    #[test]
    fn ill_sorted_index_is_an_error() {
        let program = parse_program(
            r#"
            #[flux::sig(fn(i32[@n]) -> bool[n + 1])]
            fn f(x: i32) -> bool { true }
            "#,
        )
        .unwrap();
        assert!(desugar_fn_sig(&program.functions[0]).is_err());
    }

    #[test]
    fn unannotated_functions_get_default_signatures() {
        let program = parse_program("fn plain(x: i32, v: RVec<f32>) -> i32 { x }").unwrap();
        let sig = desugar_fn_sig(&program.functions[0]).unwrap();
        assert!(sig.refine_params.is_empty());
        assert_eq!(sig.params.len(), 2);
        assert!(matches!(sig.params[0], RTy::Exists { .. }));
    }

    #[test]
    fn matrix_signature_has_two_indices() {
        let sig = sig_of(
            r#"
            #[flux::sig(fn(RMat<f32>[@m, @n], usize{v: v < m}, usize{v: v < n}) -> f32)]
            fn get(mat: RMat<f32>, i: usize, j: usize) -> f32 { 0.0 }
            "#,
        );
        assert_eq!(sig.refine_params.len(), 2);
        let printed = sig.params[0].to_string();
        assert!(printed.starts_with("RMat<"), "unexpected display {printed}");
        assert!(printed.ends_with("[m, n]"), "unexpected display {printed}");
    }
}
