//! End-to-end exercise of the real `fluxd` binary over a pipe: the full
//! Table-1 matrix cold, then warm (asserting the cross-request cache
//! actually hits), wire-level garbage mid-session, and a clean drain.
//!
//! Cargo builds the binary before running integration tests and exposes
//! its path as `CARGO_BIN_EXE_fluxd`.

use flux_bench::daemon_client::DaemonClient;
use flux_bench::json::Value;
use flux_smt::testing::with_watchdog;
use flux_suite::{benchmarks, expect_verifies, Mode};

fn spawn_daemon() -> DaemonClient {
    // Debug builds verify slowly; lift the server deadline ceiling so a
    // loaded CI machine cannot time a request out.
    DaemonClient::spawn_at(
        std::path::Path::new(env!("CARGO_BIN_EXE_fluxd")),
        &[("FLUXD_MAX_DEADLINE_MS", "600000".to_string())],
    )
    .expect("spawn fluxd")
}

fn result_of(response: &Value) -> &str {
    response
        .get("result")
        .and_then(Value::as_str)
        .expect("response carries a result")
}

fn expected_verdict(name: &str, mode: Mode) -> &'static str {
    if expect_verifies(name, mode) {
        "verified"
    } else {
        "rejected"
    }
}

#[test]
fn full_matrix_cold_then_warm_with_cross_request_hits() {
    with_watchdog("fluxd e2e matrix", 1200, || {
        let mut daemon = spawn_daemon();
        let cells: Vec<(&str, Mode, &str)> = benchmarks()
            .iter()
            .filter(|b| !b.is_library)
            .flat_map(|b| {
                [
                    (b.name, Mode::Flux, "flux"),
                    (b.name, Mode::Baseline, "baseline"),
                ]
            })
            .collect();

        // Cold pass: every verdict must match the Table-1 expectation
        // matrix (no faults are injected, so no degradation is allowed).
        for (name, mode, wire_mode) in &cells {
            let response = daemon
                .verify_program(name, wire_mode)
                .expect("cold verify round-trip");
            assert_eq!(
                result_of(&response),
                expected_verdict(name, *mode),
                "cold {name}/{wire_mode}: {response:?}"
            );
        }

        // Warm pass: identical requests again.  The verdicts must not
        // drift, and the process-global validity cache — keyed on
        // α-normalized clause expressions precisely so that re-runs hit —
        // must serve cross-request (`xbench`) hits.
        let mut warm_xbench = 0;
        for (name, mode, wire_mode) in &cells {
            let response = daemon
                .verify_program(name, wire_mode)
                .expect("warm verify round-trip");
            assert_eq!(
                result_of(&response),
                expected_verdict(name, *mode),
                "warm {name}/{wire_mode}: {response:?}"
            );
            warm_xbench += response
                .get("stats")
                .and_then(|s| s.get("xbench_hits"))
                .and_then(Value::as_u64)
                .expect("verify responses carry stats");
        }
        assert!(
            warm_xbench > 0,
            "the warm pass must hit the cross-request verdict cache"
        );

        // Wire-level garbage mid-session: a structured error comes back
        // and the daemon keeps serving.
        daemon.send("this is not json").expect("send garbage");
        let error = daemon.read_response().expect("error response for garbage");
        assert_eq!(result_of(&error), "error");
        let alive = daemon
            .verify_program("bsearch", "flux")
            .expect("daemon still serves after garbage");
        assert_eq!(result_of(&alive), "verified");

        // Status reflects the workload; the exempt node arena is reported
        // but not breached by this small session.
        let status = daemon.status().expect("status round-trip");
        assert_eq!(result_of(&status), "status");
        assert_eq!(
            status.get("admitted").and_then(Value::as_u64),
            Some(cells.len() as u64 * 2 + 1)
        );
        let caches = status.get("caches").expect("status reports caches");
        assert_eq!(
            caches
                .get("hcons_watermark_exceeded")
                .and_then(Value::as_bool),
            Some(false)
        );

        // Clean drain: the final frame answers the shutdown id and the
        // child exits successfully.
        let fin = daemon.shutdown().expect("clean shutdown");
        assert_eq!(result_of(&fin), "final");
        assert_eq!(fin.get("errors").and_then(Value::as_u64), Some(1));
    });
}

#[test]
fn deadline_clamp_degrades_to_unknown_not_wrong() {
    with_watchdog("fluxd e2e deadline", 600, || {
        let mut daemon = spawn_daemon();
        // A 1ms deadline cannot complete a debug-build verification; the
        // daemon must answer conclusively-inconclusive (`unknown`), never
        // a fabricated verdict — and never hang.
        let response = daemon
            .verify_program_opts("heapsort", "flux", Some(1), None)
            .expect("deadline round-trip");
        let result = result_of(&response).to_string();
        assert!(
            result == "unknown" || result == "rejected",
            "a starved run must not claim success: {response:?}"
        );
        if result == "rejected" {
            // If the budget cut surfaced as errors, they must say so.
            let errors = response.get("errors").and_then(Value::as_array).unwrap();
            assert!(!errors.is_empty());
        }
        // The same program with a real budget still verifies.
        let response = daemon
            .verify_program_opts("heapsort", "flux", Some(600_000), None)
            .expect("full-budget round-trip");
        assert_eq!(result_of(&response), "verified");
        daemon.shutdown().expect("clean shutdown");
    });
}
