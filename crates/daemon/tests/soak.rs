//! Fault soak against a live `fluxd` child: a long mixed request stream —
//! suite benchmarks, safe and unsafe inline programs, `status` and
//! `reload` probes, bursty admission — under a seeded fault storm
//! injected *inside the child* through the `FLUXD_FAULT_*` environment.
//!
//! Soaked properties:
//!
//! 1. **No crash** — the child answers every request and exits 0 at the
//!    end, despite a panic band that fells workers by the dozen.
//! 2. **No hang** — the whole stream runs under a watchdog.
//! 3. **No false verdicts** — faults may degrade any answer to `unknown`,
//!    `error` or `busy`, but a conclusive verdict must match the Table-1
//!    expectation matrix: an unsafe program never comes back `verified`,
//!    an expected-safe one never `rejected`.
//! 4. **Bounded warm state** — every `status` probe sees the validity
//!    cache inside its configured hard cap.
//!
//! The stream length is `FLUXD_SOAK_REQUESTS` (default 500 in release —
//! CI runs 200, the nightly job 1000 — and 24 under a debug profile,
//! where a single cold program solve is an order of magnitude slower and
//! the full stream would dominate the whole workspace suite), the seed
//! `FLUXD_SOAK_SEED`.

use flux_bench::daemon_client::DaemonClient;
use flux_bench::json::{quote, Value};
use flux_logic::env_parse;
use flux_smt::testing::with_watchdog;
use flux_suite::{benchmarks, expect_verifies, Mode};
use std::collections::HashMap;

const VALIDITY_CAP: u64 = 256;

const SAFE_SRC: &str = r#"
    #[flux::sig(fn(i32{v: v > 0}) -> i32{v: v > 1})]
    fn bump(x: i32) -> i32 { x + 1 }
"#;

const UNSAFE_SRC: &str = r#"
    #[flux::sig(fn(x: &strg i32[@n]) ensures *x: i32[n + 2])]
    fn incr(x: &mut i32) {
        *x += 1;
    }
"#;

/// One request of the stream, with its classification contract.
#[derive(Clone, Debug)]
enum Kind {
    /// A suite benchmark; `expect_verified` pins the conclusive verdict.
    Program {
        name: &'static str,
        mode: &'static str,
        expect_verified: bool,
    },
    SafeInline,
    UnsafeInline,
    Status,
    Reload,
}

fn schedule(i: u64, cells: &[(&'static str, &'static str, bool)]) -> Kind {
    if i % 31 == 17 {
        Kind::Status
    } else if i % 61 == 23 {
        Kind::Reload
    } else if i % 4 == 3 {
        let (name, mode, expect_verified) = cells[(i as usize / 4) % cells.len()];
        Kind::Program {
            name,
            mode,
            expect_verified,
        }
    } else if i % 2 == 0 {
        Kind::SafeInline
    } else {
        Kind::UnsafeInline
    }
}

fn payload(id: u64, kind: &Kind) -> String {
    match kind {
        Kind::Program { name, mode, .. } => format!(
            "{{\"id\":{id},\"method\":\"verify\",\"program\":{},\"mode\":{}}}",
            quote(name),
            quote(mode)
        ),
        Kind::SafeInline => format!(
            "{{\"id\":{id},\"method\":\"verify\",\"source\":{}}}",
            quote(SAFE_SRC)
        ),
        Kind::UnsafeInline => format!(
            "{{\"id\":{id},\"method\":\"verify\",\"source\":{}}}",
            quote(UNSAFE_SRC)
        ),
        Kind::Status => format!("{{\"id\":{id},\"method\":\"status\"}}"),
        Kind::Reload => format!("{{\"id\":{id},\"method\":\"reload\"}}"),
    }
}

fn result_of(response: &Value) -> &str {
    response
        .get("result")
        .and_then(Value::as_str)
        .expect("response carries a result")
}

/// Checks one answered request against its contract.  Returns whether the
/// answer was conclusive (for the end-of-run sanity count).
fn classify(id: u64, kind: &Kind, response: &Value) -> bool {
    let result = result_of(response);
    match kind {
        Kind::Status => {
            assert_eq!(result, "status", "id {id}: {response:?}");
            let len = response
                .get("caches")
                .and_then(|c| c.get("validity_len"))
                .and_then(Value::as_u64)
                .expect("status reports the validity cache size");
            // The in-request hard cap is twice the reclaim target.
            assert!(
                len <= VALIDITY_CAP * 2,
                "id {id}: validity cache grew past its hard cap: {len}"
            );
            false
        }
        Kind::Reload => {
            assert_eq!(result, "reloaded", "id {id}: {response:?}");
            false
        }
        Kind::Program {
            name,
            mode,
            expect_verified,
        } => {
            assert!(
                ["verified", "rejected", "unknown", "error"].contains(&result),
                "id {id} ({name}/{mode}): unstructured result {response:?}"
            );
            match result {
                "verified" => {
                    assert!(expect_verified, "id {id}: faults made {name}/{mode} verify");
                    true
                }
                "rejected" => {
                    assert!(
                        !expect_verified,
                        "id {id}: faults made {name}/{mode} fail: {response:?}"
                    );
                    true
                }
                _ => false,
            }
        }
        Kind::SafeInline => {
            assert_ne!(
                result, "rejected",
                "id {id}: faults rejected a safe program: {response:?}"
            );
            result == "verified"
        }
        Kind::UnsafeInline => {
            assert_ne!(
                result, "verified",
                "id {id}: faults verified an unsafe program: {response:?}"
            );
            result == "rejected"
        }
    }
}

#[test]
fn fault_soak_never_crashes_hangs_or_lies() {
    let default_requests: u64 = if cfg!(debug_assertions) { 24 } else { 500 };
    let requests: u64 = env_parse("FLUXD_SOAK_REQUESTS", default_requests);
    let seed: u64 = env_parse("FLUXD_SOAK_SEED", 42u64);
    with_watchdog("fluxd fault soak", 3000, move || {
        let cells: Vec<(&'static str, &'static str, bool)> = benchmarks()
            .iter()
            .filter(|b| !b.is_library)
            .flat_map(|b| {
                [
                    (b.name, "flux", expect_verifies(b.name, Mode::Flux)),
                    (b.name, "baseline", expect_verifies(b.name, Mode::Baseline)),
                ]
            })
            .collect();

        let mut daemon = DaemonClient::spawn_at(
            std::path::Path::new(env!("CARGO_BIN_EXE_fluxd")),
            &[
                ("FLUXD_MAX_DEADLINE_MS", "600000".to_string()),
                // A shallow queue so request bursts actually overflow into
                // `busy`, and a small cache cap so reclaim churns for real.
                ("FLUXD_QUEUE_CAP", "2".to_string()),
                ("FLUXD_VALIDITY_CAP", VALIDITY_CAP.to_string()),
                ("FLUXD_RETRY_AFTER_MS", "5".to_string()),
                ("FLUXD_FAULT_SEED", seed.to_string()),
                ("FLUXD_FAULT_UNKNOWN_PERMILLE", "80".to_string()),
                ("FLUXD_FAULT_PANIC_PERMILLE", "60".to_string()),
                ("FLUXD_FAULT_DELAY_PERMILLE", "40".to_string()),
                ("FLUXD_FAULT_DELAY_MS", "2".to_string()),
            ],
        )
        .expect("spawn faulted fluxd");

        let mut conclusive = 0u64;
        let mut busy_retries = 0u64;
        let mut next_id = 1u64;
        // Bursts of four keep several requests in flight against the
        // two workers and depth-2 queue, so admission control sees real
        // contention (on top of the injected `queue`-site faults).
        for burst_start in (0..requests).step_by(4) {
            let burst: Vec<(u64, Kind)> = (burst_start..(burst_start + 4).min(requests))
                .map(|i| {
                    let id = next_id;
                    next_id += 1;
                    (id, schedule(i, &cells))
                })
                .collect();
            for (id, kind) in &burst {
                daemon.send(&payload(*id, kind)).expect("send request");
            }
            let mut answers: HashMap<u64, Value> = HashMap::new();
            while answers.len() < burst.len() {
                let response = daemon
                    .read_response()
                    .expect("daemon answers every request");
                let id = response.get("id").and_then(Value::as_u64).expect("id");
                assert!(
                    answers.insert(id, response).is_none(),
                    "two responses for id {id}"
                );
            }
            for (id, kind) in &burst {
                let mut response = answers.remove(id).expect("every id answered");
                // Structured back-pressure: honour the advertised back-off
                // and retry (the `queue` fault band also lands here).
                let mut attempts = 0;
                while result_of(&response) == "busy" {
                    busy_retries += 1;
                    attempts += 1;
                    assert!(attempts <= 50, "id {id}: busy-looped 50 times");
                    let back_off = response
                        .get("retry_after_ms")
                        .and_then(Value::as_u64)
                        .expect("busy responses carry retry_after_ms");
                    std::thread::sleep(std::time::Duration::from_millis(back_off));
                    response = daemon
                        .request(&payload(*id, kind))
                        .expect("busy retry round-trip");
                }
                if classify(*id, kind, &response) {
                    conclusive += 1;
                }
            }
        }

        // Even a heavy storm leaves most answers conclusive — a stream
        // that degraded wholesale to `unknown`/`error` would satisfy the
        // per-request contracts while verifying nothing.
        assert!(
            conclusive >= requests / 4,
            "only {conclusive} of {requests} requests were conclusive"
        );

        // Clean exit 0 after the storm: the final frame reports the
        // panics the pool absorbed.
        let fin = daemon.shutdown().expect("faulted daemon drains cleanly");
        assert_eq!(result_of(&fin), "final");
        let respawns = fin
            .get("worker_respawns")
            .and_then(Value::as_u64)
            .expect("final frame reports respawns");
        if requests >= 200 {
            assert!(
                respawns > 0,
                "a 6% panic band over {requests} requests must fell at least one worker"
            );
        }
        eprintln!(
            "soak: {requests} requests, {conclusive} conclusive, \
             {busy_retries} busy retries, {respawns} worker respawns"
        );

        // A fresh, fault-free daemon over the same programs answers
        // conclusively — the storm was confined to the child that hosted
        // it.
        let mut clean = DaemonClient::spawn_at(
            std::path::Path::new(env!("CARGO_BIN_EXE_fluxd")),
            &[("FLUXD_MAX_DEADLINE_MS", "600000".to_string())],
        )
        .expect("spawn clean fluxd");
        let safe = clean.verify_source(SAFE_SRC, "flux").expect("clean safe");
        assert_eq!(result_of(&safe), "verified");
        let unsafe_ = clean
            .verify_source(UNSAFE_SRC, "flux")
            .expect("clean unsafe");
        assert_eq!(result_of(&unsafe_), "rejected");
        clean.shutdown().expect("clean daemon drains");
    });
}
