//! The `fluxd` server loop: supervised workers, bounded admission, and
//! generational cache reclaim between requests.
//!
//! # Supervision tree
//!
//! ```text
//! supervisor (read loop, admission control)
//! ├── writer        — sole owner of the output stream; workers and the
//! │                   supervisor send rendered frames through a channel,
//! │                   so concurrent responses never interleave bytes
//! └── worker × N    — shared job queue behind a mutex; each job runs
//!                     under `catch_unwind`.  A worker that catches a
//!                     panic answers with a structured `error` response
//!                     and *retires* (fresh stack, no half-poisoned
//!                     thread-locals); the supervisor respawns it before
//!                     admitting the next request.
//! ```
//!
//! The supervisor never verifies anything itself, so a hostile request can
//! only take down a worker.  During the final drain the supervisor *does*
//! process leftover jobs inline (still under `catch_unwind`) — by then the
//! queue is closed, so this is bounded work.
//!
//! # Generational reclaim
//!
//! A long-running daemon must not grow without bound across requests.  The
//! warm state splits into two classes:
//!
//! * **Reclaimable** — the fixpoint validity cache (LRU, trimmed to
//!   `validity_cache_cap` after every request), the CNF memo cache and the
//!   hash-consing simplify/quantifier/application memos (both capped,
//!   reclaim-on-acquire).  Dropping any entry only costs recomputation.
//! * **Exempt** — the hash-consing `nodes`/`index` arena.  `ExprId`s are
//!   indices into it and live inside cached verdict keys; freeing or
//!   compacting the arena would let two different expressions alias one id,
//!   which is a *soundness* bug, not a performance bug.  The daemon instead
//!   watches the arena against `hcons_node_watermark` and reports both the
//!   size and the breach through `status`, so an operator can recycle the
//!   process on their own schedule.
//!
//! # Live reconfiguration
//!
//! `reload` re-reads the `FLUXD_*` environment and applies it to the
//! running instance: cache capacities are re-applied, the worker pool is
//! resized (grown eagerly; shrunk lazily — an excess worker retires after
//! its next job), and per-request settings such as the deadline ceiling
//! take effect for every subsequent admission.  The resolved widths are
//! reported in the `reload` answer so a client can confirm the daemon
//! actually observed the new environment — the historical bug this guards
//! against was `FLUX_THREADS` being cached in a process-global `OnceLock`,
//! which made `reload` a silent no-op for thread counts.  Only the
//! admission queue depth (`FLUXD_QUEUE_CAP`) and frame cap of frames
//! already buffered stay fixed, since the queue channel is created once.

use crate::proto::{
    busy_response, error_response, parse_request, read_frame, write_frame, Frame, ReqMode, Request,
    VerifyRequest, DEFAULT_MAX_FRAME,
};
use flux::{verify_source, Mode, VerifyConfig, VerifyOutcome};
use flux_bench::json::quote;
use flux_logic::{env_parse, lock_recover};
use flux_smt::testing::{fault_delay, inject_fault, Fault};
use flux_smt::ResourceBudget;
use std::io::{BufRead, Write};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{self, Receiver, Sender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

/// Tuning knobs of one daemon instance.  `from_env` reads the `FLUXD_*`
/// variables so the binary and the test harnesses configure it the same
/// way.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Worker threads verifying requests (`FLUXD_WORKERS`).  The default
    /// is 4: per-request solves route through *sharded* global caches
    /// (validity verdicts, CNF memos), so a pool wider than 2 no longer
    /// convoys on a single cache mutex.
    pub workers: usize,
    /// Bounded admission queue depth; a full queue answers `busy`
    /// (`FLUXD_QUEUE_CAP`).
    pub queue_cap: usize,
    /// Maximum accepted frame payload in bytes (`FLUXD_MAX_FRAME`).
    pub max_frame: usize,
    /// Hard server-side ceiling on any request's wall-clock deadline; the
    /// smaller of this and the request's `deadline_ms` wins
    /// (`FLUXD_MAX_DEADLINE_MS`).
    pub max_deadline_ms: u64,
    /// Suggested client back-off carried in `busy` responses
    /// (`FLUXD_RETRY_AFTER_MS`).
    pub retry_after_ms: u64,
    /// Post-request LRU trim target for the global validity cache; the hard
    /// in-request cap is twice this (`FLUXD_VALIDITY_CAP`).
    pub validity_cache_cap: usize,
    /// CNF memo-cache capacity (`FLUXD_CNF_CAP`).
    pub cnf_cache_cap: usize,
    /// Hash-consing memo-table capacity (`FLUXD_HCONS_MEMO_CAP`).
    pub hcons_memo_cap: usize,
    /// Advisory bound on the *exempt* hash-consing node arena; breaches are
    /// reported via `status`, never enforced by freeing nodes
    /// (`FLUXD_HCONS_WATERMARK`).
    pub hcons_node_watermark: usize,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            workers: 4,
            queue_cap: 8,
            max_frame: DEFAULT_MAX_FRAME,
            max_deadline_ms: 30_000,
            retry_after_ms: 100,
            validity_cache_cap: 4096,
            cnf_cache_cap: 1024,
            hcons_memo_cap: 1 << 16,
            hcons_node_watermark: 4_000_000,
        }
    }
}

impl ServerConfig {
    /// Reads the configuration from `FLUXD_*` environment variables,
    /// falling back to the defaults.
    pub fn from_env() -> ServerConfig {
        let d = ServerConfig::default();
        ServerConfig {
            workers: env_parse("FLUXD_WORKERS", d.workers).max(1),
            queue_cap: env_parse("FLUXD_QUEUE_CAP", d.queue_cap).max(1),
            max_frame: env_parse("FLUXD_MAX_FRAME", d.max_frame),
            max_deadline_ms: env_parse("FLUXD_MAX_DEADLINE_MS", d.max_deadline_ms).max(1),
            retry_after_ms: env_parse("FLUXD_RETRY_AFTER_MS", d.retry_after_ms),
            validity_cache_cap: env_parse("FLUXD_VALIDITY_CAP", d.validity_cache_cap).max(1),
            cnf_cache_cap: env_parse("FLUXD_CNF_CAP", d.cnf_cache_cap),
            hcons_memo_cap: env_parse("FLUXD_HCONS_MEMO_CAP", d.hcons_memo_cap),
            hcons_node_watermark: env_parse("FLUXD_HCONS_WATERMARK", d.hcons_node_watermark),
        }
    }
}

/// Lifetime counters of one daemon instance.
#[derive(Debug, Default)]
struct Stats {
    admitted: AtomicU64,
    verified: AtomicU64,
    rejected: AtomicU64,
    unknown: AtomicU64,
    errored: AtomicU64,
    busy: AtomicU64,
    respawns: AtomicU64,
}

impl Stats {
    fn bump(&self, counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }
}

/// Runs the daemon over arbitrary streams until end-of-input or a
/// `shutdown` request, then drains and flushes a final statistics frame.
/// The binary passes stdin/stdout; in-process tests pass buffers.
pub fn run(config: &ServerConfig, mut input: impl BufRead, output: impl Write + Send) {
    apply_cache_caps(config);

    // The configuration is shared mutable state: `reload` swaps in a fresh
    // `from_env` snapshot mid-run, and workers re-read it per job so new
    // deadline ceilings and trim targets apply to every later admission.
    let cfg = Arc::new(Mutex::new(config.clone()));
    let stats = Arc::new(Stats::default());
    let started = Instant::now();

    thread::scope(|scope| {
        // Writer: sole owner of the output stream.
        let (resp_tx, resp_rx) = mpsc::channel::<String>();
        let writer = scope.spawn(move || {
            let mut output = output;
            while let Ok(frame) = resp_rx.recv() {
                if write_frame(&mut output, &frame).is_err() {
                    // The client hung up; keep draining the channel so
                    // senders never block, but stop writing.
                    while resp_rx.recv().is_ok() {}
                    return;
                }
            }
        });

        // Bounded admission queue feeding the worker pool.  The depth is
        // fixed at startup: a sync channel cannot be resized, and `busy`
        // back-pressure semantics should not change under a live reload.
        let (job_tx, job_rx) = mpsc::sync_channel::<VerifyRequest>(config.queue_cap);
        let job_rx = Arc::new(Mutex::new(job_rx));
        let spawn_worker = |index: usize| {
            let cfg = Arc::clone(&cfg);
            let rx = Arc::clone(&job_rx);
            let tx = resp_tx.clone();
            let stats = Arc::clone(&stats);
            scope.spawn(move || worker_loop(index, &cfg, &rx, &tx, &stats))
        };
        let mut workers: Vec<_> = (0..config.workers).map(spawn_worker).collect();

        let mut shutdown_id = None;
        loop {
            let max_frame = lock_recover(&cfg).max_frame;
            match read_frame(&mut input, max_frame) {
                Frame::Eof => break,
                Frame::Truncated => {
                    stats.bump(&stats.errored);
                    let _ = resp_tx.send(error_response(0, "truncated frame at end of input"));
                    break;
                }
                Frame::BadHeader(header) => {
                    stats.bump(&stats.errored);
                    let _ = resp_tx.send(error_response(
                        0,
                        &format!("malformed frame header {header:?} (expected a decimal length)"),
                    ));
                }
                Frame::Oversized(len) => {
                    stats.bump(&stats.errored);
                    let _ = resp_tx.send(error_response(
                        0,
                        &format!("oversized frame: {len} bytes exceeds the {max_frame} cap"),
                    ));
                }
                Frame::NotUtf8 => {
                    stats.bump(&stats.errored);
                    let _ = resp_tx.send(error_response(0, "frame payload is not UTF-8"));
                }
                Frame::Payload(payload) => match parse_request(&payload) {
                    Err((id, message)) => {
                        stats.bump(&stats.errored);
                        let _ = resp_tx.send(error_response(id, &message));
                    }
                    Ok(Request::Status { id }) => {
                        let snapshot = lock_recover(&cfg).clone();
                        let _ = resp_tx.send(report(id, "status", &snapshot, &stats, started));
                    }
                    Ok(Request::Reload { id }) => {
                        // Re-read the environment and apply it live: cache
                        // caps take effect immediately, the worker pool is
                        // grown eagerly / shrunk lazily, and later verify
                        // jobs clone the fresh snapshot.  The answer echoes
                        // the resolved widths so callers can assert the new
                        // environment was actually observed (and not, as a
                        // `OnceLock` once made it, cached from startup).
                        let fresh = ServerConfig::from_env();
                        apply_cache_caps(&fresh);
                        let memos = flux_logic::flush_hcons_memos();
                        let cache = flux_fixpoint::global_cache();
                        let dropped = cache.len();
                        cache.clear();
                        let target = fresh.workers;
                        *lock_recover(&cfg) = fresh;
                        while workers.len() < target {
                            workers.push(spawn_worker(workers.len()));
                        }
                        let fn_threads = flux_fixpoint::default_threads();
                        let _ = resp_tx.send(format!(
                            "{{\"id\":{id},\"result\":\"reloaded\",\
                             \"hcons_memos_flushed\":{memos},\
                             \"validity_entries_dropped\":{dropped},\
                             \"workers\":{target},\"fn_threads\":{fn_threads}}}"
                        ));
                    }
                    Ok(Request::Shutdown { id }) => {
                        shutdown_id = Some(id);
                        break;
                    }
                    Ok(Request::Verify(req)) => {
                        // Fault site "queue": admission control.  The
                        // supervisor must never unwind, so the panic band
                        // degrades to a contained structured error here.
                        match inject_fault("queue") {
                            Some(Fault::Delay) => thread::sleep(fault_delay()),
                            Some(Fault::Unknown) => {
                                stats.bump(&stats.busy);
                                let retry = lock_recover(&cfg).retry_after_ms;
                                let _ = resp_tx.send(busy_response(req.id, retry));
                                continue;
                            }
                            Some(Fault::Panic) => {
                                stats.bump(&stats.errored);
                                let _ = resp_tx.send(error_response(
                                    req.id,
                                    "injected admission fault (queue)",
                                ));
                                continue;
                            }
                            None => {}
                        }
                        // Self-heal before admitting: respawn any worker
                        // that retired after containing a panic — but only
                        // slots still inside the (possibly reloaded) pool
                        // target; slots beyond it retired deliberately.
                        let target = lock_recover(&cfg).workers;
                        for (index, worker) in workers.iter_mut().enumerate() {
                            if index < target && worker.is_finished() {
                                stats.bump(&stats.respawns);
                                let retired = std::mem::replace(worker, spawn_worker(index));
                                let _ = retired.join();
                            }
                        }
                        match job_tx.try_send(req) {
                            Ok(()) => stats.bump(&stats.admitted),
                            Err(TrySendError::Full(req)) => {
                                stats.bump(&stats.busy);
                                let retry = lock_recover(&cfg).retry_after_ms;
                                let _ = resp_tx.send(busy_response(req.id, retry));
                            }
                            Err(TrySendError::Disconnected(req)) => {
                                stats.bump(&stats.errored);
                                let _ = resp_tx.send(error_response(req.id, "worker pool is gone"));
                            }
                        }
                    }
                },
            }
        }

        // Drain: close the queue, let workers finish everything buffered,
        // then sweep any jobs stranded by workers that retired mid-drain.
        drop(job_tx);
        for worker in workers {
            let _ = worker.join();
        }
        let snapshot = lock_recover(&cfg).clone();
        loop {
            let job = lock_recover(&job_rx).try_recv();
            let Ok(job) = job else { break };
            let (response, _panicked) = contained_verify(&snapshot, job, &stats);
            let _ = resp_tx.send(response);
        }

        // Final statistics snapshot: the answer to `shutdown`, or an
        // unsolicited id-0 frame on end-of-input.
        let _ = resp_tx.send(report(
            shutdown_id.unwrap_or(0),
            "final",
            &snapshot,
            &stats,
            started,
        ));
        drop(resp_tx);
        let _ = writer.join();
    });
}

/// One worker: pull jobs until the queue closes.  A caught panic retires
/// the worker after answering, so the supervisor replaces it with a fresh
/// thread.  Each job runs against a fresh clone of the shared config, so a
/// `reload` between jobs changes deadline ceilings and trim targets
/// without restarting the pool.
fn worker_loop(
    index: usize,
    cfg: &Mutex<ServerConfig>,
    rx: &Mutex<Receiver<VerifyRequest>>,
    tx: &Sender<String>,
    stats: &Stats,
) {
    loop {
        let job = lock_recover(rx).recv();
        let Ok(job) = job else { return };
        let snapshot = lock_recover(cfg).clone();
        let (response, panicked) = contained_verify(&snapshot, job, stats);
        let _ = tx.send(response);
        if panicked {
            // Retire after containing a panic: the supervisor respawns a
            // fresh thread before the next admission.
            return;
        }
        if index >= lock_recover(cfg).workers {
            // `reload` shrank the pool and this slot fell off the end:
            // retire once the in-flight job is answered.  Idle excess
            // workers park on the queue until their next (last) job.
            return;
        }
    }
}

/// Applies a configuration's capacity knobs to the process-global caches.
/// The validity cache's hard cap is 2× the reclaim target: requests may
/// overshoot while running, the post-request trim brings the cache back to
/// its generation size.  (Per-shard caps divide these totals.)
fn apply_cache_caps(cfg: &ServerConfig) {
    flux_fixpoint::set_global_cache_capacity(Some(cfg.validity_cache_cap * 2));
    flux_smt::set_cnf_cache_capacity(Some(cfg.cnf_cache_cap));
    flux_logic::set_hcons_memo_capacity(Some(cfg.hcons_memo_cap));
}

/// Runs one verify job under `catch_unwind`, always producing a response.
/// The flag reports whether a panic was contained.
fn contained_verify(cfg: &ServerConfig, job: VerifyRequest, stats: &Stats) -> (String, bool) {
    let id = job.id;
    match catch_unwind(AssertUnwindSafe(|| handle_verify(cfg, job, stats))) {
        Ok(response) => (response, false),
        Err(payload) => {
            stats.bump(&stats.errored);
            let message = panic_message(&payload);
            let response = format!(
                "{{\"id\":{id},\"result\":\"error\",\"reason\":\"worker-panic\",\
                 \"error\":{}}}",
                quote(&format!("worker panicked: {message}"))
            );
            (response, true)
        }
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

/// The verify request proper: resolve the program, clamp the budget, run
/// the verifier, map the outcome, reclaim the caches.
fn handle_verify(cfg: &ServerConfig, job: VerifyRequest, stats: &Stats) -> String {
    // Fault site "daemon": worker dispatch.
    match inject_fault("daemon") {
        Some(Fault::Panic) => panic!("injected worker fault (daemon dispatch)"),
        Some(Fault::Delay) => thread::sleep(fault_delay()),
        Some(Fault::Unknown) => {
            stats.bump(&stats.unknown);
            return format!(
                "{{\"id\":{},\"result\":\"unknown\",\"reason\":\"injected-fault\",\
                 \"errors\":[],\"time_ms\":0}}",
                job.id
            );
        }
        None => {}
    }

    let (mode, source) = match resolve_program(&job) {
        Ok(pair) => pair,
        Err(message) => {
            stats.bump(&stats.errored);
            return error_response(job.id, &message);
        }
    };

    // Per-request budget: the request's deadline is clamped by the server
    // ceiling — the smaller of the two always wins.
    let mut budget = match job.steps {
        Some(steps) => ResourceBudget::uniform_steps(steps),
        None => ResourceBudget::UNLIMITED,
    };
    let deadline = job.deadline_ms.unwrap_or(cfg.max_deadline_ms);
    budget.timeout = Some(Duration::from_millis(deadline.min(cfg.max_deadline_ms)));
    let mut config = VerifyConfig::default();
    config.check.fixpoint.smt.budget = budget;
    config.wp.smt.budget = budget;

    let response = match verify_source(&source, mode, &config) {
        Ok(outcome) => {
            let verdict = verdict_of(&outcome);
            match verdict {
                "verified" => stats.bump(&stats.verified),
                "unknown" => stats.bump(&stats.unknown),
                _ => stats.bump(&stats.rejected),
            }
            render_outcome(job.id, verdict, &outcome)
        }
        Err(frontend) => {
            stats.bump(&stats.errored);
            error_response(job.id, &format!("frontend: {frontend}"))
        }
    };

    // Generational reclaim: trim the validity cache back to its target so
    // a burst of one-off queries ages out instead of accumulating.  The
    // hash-consing node arena is deliberately exempt (see module docs).
    {
        let cache = flux_fixpoint::global_cache();
        if cache.len() > cfg.validity_cache_cap {
            cache.trim(cfg.validity_cache_cap);
        }
    }

    response
}

/// Maps a batch outcome to a wire verdict, mirroring the table renderer's
/// `ok_label`: inconclusive-but-error-free runs are `unknown`, never
/// `rejected` — and never `verified`.
fn verdict_of(outcome: &VerifyOutcome) -> &'static str {
    if outcome.safe {
        "verified"
    } else if outcome.stats.unknowns > 0 && outcome.errors.is_empty() {
        "unknown"
    } else {
        "rejected"
    }
}

fn resolve_program(job: &VerifyRequest) -> Result<(Mode, String), String> {
    let mode = match job.mode {
        ReqMode::Flux => Mode::Flux,
        ReqMode::Baseline => Mode::Baseline,
    };
    let source = match (&job.program, &job.source) {
        (Some(name), None) => {
            let benchmark =
                flux_suite::benchmark(name).ok_or_else(|| format!("unknown program {name:?}"))?;
            match mode {
                Mode::Flux => benchmark.flux_src.to_string(),
                Mode::Baseline => benchmark.baseline_src.to_string(),
            }
        }
        (None, Some(source)) => source.clone(),
        // `parse_request` enforces exactly-one; defend anyway.
        _ => return Err("verify needs exactly one of \"program\" or \"source\"".to_string()),
    };
    Ok((mode, source))
}

fn render_outcome(id: u64, verdict: &str, outcome: &VerifyOutcome) -> String {
    let errors: Vec<String> = outcome.errors.iter().map(|e| quote(e)).collect();
    let s = &outcome.stats;
    format!(
        "{{\"id\":{id},\"result\":\"{verdict}\",\"errors\":[{}],\
         \"time_ms\":{},\"functions\":{},\
         \"loc\":{},\"spec_lines\":{},\"annot_lines\":{},\
         \"stats\":{{\"smt_queries\":{},\"cache_hits\":{},\"xbench_hits\":{},\
         \"cache_misses\":{},\"sessions\":{},\"unknowns\":{},\"evictions\":{},\
         \"budget_exhausted\":{}}}}}",
        errors.join(","),
        outcome.time.as_millis(),
        outcome.functions,
        outcome.loc,
        outcome.spec_lines,
        outcome.annot_lines,
        s.smt_queries,
        s.cache_hits,
        s.xbench_hits,
        s.cache_misses,
        s.sessions,
        s.unknowns,
        s.evictions,
        s.budget_exhausted,
    )
}

/// Renders a `status` or `final` statistics frame: lifetime counters plus
/// the live size of every process-global cache, including the exempt
/// hash-consing arena and its advisory watermark.
fn report(id: u64, result: &str, cfg: &ServerConfig, stats: &Stats, started: Instant) -> String {
    let nodes = flux_logic::interned_nodes();
    let (validity_len, validity_evictions) = {
        let cache = flux_fixpoint::global_cache();
        (cache.len(), cache.evictions())
    };
    format!(
        "{{\"id\":{id},\"result\":\"{result}\",\
         \"admitted\":{},\"verified\":{},\"rejected\":{},\"unknown\":{},\
         \"errors\":{},\"busy\":{},\"worker_respawns\":{},\"uptime_ms\":{},\
         \"workers\":{},\"fn_threads\":{},\
         \"caches\":{{\"validity_len\":{validity_len},\
         \"validity_cap\":{},\"validity_evictions\":{validity_evictions},\
         \"cnf_len\":{},\"cnf_evictions\":{},\
         \"hcons_memo_evictions\":{},\
         \"hcons_nodes\":{nodes},\"hcons_node_watermark\":{},\
         \"hcons_watermark_exceeded\":{}}}}}",
        stats.admitted.load(Ordering::Relaxed),
        stats.verified.load(Ordering::Relaxed),
        stats.rejected.load(Ordering::Relaxed),
        stats.unknown.load(Ordering::Relaxed),
        stats.errored.load(Ordering::Relaxed),
        stats.busy.load(Ordering::Relaxed),
        stats.respawns.load(Ordering::Relaxed),
        started.elapsed().as_millis(),
        cfg.workers,
        flux_fixpoint::default_threads(),
        cfg.validity_cache_cap,
        flux_smt::cnf_cache_len(),
        flux_smt::cnf_cache_evictions(),
        flux_logic::hcons_memo_evictions(),
        cfg.hcons_node_watermark,
        nodes > cfg.hcons_node_watermark,
    )
}
