//! `fluxd`: a fault-tolerant verification-as-a-service daemon for the Flux
//! reproduction (PR 9).
//!
//! Batch verification pays the full cold-start price — hash-consing
//! arenas, CNF memos and verdict caches all start empty — on every
//! invocation.  `fluxd` keeps one process alive and routes verification
//! requests through it, so the process-global caches stay warm across
//! requests.  The price of staying alive is that the daemon must survive
//! whatever a request does to it; the design answers with four pillars:
//!
//! 1. **Request isolation** — supervised worker threads, a per-request
//!    [`flux_smt::ResourceBudget`] clamped by a server-side ceiling, and
//!    `catch_unwind` containment: a panicking request yields a structured
//!    `error` response and a fresh worker, never a dead daemon.
//! 2. **Generational cache reclaim** — the verdict cache is an LRU trimmed
//!    back to its target after every request; memo tables are capped.  The
//!    hash-consing node arena is exempt for soundness (`ExprId` stability)
//!    and monitored against a watermark instead.
//! 3. **Admission control** — a bounded queue; overload yields a
//!    structured `busy` response with `retry_after_ms`, and `shutdown` or
//!    end-of-input drains in-flight work before a final statistics frame.
//! 4. **Fault-injection coverage** — the `daemon` and `queue` fault sites
//!    plug into [`flux_smt::testing`]'s deterministic fault plans, so the
//!    soak harness can storm a live daemon with panics, delays and
//!    spurious unknowns.
//!
//! See `proto` for the wire format and `server` for the supervision tree.

#![warn(missing_docs)]

pub mod proto;
pub mod server;

pub use proto::{parse_request, read_frame, write_frame, Frame, Request, VerifyRequest};
pub use server::{run, ServerConfig};

/// Installs a panic hook that suppresses the default backtrace spam for
/// *injected* worker faults while forwarding every other panic unchanged.
/// The daemon expects injected panics by the hundreds under a fault plan;
/// a genuine failure must stay visible.
pub fn quiet_injected_panics() {
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let injected = info
            .payload()
            .downcast_ref::<&str>()
            .is_some_and(|s| s.contains("injected worker fault"));
        if !injected {
            prev(info);
        }
    }));
}
