//! Wire protocol of `fluxd`: length-delimited JSON frames.
//!
//! A frame is a decimal byte count, a newline, and exactly that many bytes
//! of UTF-8 JSON:
//!
//! ```text
//! 43\n{"id":1,"method":"verify","program":"vec"}
//! ```
//!
//! The same framing is used in both directions.  Framing errors never kill
//! the daemon: a malformed header resynchronises at the next newline, an
//! oversized frame is skipped by reading and discarding exactly its
//! declared length, and a truncated frame at end-of-input drains the
//! daemon.  Every recoverable framing error produces a structured `error`
//! response so the client learns *why* its request vanished.

use flux_bench::json::{parse, quote, Value};
use std::io::{BufRead, Write};

/// Upper bound on a single frame's payload unless the server overrides it.
pub const DEFAULT_MAX_FRAME: usize = 1 << 20;

/// One successfully read frame payload, or why reading one failed.
#[derive(Debug)]
pub enum Frame {
    /// A complete payload (not yet parsed as JSON).
    Payload(String),
    /// End of input: the peer closed the stream between frames.
    Eof,
    /// The header line was not a decimal length.  The reader is already
    /// resynchronised (positioned after the offending line).
    BadHeader(String),
    /// The declared length exceeds the server's frame cap.  The payload
    /// bytes were read and discarded, so the reader stays in sync.
    Oversized(usize),
    /// The stream ended inside a payload; no recovery is possible.
    Truncated,
    /// The payload was not valid UTF-8.
    NotUtf8,
}

/// Reads one frame from `input`, enforcing `max_frame`.
pub fn read_frame(input: &mut impl BufRead, max_frame: usize) -> Frame {
    let mut header = Vec::new();
    match input.read_until(b'\n', &mut header) {
        Ok(0) => return Frame::Eof,
        Ok(_) => {}
        Err(_) => return Frame::Eof,
    }
    let text = String::from_utf8_lossy(&header);
    let text = text.trim();
    // A bare blank line between frames is tolerated (it is what a human
    // poking the daemon from a terminal produces).
    if text.is_empty() {
        return read_frame(input, max_frame);
    }
    let len: usize = match text.parse() {
        Ok(n) => n,
        Err(_) => return Frame::BadHeader(text.to_string()),
    };
    if len > max_frame {
        // Skip exactly the declared payload so the next header lines up.
        let mut remaining = len as u64;
        let mut sink = [0u8; 4096];
        while remaining > 0 {
            let chunk = remaining.min(sink.len() as u64) as usize;
            match input.read(&mut sink[..chunk]) {
                Ok(0) | Err(_) => return Frame::Truncated,
                Ok(n) => remaining -= n as u64,
            }
        }
        return Frame::Oversized(len);
    }
    let mut payload = vec![0u8; len];
    if input.read_exact(&mut payload).is_err() {
        return Frame::Truncated;
    }
    match String::from_utf8(payload) {
        Ok(s) => Frame::Payload(s),
        Err(_) => Frame::NotUtf8,
    }
}

/// Writes one frame to `output`.
pub fn write_frame(output: &mut impl Write, payload: &str) -> std::io::Result<()> {
    write!(output, "{}\n{payload}", payload.len())?;
    output.flush()
}

/// Which verifier a request selects (mirrors [`flux::Mode`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReqMode {
    /// The Flux pipeline.
    Flux,
    /// The program-logic baseline.
    Baseline,
}

/// A parsed, validated request.
#[derive(Debug)]
pub enum Request {
    /// Verify one program.
    Verify(VerifyRequest),
    /// Report daemon/cache statistics.
    Status {
        /// Correlation id, echoed in the response.
        id: u64,
    },
    /// Flush the reclaimable warm state (memo tables, verdict cache).
    Reload {
        /// Correlation id, echoed in the response.
        id: u64,
    },
    /// Drain in-flight work, answer with final statistics and exit.
    Shutdown {
        /// Correlation id, echoed in the response.
        id: u64,
    },
}

/// Payload of a `verify` request.
#[derive(Debug)]
pub struct VerifyRequest {
    /// Correlation id, echoed in the response.
    pub id: u64,
    /// Name of a suite benchmark (`program`) — exclusive with `source`.
    pub program: Option<String>,
    /// Inline source text (`source`) — exclusive with `program`.
    pub source: Option<String>,
    /// Which verifier to run.
    pub mode: ReqMode,
    /// Client-requested wall-clock deadline; the server clamps it to its
    /// own hard ceiling (the smaller of the two wins).
    pub deadline_ms: Option<u64>,
    /// Client-requested uniform step cap for all solver dimensions.
    pub steps: Option<u64>,
}

/// Parses a frame payload into a [`Request`].
///
/// Errors are `(id, message)` so the response can still be correlated: the
/// id is best-effort recovered from the malformed request (0 when absent).
pub fn parse_request(payload: &str) -> Result<Request, (u64, String)> {
    let value = parse(payload).map_err(|e| (0, format!("malformed JSON: {e}")))?;
    let id = value.get("id").and_then(Value::as_u64).unwrap_or(0);
    let method = value
        .get("method")
        .and_then(Value::as_str)
        .ok_or((id, "missing \"method\"".to_string()))?;
    match method {
        "status" => Ok(Request::Status { id }),
        "reload" => Ok(Request::Reload { id }),
        "shutdown" => Ok(Request::Shutdown { id }),
        "verify" => {
            let program = value
                .get("program")
                .and_then(Value::as_str)
                .map(str::to_string);
            let source = value
                .get("source")
                .and_then(Value::as_str)
                .map(str::to_string);
            if program.is_some() == source.is_some() {
                return Err((
                    id,
                    "verify needs exactly one of \"program\" or \"source\"".to_string(),
                ));
            }
            let mode = match value.get("mode").and_then(Value::as_str) {
                None | Some("flux") => ReqMode::Flux,
                Some("baseline") => ReqMode::Baseline,
                Some(other) => return Err((id, format!("unknown mode {other:?}"))),
            };
            Ok(Request::Verify(VerifyRequest {
                id,
                program,
                source,
                mode,
                deadline_ms: value.get("deadline_ms").and_then(Value::as_u64),
                steps: value.get("steps").and_then(Value::as_u64),
            }))
        }
        other => Err((id, format!("unknown method {other:?}"))),
    }
}

/// Renders a structured `error` response.
pub fn error_response(id: u64, message: &str) -> String {
    format!(
        "{{\"id\":{id},\"result\":\"error\",\"error\":{}}}",
        quote(message)
    )
}

/// Renders a structured `busy` response (admission-control rejection).
pub fn busy_response(id: u64, retry_after_ms: u64) -> String {
    format!("{{\"id\":{id},\"result\":\"busy\",\"retry_after_ms\":{retry_after_ms}}}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn frames_round_trip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, "{\"id\":1}").unwrap();
        write_frame(&mut buf, "{}").unwrap();
        let mut cur = Cursor::new(buf);
        assert!(matches!(
            read_frame(&mut cur, DEFAULT_MAX_FRAME),
            Frame::Payload(p) if p == "{\"id\":1}"
        ));
        assert!(matches!(
            read_frame(&mut cur, DEFAULT_MAX_FRAME),
            Frame::Payload(p) if p == "{}"
        ));
        assert!(matches!(
            read_frame(&mut cur, DEFAULT_MAX_FRAME),
            Frame::Eof
        ));
    }

    #[test]
    fn bad_header_resynchronises_at_next_newline() {
        let mut cur = Cursor::new(b"not a number\n8\n{\"id\":2}".to_vec());
        assert!(matches!(
            read_frame(&mut cur, DEFAULT_MAX_FRAME),
            Frame::BadHeader(h) if h == "not a number"
        ));
        assert!(matches!(
            read_frame(&mut cur, DEFAULT_MAX_FRAME),
            Frame::Payload(p) if p == "{\"id\":2}"
        ));
    }

    #[test]
    fn oversized_frame_is_skipped_in_sync() {
        let mut input = b"6\nAAAAAA".to_vec();
        input.extend_from_slice(b"2\n{}");
        let mut cur = Cursor::new(input);
        assert!(matches!(read_frame(&mut cur, 4), Frame::Oversized(6)));
        assert!(matches!(
            read_frame(&mut cur, 4),
            Frame::Payload(p) if p == "{}"
        ));
    }

    #[test]
    fn truncated_payload_is_reported() {
        let mut cur = Cursor::new(b"10\n{\"id\"".to_vec());
        assert!(matches!(
            read_frame(&mut cur, DEFAULT_MAX_FRAME),
            Frame::Truncated
        ));
    }

    #[test]
    fn verify_requires_exactly_one_program_source() {
        let both = r#"{"id":3,"method":"verify","program":"vec","source":"fn f() {}"}"#;
        assert!(parse_request(both).is_err());
        let neither = r#"{"id":3,"method":"verify"}"#;
        assert!(parse_request(neither).is_err());
        let ok = r#"{"id":3,"method":"verify","program":"vec","deadline_ms":500}"#;
        match parse_request(ok).unwrap() {
            Request::Verify(v) => {
                assert_eq!(v.id, 3);
                assert_eq!(v.program.as_deref(), Some("vec"));
                assert_eq!(v.deadline_ms, Some(500));
                assert_eq!(v.mode, ReqMode::Flux);
            }
            other => panic!("wrong request: {other:?}"),
        }
    }

    #[test]
    fn unknown_method_recovers_the_id() {
        let err = parse_request(r#"{"id":9,"method":"explode"}"#).unwrap_err();
        assert_eq!(err.0, 9);
        assert!(err.1.contains("explode"));
    }
}
