//! The `fluxd` binary: a long-running verification daemon speaking
//! length-delimited JSON over stdin/stdout.
//!
//! Configuration is environment-only (`FLUXD_*`; see
//! [`flux_daemon::ServerConfig::from_env`]).  For fault-injection testing
//! the harness additionally seeds a deterministic fault plan through
//! `FLUXD_FAULT_SEED` and the `FLUXD_FAULT_*_PERMILLE` bands — the same
//! plans `flux_smt::testing` uses in-process, but installed inside the
//! child so a *separate* process gets stormed.

use flux_daemon::{quiet_injected_panics, run, ServerConfig};
use flux_logic::env_parse;
use flux_smt::testing::{install_fault_plan, FaultPlan};
use std::io::{stdin, stdout};

fn main() {
    let plan = FaultPlan {
        seed: env_parse("FLUXD_FAULT_SEED", 1u64),
        unknown_permille: env_parse("FLUXD_FAULT_UNKNOWN_PERMILLE", 0u16),
        panic_permille: env_parse("FLUXD_FAULT_PANIC_PERMILLE", 0u16),
        delay_permille: env_parse("FLUXD_FAULT_DELAY_PERMILLE", 0u16),
        delay_ms: env_parse("FLUXD_FAULT_DELAY_MS", 1u64),
    };
    if plan.unknown_permille > 0 || plan.panic_permille > 0 || plan.delay_permille > 0 {
        install_fault_plan(plan);
        quiet_injected_panics();
    }
    let config = ServerConfig::from_env();
    run(&config, stdin().lock(), stdout());
}
