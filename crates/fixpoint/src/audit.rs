//! The constraint well-formedness lint and solution re-validation for the
//! fixpoint layer.
//!
//! Under [`flux_logic::AuditTier::Lint`] (or above) every flattened Horn
//! clause is sort- and scope-checked before the weakening loop ever sees it
//! — concrete guards and heads must be boolean in the clause's binder
//! scope, and every κ-application argument must match the declared sort of
//! its formal.  The initial candidate assignment is checked the same way
//! over each κ's formals.  This makes the PR 2 bug class (a κ head with a
//! free variable, which silently made the weakening loop delete every
//! candidate) a hard error at constraint-generation time, blamed on the
//! offending hash-consed subterm.
//!
//! The companion full-tier check, [`FixpointSolver`]'s independent solution
//! re-validation, lives in `solve.rs` next to the loop it audits.
//!
//! [`FixpointSolver`]: crate::FixpointSolver

use crate::constraint::{Clause, Guard, Head};
use crate::kvar::{KVarApp, KVarStore, KVid};
use crate::solve::Solution;
use flux_logic::{lint, ExprId, LintError, Name, Sort, SortCtx, SortError};

/// Lints one κ application in `scope`: arity against the declaration, then
/// each actual argument against its formal's declared sort.  Returns the
/// number of obligations checked.
fn lint_kvar_app(
    what: &str,
    app: &KVarApp,
    kvars: &KVarStore,
    scope: &SortCtx,
) -> Result<usize, LintError> {
    let decl = kvars.get(app.kvid);
    if app.args.len() != decl.sorts.len() {
        // Arity errors have no single offending subterm; blame the whole
        // application through its first argument (or `true` if nullary).
        let blamed = app
            .args
            .first()
            .map(ExprId::intern)
            .unwrap_or_else(|| ExprId::intern(&flux_logic::Expr::tt()));
        return Err(LintError {
            what: what.to_owned(),
            expr: blamed,
            offender: blamed,
            error: SortError::Arity {
                func: Name::intern(&app.kvid.to_string()),
                expected: decl.sorts.len(),
                found: app.args.len(),
            },
            scope: scope.iter().collect(),
        });
    }
    for (i, (arg, &sort)) in app.args.iter().zip(&decl.sorts).enumerate() {
        lint(
            || format!("argument {i} of {} in {what}", app.kvid),
            ExprId::intern(arg),
            sort,
            scope,
        )?;
    }
    Ok(app.args.len())
}

/// Lints every flattened clause: each concrete guard and head must be a
/// boolean predicate in the clause's binder scope, and every κ application
/// (guard or head) must apply well-sorted arguments of the declared arity.
/// Returns the number of obligations checked; the error names the innermost
/// offending [`ExprId`] and the binder scope it was checked under.
pub fn lint_clauses(
    clauses: &[Clause],
    kvars: &KVarStore,
    ctx: &SortCtx,
) -> Result<usize, LintError> {
    let mut checks = 0usize;
    for (ci, clause) in clauses.iter().enumerate() {
        let mut scope = ctx.clone();
        for (name, sort) in &clause.binders {
            scope.push(*name, *sort);
        }
        for (gi, guard) in clause.guards.iter().enumerate() {
            match guard {
                Guard::Pred(p) => {
                    lint(
                        || format!("guard {gi} of clause #{ci}"),
                        ExprId::intern(p),
                        Sort::Bool,
                        &scope,
                    )?;
                    checks += 1;
                }
                Guard::KVar(app) => {
                    checks +=
                        lint_kvar_app(&format!("guard {gi} of clause #{ci}"), app, kvars, &scope)?;
                }
            }
        }
        match &clause.head {
            Head::Pred(p, tag) => {
                lint(
                    || format!("head of clause #{ci} (tag {tag})"),
                    ExprId::intern(p),
                    Sort::Bool,
                    &scope,
                )?;
                checks += 1;
            }
            Head::KVar(app) => {
                checks += lint_kvar_app(&format!("head of clause #{ci}"), app, kvars, &scope)?;
            }
        }
    }
    Ok(checks)
}

/// Lints a candidate assignment: each κ's conjunction must be a boolean
/// predicate over that κ's formal parameters (plus whatever `ctx` declares
/// globally — uninterpreted functions in particular).  Weakening only ever
/// deletes conjuncts, so linting the initial assignment covers every later
/// state of the loop.  Returns the number of κ bodies checked.
pub fn lint_solution(
    solution: &Solution,
    kvars: &KVarStore,
    ctx: &SortCtx,
) -> Result<usize, LintError> {
    for decl in kvars.iter() {
        let mut scope = ctx.clone();
        for (i, &sort) in decl.sorts.iter().enumerate() {
            scope.push(decl.formal(i), sort);
        }
        lint(
            || format!("candidate body of {}", decl.id),
            solution.of_id(decl.id),
            Sort::Bool,
            &scope,
        )?;
    }
    Ok(kvars.len())
}

/// Convenience for test assertions: the κ id a lint error mentions, if any.
#[allow(dead_code)]
pub(crate) fn mentions_kvid(err: &LintError, kvid: KVid) -> bool {
    err.what.contains(&kvid.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraint::Constraint;
    use flux_logic::Expr;

    fn int_kvar(kvars: &mut KVarStore) -> KVid {
        kvars.fresh(vec![Sort::Int])
    }

    #[test]
    fn well_formed_system_passes() {
        let mut kvars = KVarStore::new();
        let k = int_kvar(&mut kvars);
        let x = Name::intern("ax");
        let constraint = Constraint::forall(
            x,
            Sort::Int,
            Expr::ge(Expr::var(x), Expr::int(0)),
            Constraint::conj(vec![
                Constraint::kvar(KVarApp::new(k, vec![Expr::var(x)])),
                Constraint::pred(Expr::ge(Expr::var(x), Expr::int(0)), 7),
            ]),
        );
        let clauses = constraint.flatten();
        let checks = lint_clauses(&clauses, &kvars, &SortCtx::new()).unwrap();
        assert!(checks >= 3, "guards + κ head + concrete head, got {checks}");
    }

    /// The PR 2 bug class, planted deliberately: a κ head whose argument
    /// mentions a variable that is not bound by the clause.  The lint must
    /// reject it, blaming the free variable's ExprId and reporting the
    /// binder scope it searched.
    #[test]
    fn planted_free_variable_in_kvar_head_is_rejected() {
        let mut kvars = KVarStore::new();
        let k = int_kvar(&mut kvars);
        let x = Name::intern("bx");
        let free = Name::intern("escaped_binder");
        let constraint = Constraint::forall(
            x,
            Sort::Int,
            Expr::tt(),
            Constraint::kvar(KVarApp::new(k, vec![Expr::var(x) + Expr::var(free)])),
        );
        let err = lint_clauses(&constraint.flatten(), &kvars, &SortCtx::new()).unwrap_err();
        assert_eq!(err.error, SortError::UnboundVar(free));
        assert_eq!(err.offender, ExprId::intern(&Expr::var(free)));
        assert_eq!(err.scope, vec![(x, Sort::Int)]);
        assert!(mentions_kvid(&err, k), "{err}");
        let msg = err.to_string();
        assert!(msg.contains("escaped_binder"), "{msg}");
        assert!(msg.contains("bx: int"), "{msg}");
    }

    /// A concrete head that is well-scoped but integer-sorted — not a
    /// predicate — must also be rejected.
    #[test]
    fn planted_wrong_sort_obligation_is_rejected() {
        let x = Name::intern("cx");
        let constraint = Constraint::forall(
            x,
            Sort::Int,
            Expr::tt(),
            Constraint::Head(Head::Pred(Expr::var(x) + Expr::int(1), 3)),
        );
        let err =
            lint_clauses(&constraint.flatten(), &KVarStore::new(), &SortCtx::new()).unwrap_err();
        assert!(
            matches!(
                err.error,
                SortError::Mismatch {
                    expected: Sort::Bool,
                    found: Sort::Int,
                    ..
                }
            ),
            "{err}"
        );
        assert!(err.what.contains("tag 3"), "{err}");
    }

    /// κ applied with the wrong sort or the wrong arity is rejected.
    #[test]
    fn planted_bad_kvar_application_is_rejected() {
        let mut kvars = KVarStore::new();
        let k = int_kvar(&mut kvars);
        let b = Name::intern("dflag");
        // Boolean argument where an integer is declared.
        let wrong_sort = Constraint::forall(
            b,
            Sort::Bool,
            Expr::tt(),
            Constraint::kvar(KVarApp::new(k, vec![Expr::var(b)])),
        );
        let err = lint_clauses(&wrong_sort.flatten(), &kvars, &SortCtx::new()).unwrap_err();
        assert!(
            matches!(
                err.error,
                SortError::Mismatch {
                    expected: Sort::Int,
                    ..
                }
            ),
            "{err}"
        );
        // Two arguments where one is declared.
        let wrong_arity = Constraint::kvar(KVarApp::new(k, vec![Expr::int(0), Expr::int(1)]));
        let err = lint_clauses(&wrong_arity.flatten(), &kvars, &SortCtx::new()).unwrap_err();
        assert!(
            matches!(
                err.error,
                SortError::Arity {
                    expected: 1,
                    found: 2,
                    ..
                }
            ),
            "{err}"
        );
    }
}
