//! The liquid-inference fixpoint solver (predicate abstraction by iterative
//! weakening), as described in §4.2 of the paper and in Rondon et al. 2008.
//!
//! Each κ variable starts with the conjunction of *all* well-sorted
//! qualifier instantiations.  Clauses whose head is a κ application then
//! repeatedly *weaken* that candidate set: any conjunct not implied by the
//! clause's hypotheses (under the current assignment) is removed.  When no
//! more weakening is possible the assignment is the strongest solution
//! expressible with the qualifiers; the remaining clauses with concrete
//! heads are then checked once, and any failure is reported with its tag.

use crate::cache::{QueryKey, ValidityCache};
use crate::constraint::{Clause, Constraint, Guard, Head, Tag};
use crate::kvar::{KVarApp, KVarStore, KVid};
use crate::qualifier::{default_qualifiers, Qualifier};
use flux_logic::{Expr, ExprId, Name, Sort, SortCtx};
use flux_smt::{Model, Session, SmtConfig, Solver, Validity};
use std::collections::{BTreeMap, HashSet};
use std::sync::Arc;

/// Configuration of the fixpoint solver.
#[derive(Clone, Debug)]
pub struct FixConfig {
    /// Configuration forwarded to the SMT solver.
    pub smt: SmtConfig,
    /// Safety bound on weakening iterations.
    pub max_iterations: usize,
    /// The qualifier templates used to seed candidate solutions.
    pub qualifiers: Vec<Qualifier>,
    /// Use the incremental query engine: one solver session per clause per
    /// iteration plus the cross-iteration validity cache.  Disable to get
    /// the historical one-query-one-pipeline behaviour (kept for A/B
    /// testing and the ablation benches; verdicts are identical).
    pub incremental: bool,
    /// Weaken candidates by evaluating them under the solver's
    /// counter-models (Houdini-style) before falling back to one SMT query
    /// per candidate.  Disable for A/B testing; the resulting fixpoint — and
    /// hence every verdict and inferred invariant — is identical either
    /// way, only the number of SMT queries differs.
    pub model_pruning: bool,
}

impl Default for FixConfig {
    fn default() -> Self {
        FixConfig {
            smt: SmtConfig::default(),
            max_iterations: 100,
            qualifiers: default_qualifiers(),
            incremental: true,
            model_pruning: true,
        }
    }
}

/// Statistics of a solver run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FixStats {
    /// Number of clauses after flattening.
    pub clauses: usize,
    /// Number of κ variables.
    pub kvars: usize,
    /// Number of initial candidate conjuncts across all κ variables.
    pub initial_candidates: usize,
    /// Number of weakening iterations performed.
    pub iterations: usize,
    /// Number of SMT validity queries requested (including cache hits).
    pub smt_queries: usize,
    /// Queries answered from the validity cache.
    pub cache_hits: usize,
    /// Cache hits whose entry was produced by an *earlier* solve call on the
    /// same solver (cross-function sharing within one verification run).
    pub cross_fn_hits: usize,
    /// Queries that reached the SMT engine.
    pub cache_misses: usize,
    /// Solver sessions opened (at most one per clause per iteration; none
    /// for clauses fully answered by the cache).
    pub sessions: usize,
    /// Candidates dropped by evaluating them under a counter-model instead
    /// of issuing a per-candidate SMT query.
    pub model_prunes: usize,
}

impl FixStats {
    /// Adds `other` into `self` field-wise; used to aggregate per-function
    /// statistics into program totals in `flux-check`.
    pub fn absorb(&mut self, other: &FixStats) {
        self.clauses += other.clauses;
        self.kvars += other.kvars;
        self.initial_candidates += other.initial_candidates;
        self.iterations += other.iterations;
        self.smt_queries += other.smt_queries;
        self.cache_hits += other.cache_hits;
        self.cross_fn_hits += other.cross_fn_hits;
        self.cache_misses += other.cache_misses;
        self.sessions += other.sessions;
        self.model_prunes += other.model_prunes;
    }
}

/// A solution: each κ variable is assigned a conjunction of predicates over
/// its formal arguments.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Solution {
    assignment: BTreeMap<KVid, Vec<Expr>>,
}

impl Solution {
    /// The predicate assigned to `kvid`, expressed over its formal
    /// arguments.
    pub fn of(&self, kvid: KVid) -> Expr {
        match self.assignment.get(&kvid) {
            Some(conjuncts) => Expr::and_all(conjuncts.iter().cloned()),
            None => Expr::tt(),
        }
    }

    /// The predicate denoted by an application under this solution.
    pub fn apply(&self, app: &KVarApp, kvars: &KVarStore) -> Expr {
        let decl = kvars.get(app.kvid);
        app.instantiate(decl, &self.of(app.kvid))
    }

    /// Number of conjuncts assigned to `kvid`.
    pub fn num_conjuncts(&self, kvid: KVid) -> usize {
        self.assignment.get(&kvid).map_or(0, Vec::len)
    }

    fn set(&mut self, kvid: KVid, conjuncts: Vec<Expr>) {
        self.assignment.insert(kvid, conjuncts);
    }
}

/// Result of solving a constraint set.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FixResult {
    /// All constraints hold under the returned solution.
    Safe(Solution),
    /// Some concrete constraints failed even under the weakest consistent
    /// assignment; their tags are returned for blame.
    Unsafe {
        /// The assignment that was reached before checking concrete heads.
        solution: Solution,
        /// Tags of the failed constraints, deduplicated, in order.
        failed: Vec<Tag>,
    },
}

impl FixResult {
    /// True if the result is [`FixResult::Safe`].
    pub fn is_safe(&self) -> bool {
        matches!(self, FixResult::Safe(_))
    }
}

/// Per-clause parts of the validity-cache key, interned once per clause and
/// shared (via `Arc`) by the keys of every goal checked against it.
struct ClauseKeys {
    ctx: Arc<[(Name, Sort)]>,
    hyps: Arc<[ExprId]>,
}

impl ClauseKeys {
    fn new(clause_ctx: &SortCtx, hypotheses: &[Expr]) -> ClauseKeys {
        ClauseKeys {
            ctx: clause_ctx.iter().collect(),
            hyps: hypotheses.iter().map(ExprId::intern).collect(),
        }
    }

    fn for_goal(&self, goal: &Expr) -> QueryKey {
        QueryKey::new(self.ctx.clone(), self.hyps.clone(), ExprId::intern(goal))
    }
}

/// The fixpoint solver.
pub struct FixpointSolver {
    /// Configuration.
    pub config: FixConfig,
    /// Statistics of the most recent [`FixpointSolver::solve`] call.
    pub stats: FixStats,
    smt: Solver,
    cache: ValidityCache,
    /// Generation counter: bumped once per [`FixpointSolver::solve`] call so
    /// cache entries can be attributed to the solve that created them.
    generation: u64,
    /// The base sort context of the previous solve; the cache survives
    /// across solves only while it stays the same (keys do not capture
    /// uninterpreted-function declarations).
    last_ctx: Option<SortCtx>,
}

impl FixpointSolver {
    /// Creates a solver with the given configuration.
    pub fn new(config: FixConfig) -> FixpointSolver {
        let smt = Solver::new(config.smt);
        FixpointSolver {
            config,
            stats: FixStats::default(),
            smt,
            cache: ValidityCache::new(),
            generation: 0,
            last_ctx: None,
        }
    }

    /// Creates a solver with the default configuration.
    pub fn with_defaults() -> FixpointSolver {
        FixpointSolver::new(FixConfig::default())
    }

    /// Solves `constraint` under the κ declarations in `kvars`.
    ///
    /// `ctx` provides sorts for any free names not bound inside the
    /// constraint itself (and declarations of uninterpreted functions).
    pub fn solve(
        &mut self,
        constraint: &Constraint,
        kvars: &KVarStore,
        ctx: &SortCtx,
    ) -> FixResult {
        let clauses = constraint.flatten();
        self.stats = FixStats {
            clauses: clauses.len(),
            kvars: kvars.len(),
            ..FixStats::default()
        };
        // The cache is kept across solve calls (cross-function sharing
        // within one verification run) as long as the base sort context is
        // unchanged; keys do not capture `ctx`'s uninterpreted-function
        // declarations, so verdicts must not leak across different contexts.
        self.generation += 1;
        if self.last_ctx.as_ref() != Some(ctx) {
            self.cache.clear();
            self.last_ctx = Some(ctx.clone());
        }

        // Initial assignment: all well-sorted qualifier instantiations.
        // Distinct qualifier templates can instantiate to the same predicate
        // (e.g. `ν ≥ 0` from both a bound and a nonneg template), and the
        // instantiation order gives no adjacency guarantee — dedup by
        // hash-consed id so duplicates can't double the SMT work.
        let mut solution = Solution::default();
        for decl in kvars.iter() {
            let mut candidates = Vec::new();
            for qualifier in &self.config.qualifiers {
                candidates.extend(qualifier.instantiate(decl));
            }
            let mut seen: HashSet<ExprId> = HashSet::with_capacity(candidates.len());
            candidates.retain(|c| seen.insert(ExprId::intern(c)));
            self.stats.initial_candidates += candidates.len();
            solution.set(decl.id, candidates);
        }

        // Iterative weakening.  Each clause whose queries are not fully
        // answered by the validity cache opens one solver session: the
        // hypotheses are fixed for the clause while the goals (the whole
        // conjunction, then each surviving candidate) vary, so the session
        // preprocesses and CNF-converts the hypothesis context exactly once.
        for _ in 0..self.config.max_iterations {
            self.stats.iterations += 1;
            let mut changed = false;
            for clause in &clauses {
                let Head::KVar(app) = &clause.head else {
                    continue;
                };
                // Instantiations are owned, so the candidate vector itself
                // is only ever borrowed (and shrunk in place at the end).
                let decl = kvars.get(app.kvid);
                let insts: Vec<Expr> = match solution.assignment.get(&app.kvid) {
                    Some(candidates) if !candidates.is_empty() => candidates
                        .iter()
                        .map(|c| app.instantiate(decl, c))
                        .collect(),
                    _ => continue,
                };
                let hypotheses = clause_hypotheses(clause, &solution, kvars);
                let clause_ctx = clause_ctx(clause, ctx);
                let keys = self.keys_for(&clause_ctx, &hypotheses);
                // Fast path: when every candidate is already individually
                // cached as valid — the common case when the clause
                // re-enters after surviving a previous iteration — the whole
                // query is answered from the cache outright.
                if let Some(keys) = &keys {
                    let cached: Vec<Option<(Validity, u64)>> = insts
                        .iter()
                        .map(|g| self.cache.lookup(&keys.for_goal(g)))
                        .collect();
                    if cached
                        .iter()
                        .all(|c| matches!(c, Some((Validity::Valid, _))))
                    {
                        self.stats.smt_queries += 1;
                        self.stats.cache_hits += 1;
                        if cached
                            .iter()
                            .all(|c| matches!(c, Some((_, gen)) if *gen < self.generation))
                        {
                            self.stats.cross_fn_hits += 1;
                        }
                        continue;
                    }
                }
                let mut session = None;
                let mut alive = vec![true; insts.len()];
                // Houdini-style weakening: check the conjunction of the
                // surviving candidates; if it fails, evaluate every survivor
                // under the counter-model and drop all that are falsified —
                // no per-candidate SMT query — then re-check the smaller
                // conjunction.  Only when the model stops deciding anything
                // (or there is no trustworthy model) do the survivors pay
                // one query each.
                loop {
                    let whole = Expr::and_all(
                        insts
                            .iter()
                            .zip(&alive)
                            .filter(|(_, alive)| **alive)
                            .map(|(inst, _)| inst.clone()),
                    );
                    if whole.is_trivially_true() {
                        break;
                    }
                    match self.check(&mut session, &clause_ctx, &keys, &hypotheses, &whole) {
                        Validity::Valid => {
                            // `hyps ⟹ c1 ∧ … ∧ cn` entails every
                            // `hyps ⟹ ci`, so seed the per-candidate entries
                            // the next iteration (or the fast path above)
                            // will ask for.
                            if let Some(keys) = &keys {
                                for (goal, _) in
                                    insts.iter().zip(&alive).filter(|(_, alive)| **alive)
                                {
                                    self.cache.insert(
                                        keys.for_goal(goal),
                                        Validity::Valid,
                                        self.generation,
                                    );
                                }
                            }
                            break;
                        }
                        Validity::Invalid(Some(model))
                            if self.config.model_pruning && model.satisfies_all(&hypotheses) =>
                        {
                            if self.prune_by_model(&model, &insts, &mut alive) {
                                continue;
                            }
                            self.weaken_per_candidate(
                                &mut session,
                                &clause_ctx,
                                &keys,
                                &hypotheses,
                                &insts,
                                &mut alive,
                            );
                            break;
                        }
                        _ => {
                            self.weaken_per_candidate(
                                &mut session,
                                &clause_ctx,
                                &keys,
                                &hypotheses,
                                &insts,
                                &mut alive,
                            );
                            break;
                        }
                    }
                }
                self.close(session);
                if alive.contains(&false) {
                    changed = true;
                    let mut mask = alive.iter();
                    solution
                        .assignment
                        .get_mut(&app.kvid)
                        .expect("candidates existed above")
                        .retain(|_| *mask.next().expect("mask is as long as the candidates"));
                }
            }
            if !changed {
                break;
            }
        }

        // Check concrete heads under the final assignment.  The hypotheses
        // of these clauses are unchanged since the last weakening iteration,
        // so on κ-free-or-converged systems these queries hit the cache.
        let mut failed = Vec::new();
        let mut failed_tags: HashSet<Tag> = HashSet::new();
        for clause in &clauses {
            let Head::Pred(goal, tag) = &clause.head else {
                continue;
            };
            let hypotheses = clause_hypotheses(clause, &solution, kvars);
            let clause_ctx = clause_ctx(clause, ctx);
            let keys = self.keys_for(&clause_ctx, &hypotheses);
            let mut session = None;
            if !self
                .check(&mut session, &clause_ctx, &keys, &hypotheses, goal)
                .is_valid()
                && failed_tags.insert(*tag)
            {
                failed.push(*tag);
            }
            self.close(session);
        }
        if failed.is_empty() {
            FixResult::Safe(solution)
        } else {
            FixResult::Unsafe { solution, failed }
        }
    }

    /// Cumulative statistics of the underlying SMT engine (all sessions and
    /// one-shot queries) since creation; exposed for benchmarking and for
    /// the end-to-end reporting in `flux-check`.
    pub fn smt_stats(&self) -> flux_smt::SmtStats {
        self.smt.stats
    }

    fn keys_for(&self, clause_ctx: &SortCtx, hypotheses: &[Expr]) -> Option<ClauseKeys> {
        self.config
            .incremental
            .then(|| ClauseKeys::new(clause_ctx, hypotheses))
    }

    /// Discharges one validity query through the engine: consult the cache,
    /// then the clause's session (opened lazily on the first miss).  With
    /// `incremental` off (`keys` is `None`), queries go straight to the
    /// one-shot solver, reproducing the historical behaviour.
    fn check(
        &mut self,
        session: &mut Option<Session>,
        clause_ctx: &SortCtx,
        keys: &Option<ClauseKeys>,
        hypotheses: &[Expr],
        goal: &Expr,
    ) -> Validity {
        self.stats.smt_queries += 1;
        let Some(keys) = keys else {
            return self.smt.check_valid_imp(clause_ctx, hypotheses, goal);
        };
        let key = keys.for_goal(goal);
        if let Some((verdict, inserted_gen)) = self.cache.lookup(&key) {
            self.stats.cache_hits += 1;
            if inserted_gen < self.generation {
                self.stats.cross_fn_hits += 1;
            }
            return verdict;
        }
        self.stats.cache_misses += 1;
        if session.is_none() {
            self.stats.sessions += 1;
            *session = Some(Session::assume(self.config.smt, clause_ctx, hypotheses));
        }
        let verdict = session
            .as_mut()
            .expect("session was just opened")
            .check(goal);
        self.cache.insert(key, verdict.clone(), self.generation);
        verdict
    }

    /// Drops every surviving candidate that decidably evaluates to `false`
    /// under `model`.  The caller has already confirmed that the model
    /// satisfies the clause's hypotheses, so each drop is exactly the
    /// verdict a per-candidate SMT query would have produced — minus the
    /// query.  Returns whether anything was dropped.
    fn prune_by_model(&mut self, model: &Model, insts: &[Expr], alive: &mut [bool]) -> bool {
        let mut pruned = false;
        for (inst, alive) in insts.iter().zip(alive.iter_mut()) {
            if *alive && model.eval_bool(inst) == Some(false) {
                *alive = false;
                pruned = true;
                self.stats.model_prunes += 1;
            }
        }
        pruned
    }

    /// The per-candidate weakening loop: one validity query per surviving
    /// candidate.  Counter-models produced along the way still prune
    /// *later* candidates for free (a failing candidate's counter-model
    /// frequently falsifies its neighbours too).
    #[allow(clippy::too_many_arguments)]
    fn weaken_per_candidate(
        &mut self,
        session: &mut Option<Session>,
        clause_ctx: &SortCtx,
        keys: &Option<ClauseKeys>,
        hypotheses: &[Expr],
        insts: &[Expr],
        alive: &mut [bool],
    ) {
        for i in 0..insts.len() {
            if !alive[i] {
                continue;
            }
            let verdict = self.check(session, clause_ctx, keys, hypotheses, &insts[i]);
            if verdict.is_valid() {
                continue;
            }
            alive[i] = false;
            if self.config.model_pruning {
                if let Validity::Invalid(Some(model)) = &verdict {
                    if model.satisfies_all(hypotheses) {
                        self.prune_by_model(model, &insts[i + 1..], &mut alive[i + 1..]);
                    }
                }
            }
        }
    }

    /// Folds a finished clause session's statistics into the engine totals.
    fn close(&mut self, session: Option<Session>) {
        if let Some(session) = session {
            self.smt.absorb(*session.stats());
        }
    }
}

fn clause_hypotheses(clause: &Clause, solution: &Solution, kvars: &KVarStore) -> Vec<Expr> {
    clause
        .guards
        .iter()
        .map(|guard| match guard {
            Guard::Pred(p) => p.clone(),
            Guard::KVar(app) => solution.apply(app, kvars),
        })
        .collect()
}

fn clause_ctx(clause: &Clause, ctx: &SortCtx) -> SortCtx {
    let mut out = ctx.clone();
    for (name, sort) in &clause.binders {
        out.push(*name, *sort);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use flux_logic::{Name, Sort};

    /// Builds the constraint system from §4.2 of the paper (the `ref_join`
    /// example):
    ///
    /// ```text
    /// a:bool   ⟹ (a  ⟹ κ1(1))
    ///          ∧ (¬a ⟹ κ2(2))
    ///          ∧ ∀v. κ1(v) ⟹ κ(v)   ∧ κ(v) ⟹ κ1(v)
    ///          ∧ ∀v. κ2(v) ⟹ κ(v)   ∧ κ(v) ⟹ κ2(v)
    ///          ∧ ∀v. κ(v) ⟹ v ≥ 0          -- the nat postcondition
    /// ```
    #[test]
    fn ref_join_constraints_are_safe() {
        let mut kvars = KVarStore::new();
        let k1 = kvars.fresh(vec![Sort::Int]);
        let k2 = kvars.fresh(vec![Sort::Int]);
        let k = kvars.fresh(vec![Sort::Int]);
        let a = Name::intern("a");
        let val = Name::intern("v");

        let c = Constraint::forall(
            a,
            Sort::Bool,
            Expr::tt(),
            Constraint::conj(vec![
                Constraint::implies(
                    Guard::Pred(Expr::Var(a)),
                    Constraint::kvar(KVarApp::new(k1, vec![Expr::int(1)])),
                ),
                Constraint::implies(
                    Guard::Pred(Expr::not(Expr::Var(a))),
                    Constraint::kvar(KVarApp::new(k2, vec![Expr::int(2)])),
                ),
                Constraint::forall(
                    val,
                    Sort::Int,
                    Expr::tt(),
                    Constraint::conj(vec![
                        Constraint::implies(
                            Guard::KVar(KVarApp::new(k1, vec![Expr::Var(val)])),
                            Constraint::kvar(KVarApp::new(k, vec![Expr::Var(val)])),
                        ),
                        Constraint::implies(
                            Guard::KVar(KVarApp::new(k2, vec![Expr::Var(val)])),
                            Constraint::kvar(KVarApp::new(k, vec![Expr::Var(val)])),
                        ),
                        Constraint::implies(
                            Guard::KVar(KVarApp::new(k, vec![Expr::Var(val)])),
                            Constraint::pred(Expr::ge(Expr::Var(val), Expr::int(0)), 0),
                        ),
                    ]),
                ),
            ]),
        );

        let mut solver = FixpointSolver::with_defaults();
        let result = solver.solve(&c, &kvars, &SortCtx::new());
        match result {
            FixResult::Safe(solution) => {
                // κ must be at least as strong as ν ≥ 0.
                assert!(solution.num_conjuncts(k) >= 1);
            }
            FixResult::Unsafe { failed, .. } => panic!("expected safe, failed tags {failed:?}"),
        }
        assert!(solver.stats.iterations >= 1);
        assert!(solver.stats.smt_queries > 0);
    }

    /// Builds the loop-counter system used by several tests below:
    /// i starts at 0, is incremented while i < n, and after the loop i must
    /// equal n.
    ///
    /// ```text
    /// ∀n. n ≥ 0 ⟹
    ///   κ(0, n)                                   -- entry
    ///   ∧ ∀i. κ(i, n) ∧ i < n ⟹ κ(i+1, n)         -- preservation
    ///   ∧ ∀i. κ(i, n) ∧ ¬(i < n) ⟹ i = n          -- exit goal
    /// ```
    fn loop_counter_system() -> (Constraint, KVarStore) {
        let mut kvars = KVarStore::new();
        let k = kvars.fresh(vec![Sort::Int, Sort::Int]);
        let n = Name::intern("n");
        let i = Name::intern("i");

        let c = Constraint::forall(
            n,
            Sort::Int,
            Expr::ge(Expr::Var(n), Expr::int(0)),
            Constraint::conj(vec![
                Constraint::kvar(KVarApp::new(k, vec![Expr::int(0), Expr::Var(n)])),
                Constraint::forall(
                    i,
                    Sort::Int,
                    Expr::tt(),
                    Constraint::conj(vec![
                        Constraint::implies(
                            Guard::KVar(KVarApp::new(k, vec![Expr::Var(i), Expr::Var(n)])),
                            Constraint::implies(
                                Guard::Pred(Expr::lt(Expr::Var(i), Expr::Var(n))),
                                Constraint::kvar(KVarApp::new(
                                    k,
                                    vec![Expr::Var(i) + Expr::int(1), Expr::Var(n)],
                                )),
                            ),
                        ),
                        Constraint::implies(
                            Guard::KVar(KVarApp::new(k, vec![Expr::Var(i), Expr::Var(n)])),
                            Constraint::implies(
                                Guard::Pred(Expr::not(Expr::lt(Expr::Var(i), Expr::Var(n)))),
                                Constraint::pred(Expr::eq(Expr::Var(i), Expr::Var(n)), 42),
                            ),
                        ),
                    ]),
                ),
            ]),
        );
        (c, kvars)
    }

    /// A loop-invariant inference scenario over the counting-loop system.
    #[test]
    fn loop_counter_invariant_is_inferred() {
        let (c, kvars) = loop_counter_system();
        let mut solver = FixpointSolver::with_defaults();
        let result = solver.solve(&c, &kvars, &SortCtx::new());
        assert!(
            result.is_safe(),
            "expected the invariant i <= n to be inferred"
        );
    }

    /// The incremental engine (sessions + validity cache) and one-shot
    /// solving must produce identical results, and the incremental run must
    /// actually exercise the cache and sessions.
    #[test]
    fn incremental_engine_matches_one_shot_and_hits_cache() {
        let (c, kvars) = loop_counter_system();

        // Model pruning is disabled on both sides: counter-models (and
        // hence which per-candidate queries are skipped) may differ between
        // the session and one-shot pipelines, and this test pins the
        // *query-for-query* equivalence of the two engines.
        let mut incremental = FixpointSolver::new(FixConfig {
            model_pruning: false,
            ..FixConfig::default()
        });
        let inc_result = incremental.solve(&c, &kvars, &SortCtx::new());

        let mut one_shot = FixpointSolver::new(FixConfig {
            incremental: false,
            model_pruning: false,
            ..FixConfig::default()
        });
        let os_result = one_shot.solve(&c, &kvars, &SortCtx::new());

        assert_eq!(inc_result, os_result);
        assert_eq!(incremental.stats.smt_queries, one_shot.stats.smt_queries);
        assert!(
            incremental.stats.cache_hits > 0,
            "iterative weakening repeats queries; expected cache hits, stats: {:?}",
            incremental.stats
        );
        assert!(incremental.stats.sessions > 0);
        assert_eq!(
            incremental.stats.cache_hits + incremental.stats.cache_misses,
            incremental.stats.smt_queries
        );
        // Sessions only open on cache misses, at most one per clause visit.
        assert!(incremental.stats.sessions <= incremental.stats.cache_misses);
        assert_eq!(one_shot.stats.cache_hits, 0);
        assert_eq!(one_shot.stats.sessions, 0);
    }

    /// Counter-model-guided weakening must reach exactly the same fixpoint
    /// as the per-candidate loop — same solution, same safety verdict —
    /// while actually pruning candidates and issuing fewer SMT queries.
    #[test]
    fn model_pruning_preserves_the_fixpoint_with_fewer_queries() {
        let (c, kvars) = loop_counter_system();

        let mut pruning = FixpointSolver::with_defaults();
        let pruned_result = pruning.solve(&c, &kvars, &SortCtx::new());

        let mut exhaustive = FixpointSolver::new(FixConfig {
            model_pruning: false,
            ..FixConfig::default()
        });
        let exhaustive_result = exhaustive.solve(&c, &kvars, &SortCtx::new());

        assert_eq!(pruned_result, exhaustive_result);
        assert!(
            pruning.stats.model_prunes > 0,
            "weakening this system must prune at least one candidate by \
             counter-model evaluation, stats: {:?}",
            pruning.stats
        );
        assert!(
            pruning.stats.smt_queries < exhaustive.stats.smt_queries,
            "pruning must save SMT queries: {} vs {}",
            pruning.stats.smt_queries,
            exhaustive.stats.smt_queries
        );
    }

    /// Cached verdicts must equal recomputed verdicts: solving the same
    /// system twice with the same solver (the second run starts from a
    /// cleared cache) and with a fresh solver must agree everywhere.
    #[test]
    fn cached_verdicts_equal_recomputed_verdicts() {
        let (c, kvars) = loop_counter_system();
        let mut solver = FixpointSolver::with_defaults();
        let first = solver.solve(&c, &kvars, &SortCtx::new());
        let second = solver.solve(&c, &kvars, &SortCtx::new());
        assert_eq!(first, second);

        let mut fresh = FixpointSolver::with_defaults();
        assert_eq!(fresh.solve(&c, &kvars, &SortCtx::new()), first);
    }

    /// An unsatisfiable system must blame the right constraint.
    #[test]
    fn failing_constraint_is_blamed_by_tag() {
        let mut kvars = KVarStore::new();
        let k = kvars.fresh(vec![Sort::Int]);
        let x = Name::intern("x");
        let c = Constraint::forall(
            x,
            Sort::Int,
            Expr::tt(),
            Constraint::conj(vec![
                // κ must include every x (so it weakens to true)...
                Constraint::kvar(KVarApp::new(k, vec![Expr::Var(x)])),
                // ...but then x ≥ 0 cannot be proven.  Tag 7 must be blamed.
                Constraint::implies(
                    Guard::KVar(KVarApp::new(k, vec![Expr::Var(x)])),
                    Constraint::pred(Expr::ge(Expr::Var(x), Expr::int(0)), 7),
                ),
                // An unrelated valid obligation with a different tag.
                Constraint::pred(Expr::ge(Expr::Var(x) + Expr::int(1), Expr::Var(x)), 8),
            ]),
        );
        let mut solver = FixpointSolver::with_defaults();
        match solver.solve(&c, &kvars, &SortCtx::new()) {
            FixResult::Unsafe { failed, .. } => assert_eq!(failed, vec![7]),
            FixResult::Safe(_) => panic!("expected unsafe"),
        }
    }

    /// Constraints with no κ variables degenerate to plain validity checks.
    #[test]
    fn concrete_only_constraints() {
        let kvars = KVarStore::new();
        let x = Name::intern("x");
        let ok = Constraint::forall(
            x,
            Sort::Int,
            Expr::ge(Expr::Var(x), Expr::int(1)),
            Constraint::pred(Expr::gt(Expr::Var(x), Expr::int(0)), 0),
        );
        let mut solver = FixpointSolver::with_defaults();
        assert!(solver.solve(&ok, &kvars, &SortCtx::new()).is_safe());

        let bad = Constraint::forall(
            x,
            Sort::Int,
            Expr::ge(Expr::Var(x), Expr::int(0)),
            Constraint::pred(Expr::gt(Expr::Var(x), Expr::int(0)), 3),
        );
        assert!(!solver.solve(&bad, &kvars, &SortCtx::new()).is_safe());
    }

    /// The solution returned for the make_vec example from §4.3: the κ for
    /// the element type must entail ν > 0 given only the pushed value 42.
    #[test]
    fn polymorphic_instantiation_example() {
        let mut kvars = KVarStore::new();
        let k1 = kvars.fresh(vec![Sort::Int]);
        let k2 = kvars.fresh(vec![Sort::Int]);
        let nu = Name::intern("nu");
        let c = Constraint::forall(
            nu,
            Sort::Int,
            Expr::tt(),
            Constraint::conj(vec![
                // κ1(ν) ⟹ κ2(ν)
                Constraint::implies(
                    Guard::KVar(KVarApp::new(k1, vec![Expr::Var(nu)])),
                    Constraint::kvar(KVarApp::new(k2, vec![Expr::Var(nu)])),
                ),
                // ν = 42 ⟹ κ2(ν)
                Constraint::implies(
                    Guard::Pred(Expr::eq(Expr::Var(nu), Expr::int(42))),
                    Constraint::kvar(KVarApp::new(k2, vec![Expr::Var(nu)])),
                ),
                // κ2(ν) ⟹ ν > 0
                Constraint::implies(
                    Guard::KVar(KVarApp::new(k2, vec![Expr::Var(nu)])),
                    Constraint::pred(Expr::gt(Expr::Var(nu), Expr::int(0)), 0),
                ),
            ]),
        );
        let mut solver = FixpointSolver::with_defaults();
        assert!(solver.solve(&c, &kvars, &SortCtx::new()).is_safe());
    }
}
